"""Key choosers: which records a YCSB workload touches.

YCSB's request distributions decide cache behaviour on the server; we
implement the two classics (uniform and zipfian). The zipfian generator
uses the standard rejection-free inverse-CDF approximation from the YCSB
code base (Gray et al.), vectorized over numpy.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError


class UniformKeyChooser:
    """Every record equally likely."""

    def __init__(self, n_records: int):
        if n_records < 1:
            raise ConfigError("n_records must be >= 1")
        self.n_records = int(n_records)

    def choose(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* record indices."""
        return rng.integers(0, self.n_records, size=size)

    def hot_fraction(self, top: float = 0.01) -> float:
        """Share of requests hitting the hottest *top* fraction of keys."""
        return top


class ZipfianKeyChooser:
    """Zipfian-distributed keys (YCSB's default skew, theta ~ 0.99)."""

    def __init__(self, n_records: int, theta: float = 0.99):
        if n_records < 1:
            raise ConfigError("n_records must be >= 1")
        if not (0 < theta < 1):
            raise ConfigError("theta must be in (0, 1)")
        self.n_records = int(n_records)
        self.theta = float(theta)
        n = float(self.n_records)
        self.zeta_n = self._zeta(n, theta)
        self.zeta_2 = self._zeta(2.0, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self.zeta_2 / self.zeta_n)

    @staticmethod
    def _zeta(n: float, theta: float) -> float:
        """Generalized harmonic number H_{n, theta} (exact up to 10^5,
        Euler-Maclaurin beyond)."""
        n_int = int(n)
        if n_int <= 100_000:
            ks = np.arange(1, n_int + 1, dtype=float)
            return float(np.sum(ks ** -theta))
        ks = np.arange(1, 100_001, dtype=float)
        head = float(np.sum(ks ** -theta))
        # integral tail approximation
        tail = (n ** (1 - theta) - 100_000.0 ** (1 - theta)) / (1 - theta)
        return head + tail

    def choose(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* record indices, most-popular-first ordering."""
        u = rng.random(size)
        uz = u * self.zeta_n
        out = np.empty(size, dtype=np.int64)
        small1 = uz < 1.0
        small2 = (~small1) & (uz < 1.0 + 0.5 ** self.theta)
        rest = ~(small1 | small2)
        out[small1] = 0
        out[small2] = 1
        out[rest] = (self.n_records * (self.eta * u[rest] - self.eta + 1.0) ** self.alpha).astype(np.int64)
        return np.clip(out, 0, self.n_records - 1)

    def hot_fraction(self, top: float = 0.01) -> float:
        """Share of requests hitting the hottest *top* fraction of keys."""
        k = max(1.0, top * self.n_records)
        return self._zeta(k, self.theta) / self.zeta_n
