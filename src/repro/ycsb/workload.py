"""YCSB core workload definitions.

A :class:`CoreWorkload` is the client-side contract: operation mix, record
count, key distribution, client thread count and offered rate. The two
workloads the paper uses are provided:

* :data:`LOAD_PHASE` — pure inserts ("continuously populates the database
  with records, for a specified amount of time", §4.1);
* :data:`WORKLOAD_A_LIKE` — the custom 50 % read / 50 % update mix of the
  client-side experiments (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class CoreWorkload:
    """A YCSB workload specification."""

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 1.0
    record_count: int = 10_000_000
    operations_per_second: float = 1400.0   #: aggregate offered rate
    client_threads: int = 100
    key_distribution: str = "zipfian"       #: "zipfian" | "uniform"
    zipfian_theta: float = 0.99

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion + self.insert_proportion
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation proportions must sum to 1 (got {total})")
        if self.key_distribution not in ("zipfian", "uniform"):
            raise ConfigError(f"unknown key distribution {self.key_distribution!r}")
        if self.operations_per_second <= 0 or self.client_threads < 1:
            raise ConfigError("rate and client_threads must be positive")

    def with_(self, **changes) -> "CoreWorkload":
        """Return a modified copy."""
        return replace(self, **changes)

    def key_chooser(self):
        """Instantiate the configured key chooser."""
        from .keys import UniformKeyChooser, ZipfianKeyChooser

        if self.key_distribution == "uniform":
            return UniformKeyChooser(self.record_count)
        return ZipfianKeyChooser(self.record_count, self.zipfian_theta)


#: The paper's loading phase: 100 threads inserting for a fixed time.
LOAD_PHASE = CoreWorkload(
    name="load",
    read_proportion=0.0,
    update_proportion=0.0,
    insert_proportion=1.0,
)

#: The paper's custom client-side workload: 50 % read, 50 % update (§4.2).
WORKLOAD_A_LIKE = CoreWorkload(
    name="read-update-50-50",
    read_proportion=0.5,
    update_proportion=0.5,
    insert_proportion=0.0,
)
