"""Simulated Yahoo Cloud Serving Benchmark client (paper §2.2, §4.2).

The client drives the simulated Cassandra server (load phase or
transaction phase) and records per-operation latencies. Latencies are
synthesized vectorially from the server's pause log: an operation that
arrives while the server is stopped waits for the safepoint to end —
which is exactly the mechanism behind the paper's observation that
"almost every peak in the client response time was associated to a
collection on the server" (Figure 5, Tables 5-7).
"""

from .keys import UniformKeyChooser, ZipfianKeyChooser
from .workload import CoreWorkload, WORKLOAD_A_LIKE, LOAD_PHASE
from .client import YCSBClient, ClientResult, OperationSample

__all__ = [
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "CoreWorkload",
    "WORKLOAD_A_LIKE",
    "LOAD_PHASE",
    "YCSBClient",
    "ClientResult",
    "OperationSample",
]
