"""The YCSB client: drives the server and records operation latencies.

The heavy lifting on the server side is the discrete-event simulation
(:class:`~repro.cassandra.server.CassandraServer` on a
:class:`~repro.jvm.JVM`); the client-side latencies are then synthesized
**vectorially** from the server's pause log (per the HPC guides: the
million-point loop becomes three numpy passes):

1. operation timestamps are drawn over the serving window;
2. each operation gets a base service time — updates follow a tight
   constant band, reads add an SSTable-dependent component that *steps up*
   as flushes accumulate (paper Figure 5, observation 1);
3. operations that arrive during a stop-the-world pause complete only
   when the safepoint ends: ``latency += pause_end - arrival`` (paper
   Figure 5, observation 2 — every latency peak is a GC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cassandra.config import CassandraConfig
from ..cassandra.server import CassandraServer
from ..errors import ConfigError
from ..seeding import rng_for
from ..jvm import JVM, JVMConfig, RunResult
from .workload import CoreWorkload

#: Operation kind codes in :class:`ClientResult` arrays.
KIND_READ, KIND_UPDATE, KIND_INSERT = 0, 1, 2


@dataclass
class OperationSample:
    """One recorded operation (for spot-checking / examples)."""

    time: float
    kind: int
    latency_ms: float


@dataclass
class ClientResult:
    """Latency traces of one client run against one server configuration."""

    gc: str
    op_times: np.ndarray          #: arrival times (s since experiment start)
    latencies_ms: np.ndarray      #: operation latencies (ms)
    kinds: np.ndarray             #: KIND_READ / KIND_UPDATE / KIND_INSERT
    pause_intervals: np.ndarray   #: (n, 2) server STW [start, end) intervals
    server_result: Optional[RunResult] = None

    def of_kind(self, kind: int) -> "ClientResult":
        """Sub-trace of one operation kind."""
        mask = self.kinds == kind
        return ClientResult(
            self.gc,
            self.op_times[mask],
            self.latencies_ms[mask],
            self.kinds[mask],
            self.pause_intervals,
            self.server_result,
        )

    @property
    def reads(self) -> "ClientResult":
        """READ operations only."""
        return self.of_kind(KIND_READ)

    @property
    def updates(self) -> "ClientResult":
        """UPDATE operations only."""
        return self.of_kind(KIND_UPDATE)

    def top_points(self, n: int = 10_000):
        """The *n* highest-latency points (paper plots only these)."""
        if len(self.latencies_ms) <= n:
            idx = np.argsort(self.op_times)
            return self.op_times[idx], self.latencies_ms[idx]
        idx = np.argpartition(self.latencies_ms, -n)[-n:]
        idx = idx[np.argsort(self.op_times[idx])]
        return self.op_times[idx], self.latencies_ms[idx]


class YCSBClient:
    """Runs a :class:`CoreWorkload` against a simulated Cassandra node."""

    def __init__(self, workload: CoreWorkload, seed: int = 0):
        self.workload = workload
        self.seed = int(seed)

    # ------------------------------------------------------------------

    def run(
        self,
        jvm_config: JVMConfig,
        cassandra_config: CassandraConfig,
        *,
        duration: float = 7200.0,
        samples_per_second: float = 140.0,
    ) -> ClientResult:
        """Run the workload for *duration* simulated seconds; return latencies.

        ``samples_per_second`` controls how many operations are *recorded*
        (the paper records >1 M points per run; the server-side memory
        behaviour is driven by the workload's full offered rate).
        """
        if duration <= 0:
            raise ConfigError("duration must be positive")
        w = self.workload
        server = CassandraServer(cassandra_config)
        jvm = JVM(jvm_config)
        result = jvm.run(
            server,
            duration=duration,
            ops_per_second=w.operations_per_second,
            read_fraction=w.read_proportion,
            update_fraction=w.update_proportion,
            n_client_threads=w.client_threads,
        )
        return self.synthesize(jvm_config, result, server,
                               samples_per_second=samples_per_second)

    # ------------------------------------------------------------------

    def synthesize(
        self,
        jvm_config: JVMConfig,
        server_result: RunResult,
        server: CassandraServer,
        *,
        samples_per_second: float = 140.0,
    ) -> ClientResult:
        """Vectorized latency synthesis from a finished server run."""
        w = self.workload
        rng = rng_for(self.seed, "ycsb-client", jvm_config.gc.value)
        t0 = float(server_result.extras.get("serve_start", 0.0))
        t1 = float(server_result.execution_time)
        if t1 <= t0:
            raise ConfigError("server run has an empty serving window")
        n = max(1, int((t1 - t0) * samples_per_second))
        times = np.sort(rng.uniform(t0, t1, size=n))

        # Operation kinds per the workload mix.
        u = rng.random(n)
        kinds = np.full(n, KIND_INSERT, dtype=np.int8)
        kinds[u < w.read_proportion] = KIND_READ
        kinds[(u >= w.read_proportion)
              & (u < w.read_proportion + w.update_proportion)] = KIND_UPDATE

        # Base service times.
        lat = np.empty(n, dtype=float)
        writes = kinds != KIND_READ
        # Updates/inserts: commit-log append + memtable write; a tight,
        # constant band (paper: "the line of points is constant").
        lat[writes] = 0.55 + rng.gamma(2.0, 0.11, size=int(writes.sum()))
        # Reads: memtable hit or on-disk consultation. The on-disk path
        # grows as data accumulates — each flush adds an SSTable, and even
        # between flushes the growing data volume adds discrete index /
        # partition levels: the paper's increasing "steps" in the read line.
        reads = ~writes
        n_reads = int(reads.sum())
        if n_reads:
            chooser = w.key_chooser()
            hot = chooser.hot_fraction(0.05)
            flush_times = np.sort(np.array(
                [t.created_at for t in server.sstables.tables], dtype=float
            ))
            tables_at = (
                np.searchsorted(flush_times, times[reads])
                if flush_times.size
                else np.zeros(n_reads)
            )
            written = server.commitlog.appended_bytes - server.stats.replayed_bytes
            write_rate = max(written, 0.0) / (t1 - t0)
            level_quantum = 2.0 * 1024 ** 3  # one level per ~2 GB written
            levels_at = np.floor((times[reads] - t0) * write_rate / level_quantum)
            miss = rng.random(n_reads) > hot
            base = 0.85 + rng.gamma(2.0, 0.28, size=n_reads)
            sstable_cost = miss * 0.30 * np.log2(2.0 + tables_at + levels_at)
            lat[reads] = base + sstable_cost

        # GC pause overlap: ops arriving inside [start, end) finish at end.
        intervals = server_result.gc_log.intervals()
        if intervals.size:
            starts = intervals[:, 0]
            ends = intervals[:, 1]
            idx = np.searchsorted(starts, times, side="right") - 1
            valid = idx >= 0
            inside = np.zeros(n, dtype=bool)
            inside[valid] = times[valid] < ends[idx[valid]]
            lat[inside] += (ends[idx[inside]] - times[inside]) * 1000.0
        else:
            intervals = np.zeros((0, 2))

        return ClientResult(
            gc=jvm_config.gc.value,
            op_times=times,
            latencies_ms=lat,
            kinds=kinds,
            pause_intervals=intervals,
            server_result=server_result,
        )
