"""Byte and time units, plus HotSpot-style size-flag parsing.

All heap quantities in the simulator are plain floats in **bytes** and all
times are floats in **seconds** of simulated time. These helpers keep the
configuration code readable (``64 * GB``, ``parse_size("5600m")``) and the
reports compact (``fmt_bytes``, ``fmt_time``).
"""

from __future__ import annotations

import re

from .errors import ConfigError

#: One kibibyte in bytes. HotSpot size flags are binary units.
KB = 1024
#: One mebibyte in bytes.
MB = 1024 * KB
#: One gibibyte in bytes.
GB = 1024 * MB

#: Time units in seconds, for readability of configs.
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([kmgt]?)b?\s*$", re.IGNORECASE)

_SUFFIX = {"": 1, "k": KB, "m": MB, "g": GB, "t": 1024 * GB}


def parse_size(value) -> float:
    """Parse a HotSpot-style size value into bytes.

    Accepts numbers (returned as-is) and strings such as ``"64g"``,
    ``"5600m"``, ``"512K"``, ``"1.5G"`` or ``"4096"``.

    >>> parse_size("16g") == 16 * GB
    True
    >>> parse_size(1024) == 1024
    True

    Raises :class:`~repro.errors.ConfigError` for malformed values or
    negative sizes.
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigError(f"negative size: {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise ConfigError(f"cannot parse size from {value!r}")
    m = _SIZE_RE.match(value)
    if not m:
        raise ConfigError(f"malformed size flag: {value!r}")
    number, suffix = m.groups()
    return float(number) * _SUFFIX[suffix.lower()]


def fmt_bytes(n: float) -> str:
    """Render a byte count compactly (``"5.6GB"``, ``"200MB"``, ``"17B"``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            v = n / unit
            return f"{sign}{v:.0f}{name}" if v >= 100 else f"{sign}{v:.3g}{name}"
    return f"{sign}{n:.0f}B"


def fmt_time(t: float) -> str:
    """Render a duration compactly (``"4.0min"``, ``"3.50s"``, ``"17ms"``)."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= MINUTE:
        return f"{sign}{t / MINUTE:.1f}min"
    if t >= 1.0:
        return f"{sign}{t:.2f}s"
    if t >= MS:
        return f"{sign}{t / MS:.3g}ms"
    return f"{sign}{t / US:.3g}us"
