"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied (bad flag, bad size...)."""


class HeapError(ReproError):
    """Base class for heap-related failures."""


class OutOfMemoryError(HeapError):
    """The simulated JVM ran out of heap even after a full collection.

    Mirrors ``java.lang.OutOfMemoryError``: raised when a full GC cannot
    free enough space to satisfy an allocation request.
    """

    def __init__(self, requested: float, free: float, message: str = ""):
        self.requested = requested
        self.free = free
        super().__init__(
            message
            or f"Java heap space: requested {requested:.0f} B, free {free:.0f} B"
        )


class AllocationFailure(HeapError):
    """Internal signal: the young generation cannot satisfy an allocation.

    Caught by the JVM, which then triggers a minor collection (mirroring
    HotSpot's ``GC (Allocation Failure)`` cause). Not a user-facing error.
    """

    def __init__(self, requested: float):
        self.requested = requested
        super().__init__(f"allocation failure: requested {requested:.0f} B")


class PromotionFailure(HeapError):
    """The old generation cannot absorb the survivors of a minor GC.

    Triggers a full collection (and, for CMS, a concurrent mode failure).
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(ReproError):
    """A malformed, oversized or otherwise invalid message on the
    ``repro-serve`` wire protocol.

    Carries an HTTP-flavoured status *code* so service responses can
    distinguish client mistakes (400 bad request, 413 oversized line)
    from service conditions (429 queue full, 503 draining).
    """

    def __init__(self, message: str, code: int = 400):
        self.code = int(code)
        super().__init__(message)


class BenchmarkCrash(ReproError):
    """A (simulated) benchmark crashed.

    The paper reports that *eclipse*, *tradebeans* and *tradesoap* crashed
    on every test with OpenJDK 8; their profiles raise this error so the
    harness can reproduce the paper's benchmark-selection step.
    """

    def __init__(self, benchmark: str, reason: str = ""):
        self.benchmark = benchmark
        super().__init__(f"benchmark {benchmark!r} crashed: {reason or 'incompatible with JDK8'}")
