"""``repro-cluster`` — the multi-node experiment fabric.

Subcommands::

    repro-cluster serve  --socket /tmp/coord.sock \\
        --node unix:/tmp/w1.sock --node unix:/tmp/w2.sock
    repro-cluster submit --socket /tmp/coord.sock \\
        --benchmarks lusearch --gcs Serial G1 --seeds 0 1
    repro-cluster status --socket /tmp/coord.sock [--json]
    repro-cluster drain  --socket /tmp/coord.sock
    repro-cluster merge  --into results/ shards/w1 shards/w2 shards/w3
    repro-cluster failures --gc CMS -n 3       # failure-detector study

``serve`` fronts N ``repro-serve`` workers with the consistent-hash
coordinator; ``submit`` fans a campaign grid through it (pipelined on
one connection — routing, coalescing and stealing happen server-side);
``merge`` folds per-shard result stores into one, byte-identical to a
serial run's compacted store. ``failures`` is the original GC-vs-
failure-detector study this command name used to run, preserved as a
subcommand.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..analysis.report import render_table
from ..errors import ConfigError, ProtocolError
from ..serve.client import ServiceClient
from ..studies import GridSpec
from .coordinator import ClusterConfig, ClusterCoordinator


def _conn_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="coordinator Unix socket path")
    parser.add_argument("--host", default="127.0.0.1", help="TCP host")
    parser.add_argument("--port", type=int, default=0, help="TCP port")


def _check_conn(args) -> None:
    if not args.socket and not args.port:
        raise ConfigError("need --socket PATH or --port N to reach "
                          "the coordinator")


def _connect(args) -> "ServiceClient":
    return ServiceClient.connect(args.socket, args.host, args.port)


# -- serve ---------------------------------------------------------------


def serve_cmd(args) -> int:
    if not args.node:
        raise ConfigError("need at least one --node worker address")
    config = ClusterConfig(
        nodes=tuple(args.node), socket_path=args.socket,
        host=args.host, port=args.port, queue_limit=args.queue_limit,
        forward_timeout=args.forward_timeout,
        steal_interval=args.steal_interval,
        steal_threshold=args.steal_threshold,
    )

    async def main() -> int:
        coordinator = ClusterCoordinator(config)
        await coordinator.start()
        print(f"repro-cluster coordinating {len(config.nodes)} node(s) "
              f"on {coordinator.address} "
              f"(steal every {config.steal_interval}s beyond "
              f"{config.steal_threshold} pending)", flush=True)
        code = await coordinator.run()
        print("repro-cluster drained, exiting", flush=True)
        return code

    return asyncio.run(main())


# -- submit --------------------------------------------------------------


def _grid_args(parser: argparse.ArgumentParser) -> None:
    grid = parser.add_argument_group("grid axes")
    grid.add_argument("--benchmarks", nargs="+", required=True,
                      help="DaCapo benchmark names")
    grid.add_argument("--gcs", nargs="+", default=["ParallelOld"],
                      help="collectors (Serial|ParNew|Parallel|ParallelOld|CMS|G1)")
    grid.add_argument("--heaps", nargs="+", default=["1g"],
                      help="heap sizes (-Xmx), e.g. 1g 16g")
    grid.add_argument("--youngs", nargs="+", default=None,
                      help="young sizes (-Xmn); omit for the default fraction")
    grid.add_argument("--seeds", nargs="+", type=int, default=[0],
                      help="simulation seeds")
    grid.add_argument("--iterations", type=int, default=10,
                      help="DaCapo iterations per cell")
    grid.add_argument("--no-system-gc", action="store_true",
                      help="disable the forced full GC between iterations")
    grid.add_argument("--no-tlab", action="store_true", help="disable TLABs")


def _grid_jobs(args) -> List[dict]:
    grid = GridSpec(
        benchmarks=args.benchmarks, gcs=args.gcs, heaps=args.heaps,
        youngs=args.youngs if args.youngs is not None else [None],
        seeds=args.seeds, iterations=args.iterations,
        system_gc=not args.no_system_gc, tlab_enabled=not args.no_tlab,
    )
    jobs = []
    for benchmark, gc, heap, young, seed in grid.cells():
        job = {
            "benchmark": benchmark, "gc": gc, "heap": heap, "seed": seed,
            "iterations": grid.iterations, "system_gc": grid.system_gc,
            "tlab_enabled": grid.tlab_enabled,
        }
        if young is not None:
            job["young"] = young
        jobs.append(job)
    return jobs


def submit_cmd(args) -> int:
    _check_conn(args)
    jobs = _grid_jobs(args)

    async def main() -> int:
        client = await _connect(args)
        try:
            responses = await asyncio.gather(
                *(client.submit(job, timeout=args.wait) for job in jobs))
        finally:
            await client.close()
        simulated = cached = failed = 0
        for job, resp in zip(jobs, responses):
            kind = resp.get("type")
            if kind == "result":
                if resp.get("cached"):
                    cached += 1
                else:
                    simulated += 1
                continue
            failed += 1
            detail = resp.get("reason") or json.dumps(
                resp.get("failure", {}), sort_keys=True)
            print(f"{kind}: {job['benchmark']}/{job['gc']}"
                  f"/seed{job['seed']}: {detail}", file=sys.stderr)
        # Grep-stable summary (the CI cluster-smoke job asserts on it).
        print(f"cluster: simulated {simulated}, "
              f"cached {cached}/{len(jobs)}, failed {failed}")
        return 1 if failed else 0

    return asyncio.run(main())


# -- status --------------------------------------------------------------


def status_cmd(args) -> int:
    _check_conn(args)

    async def main() -> dict:
        client = await _connect(args)
        try:
            return await client.status(timeout=60.0)
        finally:
            await client.close()

    stats = asyncio.run(main())
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    cluster = stats.get("cluster", {})
    totals = stats.get("totals", {})
    cache = totals.get("cache", {})
    pauses = stats.get("pauses", {})
    hit_rate = cache.get("hit_rate")
    rows = [
        ("draining", stats.get("draining")),
        ("uptime (s)", round(stats.get("uptime_s", 0.0), 1)),
        ("live nodes", ", ".join(cluster.get("live", [])) or "none"),
        ("dead nodes", ", ".join(cluster.get("dead", [])) or "none"),
        ("forwards in flight",
         f"{cluster.get('inflight')} / {cluster.get('queue_limit')}"),
        ("cache hits / misses",
         f"{cache.get('hits')} / {cache.get('misses')}"),
        ("cache hit rate",
         "n/a" if hit_rate is None else f"{100 * hit_rate:.1f}%"),
        ("pauses observed (all nodes)", pauses.get("count")),
    ]
    if pauses.get("count"):
        rows.append(("pause p50 / p99 / max (s)",
                     f"{pauses.get('p50', 0.0):.4f} / "
                     f"{pauses.get('p99', 0.0):.4f} / "
                     f"{pauses.get('max', 0.0):.4f}"))
    for node_id, pending in sorted(
            cluster.get("pending_by_node", {}).items()):
        node = stats.get("nodes", {}).get(node_id, {})
        node_cache = node.get("cache", {})
        rows.append((f"node {node_id}",
                     f"pending {pending}, "
                     f"hits {node_cache.get('hits', 0)}, "
                     f"misses {node_cache.get('misses', 0)}"))
    print(render_table(["metric", "value"], rows,
                       title="repro-cluster status"))
    return 0


# -- drain ---------------------------------------------------------------


def drain_cmd(args) -> int:
    _check_conn(args)

    async def main() -> dict:
        client = await _connect(args)
        try:
            return await client.drain(timeout=args.wait)
        finally:
            await client.close()

    msg = asyncio.run(main())
    stats = msg.get("stats", {})
    cache = stats.get("totals", {}).get("cache", {})
    counters = stats.get("metrics", {}).get("counters", {})
    print(f"cluster drained: {cache.get('misses', 0)} simulated, "
          f"{cache.get('hits', 0)} cache hits, "
          f"{counters.get('cluster.jobs.failed', 0)} failed, "
          f"{counters.get('cluster.steals', 0)} stolen")
    return 0


# -- merge ---------------------------------------------------------------


def merge_cmd(args) -> int:
    """Fold shard stores into one store (scatter-gather epilogue)."""
    from ..campaign.store import merge_stores

    stats = merge_stores(args.sources, args.into)
    print(stats.summary())
    return 0


# -- failures (the original repro-cluster study) --------------------------


def failures_cmd(args) -> int:
    """GC pauses vs. the cluster failure detector (PAPER §5)."""
    from ..cassandra.cluster import ClusterConfig as StudyConfig
    from ..cassandra.cluster import run_cluster_study
    from ..cli import _build_config
    from ..units import MB

    cluster = StudyConfig(n_nodes=args.nodes,
                          failure_timeout=args.phi_timeout)
    result = run_cluster_study(
        args.gc, cluster=cluster, duration=args.duration,
        ops_per_second=args.ops, seed=args.seed,
        jvm_template=_build_config(args),
    )
    print(render_table(
        ["metric", "value"],
        [
            ("collector", result.gc),
            ("nodes", args.nodes),
            ("DOWN convictions", len(result.down_events)),
            ("node-down seconds", round(result.total_unavailable_seconds, 1)),
            ("availability", f"{100 * result.availability(args.duration):.3f}%"),
            ("hinted handoff (MB)", round(result.hinted_handoff_bytes / MB, 1)),
        ],
        title="Cluster failure-detector study",
    ))
    return 0


# -- parser --------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from ..cli import _jvm_args

    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Multi-node experiment fabric: consistent-hash "
                    "routing, work stealing, exact scatter-gather "
                    "aggregation over repro-serve workers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the cluster coordinator")
    _conn_args(p)
    p.add_argument("--node", action="append", default=[],
                   metavar="ADDR",
                   help="worker address (unix:/path or host:port); "
                        "repeat per node")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="in-flight forward bound; submits beyond it get 429")
    p.add_argument("--forward-timeout", type=float, default=600.0,
                   help="per-forward worker response budget (seconds)")
    p.add_argument("--steal-interval", type=float, default=0.5,
                   help="straggler-check period (seconds)")
    p.add_argument("--steal-threshold", type=int, default=2,
                   help="min pending-job imbalance before stealing")
    p.set_defaults(fn=serve_cmd)

    p = sub.add_parser("submit", help="submit a campaign grid and wait")
    _conn_args(p)
    _grid_args(p)
    p.add_argument("--wait", type=float, default=600.0,
                   help="per-cell client timeout (seconds)")
    p.set_defaults(fn=submit_cmd)

    p = sub.add_parser("status", help="aggregated cluster stats")
    _conn_args(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable aggregate snapshot")
    p.set_defaults(fn=status_cmd)

    p = sub.add_parser("drain", help="drain coordinator and all workers")
    _conn_args(p)
    p.add_argument("--wait", type=float, default=600.0,
                   help="how long to wait for the drain (seconds)")
    p.set_defaults(fn=drain_cmd)

    p = sub.add_parser("merge", help="merge shard result stores into one")
    p.add_argument("sources", nargs="+", metavar="SRC",
                   help="shard store directories")
    p.add_argument("--into", required=True, metavar="DEST",
                   help="destination store directory")
    p.set_defaults(fn=merge_cmd)

    p = sub.add_parser("failures",
                       help="GC-vs-failure-detector study (the original "
                            "repro-cluster command)")
    p.add_argument("-n", "--nodes", type=int, default=3)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--ops", type=float, default=1350.0)
    p.add_argument("--phi-timeout", type=float, default=3.0,
                   help="failure-detector conviction timeout (s)")
    _jvm_args(p)
    p.set_defaults(heap="64g", young="12g", fn=failures_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ConfigError, ProtocolError) as exc:
        print(f"repro-cluster: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0
    except (ConnectionError, FileNotFoundError) as exc:
        print(f"repro-cluster: cannot reach coordinator: {exc}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
