"""Consistent-hash ring: deterministic digest → node placement.

The coordinator places every job by its :meth:`CellSpec.digest` — a
sha256 over the canonical cell JSON — so placement is a pure function of
*job content* and *live membership*, never of arrival order, wall clock
or process identity. The ring gives that function the two properties the
fabric needs:

* **registration-order independence** — positions derive only from node
  ids (``sha256(f"{node_id}#{i}")`` for *replicas* virtual nodes), so
  any permutation of ``add`` calls builds the identical ring;
* **minimal disruption** — removing a node moves only the digests that
  node owned (they fall to the next position clockwise); every other
  digest keeps its owner. Both properties are pinned by hypothesis tests
  in ``tests/test_cluster_ring.py``.

Virtual nodes smooth the per-node share: with 64 replicas the expected
imbalance across a handful of workers is a few percent, good enough for
shards that the work-stealing loop rebalances dynamically anyway.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError

#: Virtual nodes per physical node (power-of-two for no deep reason;
#: what matters is that it is fixed — changing it re-shards everything).
DEFAULT_REPLICAS = 64


def _position(node_id: str, replica: int) -> int:
    """Ring position of one virtual node (full 256-bit space)."""
    token = f"{node_id}#{replica}".encode()
    return int.from_bytes(hashlib.sha256(token).digest(), "big")


def digest_point(digest: str) -> int:
    """Ring point of a job digest (hashed again so the ring walk is
    uniform even if callers pass truncated or non-hex digests)."""
    return int.from_bytes(hashlib.sha256(digest.encode()).digest(), "big")


class HashRing:
    """Sorted ring of ``(position, node_id)`` virtual nodes."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ConfigError("ring replicas must be >= 1")
        self.replicas = replicas
        #: node_id → its virtual-node positions (kept for O(r log n) removal).
        self._nodes: Dict[str, List[int]] = {}
        #: sorted (position, node_id); ties (astronomically unlikely)
        #: break by node_id so even a collision is deterministic.
        self._ring: List[Tuple[int, str]] = []

    # -- membership ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> List[str]:
        """Member ids, sorted (presentation order, not ring order)."""
        return sorted(self._nodes)

    def add(self, node_id: str) -> None:
        """Insert *node_id*'s virtual nodes (idempotent)."""
        if node_id in self._nodes:
            return
        positions = [_position(node_id, i) for i in range(self.replicas)]
        self._nodes[node_id] = positions
        for pos in positions:
            bisect.insort(self._ring, (pos, node_id))

    def remove(self, node_id: str) -> None:
        """Remove *node_id*; its digests fall to their next-clockwise
        owners and nothing else moves (idempotent)."""
        positions = self._nodes.pop(node_id, None)
        if positions is None:
            return
        for pos in positions:
            idx = bisect.bisect_left(self._ring, (pos, node_id))
            if idx < len(self._ring) and self._ring[idx] == (pos, node_id):
                del self._ring[idx]

    # -- placement -------------------------------------------------------

    def lookup(self, digest: str) -> Optional[str]:
        """Owner of *digest*: the first virtual node at-or-after its
        point, wrapping at the top of the space. None on an empty ring."""
        if not self._ring:
            return None
        idx = bisect.bisect_left(self._ring, (digest_point(digest), ""))
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def preference(self, digest: str) -> List[str]:
        """All member ids in clockwise (failover) order from *digest*'s
        point — the re-route order when owners die mid-campaign."""
        if not self._ring:
            return []
        start = bisect.bisect_left(self._ring, (digest_point(digest), ""))
        seen: List[str] = []
        for i in range(len(self._ring)):
            node_id = self._ring[(start + i) % len(self._ring)][1]
            if node_id not in seen:
                seen.append(node_id)
                if len(seen) == len(self._nodes):
                    break
        return seen
