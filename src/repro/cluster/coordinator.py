"""The cluster coordinator: consistent-hash routing over worker nodes.

Architecture (DESIGN.md §16)::

    client ──ndjson──▶ coordinator ──ring──▶ worker A (ExperimentService)
                        │   │  ▲             worker B   "
                        │   │  └─ steal ───▶ worker C   "
                        │   └─ scatter-gather status / drain
                        └─ coalescing (digest → one forward)

The coordinator speaks the same NDJSON protocol as a single worker —
``repro-serve submit`` against a coordinator socket works unchanged — and
adds the cluster ops (``join``/``leave``). Placement is the
:class:`~repro.cluster.membership.Membership` ring over job content
digests, so identical fabrics route identically and a node's departure
re-homes only that node's digests.

Invariants the tests pin:

* **at-most-once execution under stealing** — a straggler's queued job
  moves only after the victim's ``cancel`` verdict says ``cancelled``
  (queued-but-unstarted, withdrawn before any worker loop saw it); a
  ``busy`` verdict leaves it where it runs. Node *death* is the one
  case that legitimately re-executes: the victim's partial work is gone.
* **coalescing** — concurrent submits of one digest share one forward,
  one worker execution, one result fan-out, exactly like the in-service
  dedup they sit above.
* **exact aggregation** — scatter-gather status sums per-node counters
  and merges per-node pause histograms with the exactly associative
  :class:`~repro.telemetry.hist.LogHistogram` merge, so cluster-level
  percentiles equal those of a single node that had seen every pause.

Wall-clock readings come only from the injected clock (service metadata
and steal pacing; simulated results never see it) — same discipline as
:mod:`repro.serve.service`.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.latency import LatencySummary
from ..energy.model import energy_section
from ..errors import ConfigError, ProtocolError
from ..serve import protocol
from ..serve.client import ServiceClient
from ..serve.protocol import COORDINATOR_OPS, PROTOCOL_VERSION
from ..serve.service import _Connection
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracer import NULL_TRACER
from .membership import Membership, NodeSpec
from .ring import DEFAULT_REPLICAS

def _loop_clock() -> float:
    """Default clock: asyncio's own monotonic time base.

    ``cluster/`` is part of the SL102 deterministic core, so the
    coordinator never reaches for the wall clock — its only time reads
    are service metadata (uptime, trace timestamps), keyed to the event
    loop it runs on. Tests inject a clock via ``ClusterCoordinator``.
    """
    return asyncio.get_event_loop().time()

#: Connection-shaped failures that mean "this node is gone", including
#: the client's 499 ProtocolError when a reader loop dies mid-request.
_NODE_ERRORS = (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError)


@dataclass
class ClusterConfig:
    """Everything one :class:`ClusterCoordinator` instance needs."""

    nodes: Sequence[str] = field(default_factory=tuple)  #: initial workers
    socket_path: Optional[str] = None   #: Unix socket (preferred locally)
    host: str = "127.0.0.1"             #: TCP bind host (when no socket_path)
    port: int = 0                       #: TCP port (0 = ephemeral)
    queue_limit: int = 256              #: in-flight forward bound (429 beyond)
    forward_timeout: Optional[float] = 600.0  #: per-forward response budget
    steal_interval: float = 0.5         #: straggler-check period (seconds)
    steal_threshold: int = 2            #: min pending imbalance before a steal
    replicas: int = DEFAULT_REPLICAS    #: ring virtual nodes per worker
    max_line_bytes: int = protocol.MAX_LINE_BYTES

    def __post_init__(self):
        if self.queue_limit < 1:
            raise ConfigError("queue_limit must be >= 1")
        if self.steal_interval <= 0:
            raise ConfigError("steal_interval must be > 0")
        if self.steal_threshold < 1:
            raise ConfigError("steal_threshold must be >= 1")


class _Forward:
    """One distinct digest in flight: its waiters and routing state."""

    __slots__ = ("digest", "job", "waiters", "node_id", "route_seq",
                 "attempts", "steal_to", "withdrawn", "unstealable")

    def __init__(self, digest: str, job: Dict[str, object]):
        self.digest = digest
        self.job = job
        self.waiters: List[Tuple[_Connection, object]] = []
        self.node_id: Optional[str] = None
        self.route_seq = 0
        self.attempts = 0
        self.steal_to: Optional[str] = None   #: set by the steal loop
        self.withdrawn = False                #: external cancel succeeded
        self.unstealable = False              #: a victim answered ``busy``


class ClusterCoordinator:
    """Route, steal, aggregate: the fabric's single front door."""

    def __init__(self, config: ClusterConfig, *,
                 clock: Optional[Callable[[], float]] = None,
                 tracer=NULL_TRACER):
        self.config = config
        self._clock = clock if clock is not None else _loop_clock
        self.tracer = tracer
        self.metrics = MetricsRegistry()
        self.members = Membership(config.replicas)
        for address in config.nodes:
            self.members.join(NodeSpec.parse(address))
        self.address: Optional[object] = None

        self._clients: Dict[str, ServiceClient] = {}
        self._connect_lock = asyncio.Lock()
        self._forwards: Dict[str, _Forward] = {}
        self._pending_by_node: Dict[str, Set[str]] = {}
        self._route_seq = 0
        self._conns: Set[_Connection] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._stealer: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._idle = asyncio.Event()
        self._stopped = asyncio.Event()
        self._t0 = self._clock()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the steal loop."""
        loop = asyncio.get_running_loop()
        self._stealer = loop.create_task(self._steal_loop())
        limit = self.config.max_line_bytes + 1024
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path, limit=limit)
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port, limit=limit)
            self.address = self._server.sockets[0].getsockname()[:2]
        self._t0 = self._clock()

    async def run(self, *, handle_signals: bool = True) -> int:
        """Serve until drained; 0 on a clean drain, 1 when any forward
        ended in a worker-side quarantine."""
        await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, lambda: self._spawn(self.drain()))
        await self._stopped.wait()
        await self.close()
        return 1 if self.metrics.counter("cluster.jobs.failed").value else 0

    async def drain(self) -> Dict[str, object]:
        """Stop admission, let forwards finish, drain every worker, then
        stop. Idempotent; returns the final aggregated snapshot."""
        if not self._draining:
            self._draining = True
            self._check_idle()
        await self._idle.wait()
        node_stats: Dict[str, Dict[str, object]] = {}

        async def drain_node(node_id: str) -> None:
            try:
                client = await self._client_for(node_id)
                msg = await client.drain(timeout=self.config.forward_timeout)
                node_stats[node_id] = msg.get("stats", {})
            except _NODE_ERRORS:
                self._node_failed(node_id)

        await asyncio.gather(*(drain_node(n)
                               for n in self.members.live_ids()))
        stats = self.stats(node_stats=node_stats)
        self._stopped.set()
        return stats

    async def close(self) -> None:
        """Tear everything down (no draining — see :meth:`drain`)."""
        tasks = list(self._tasks)
        if self._stealer is not None:
            tasks.append(self._stealer)
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks, self._stealer = set(), None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()
        for client in self._clients.values():
            with contextlib.suppress(Exception):
                await client.close()
        self._clients.clear()
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
        self._stopped.set()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _now(self) -> float:
        return round(self._clock() - self._t0, 6)

    # -- worker connections ----------------------------------------------

    async def _client_for(self, node_id: str) -> ServiceClient:
        client = self._clients.get(node_id)
        if client is not None:
            return client
        spec = self.members.get(node_id)
        if spec is None:
            raise ConnectionError(f"node {node_id} is not a live member")
        async with self._connect_lock:
            client = self._clients.get(node_id)
            if client is not None:
                return client
            client = await ServiceClient.connect(
                spec.socket_path, spec.host, spec.port)
            self._clients[node_id] = client
            return client

    def _node_failed(self, node_id: str) -> None:
        """Failure path: off the ring, client closed; the failed node's
        forwards re-route themselves via their own dispatch loops."""
        if self.members.mark_dead(node_id):
            self.metrics.counter("cluster.nodes.failed").inc()
        client = self._clients.pop(node_id, None)
        if client is not None:
            self._spawn(client.close())

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    await conn.send(protocol.error_msg(
                        None, 413,
                        f"line exceeds the {self.config.max_line_bytes}-byte "
                        "limit"))
                    break
                except (ConnectionError, OSError):
                    break
                if not line.strip():
                    continue
                await self._dispatch(conn, line)
        finally:
            self._conns.discard(conn)
            conn.close()

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        rid: Optional[object] = None
        try:
            msg = protocol.decode(line, max_bytes=self.config.max_line_bytes)
            rid = msg.get("id")
            op, rid = protocol.parse_request(msg, ops=COORDINATOR_OPS)
        except ProtocolError as exc:
            self.metrics.counter("protocol.errors").inc()
            await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
            return
        if op == "ping":
            await conn.send(protocol.pong_msg(rid))
        elif op == "status":
            await conn.send(protocol.stats_msg(rid, await self.stats_async()))
        elif op == "drain":
            await conn.send(protocol.draining_msg(rid))
            self._spawn(self._drain_and_report(conn, rid))
        elif op == "submit":
            await self._handle_submit(conn, rid, msg.get("job"))
        elif op == "cancel":
            await self._handle_cancel(conn, rid, msg)
        elif op in ("join", "leave"):
            await self._handle_membership(conn, rid, op, msg)
        else:   # subscribe: workers stream events, the coordinator doesn't
            await conn.send(protocol.error_msg(
                rid, 501, "subscribe is not supported by the coordinator; "
                          "subscribe to a worker node directly"))

    async def _drain_and_report(self, conn: _Connection, rid) -> None:
        stats = await self.drain()
        await conn.send(protocol.drained_msg(rid, stats))

    async def _handle_membership(self, conn: _Connection, rid, op: str,
                                 msg: Dict[str, object]) -> None:
        address = msg.get("node")
        if not isinstance(address, str) or not address:
            await conn.send(protocol.error_msg(
                rid, 400, f"{op} requires a non-empty 'node' address field"))
            return
        try:
            spec = NodeSpec.parse(address)
        except ConfigError as exc:
            await conn.send(protocol.error_msg(rid, 400, str(exc)))
            return
        if op == "join":
            self.members.join(spec)
            self.metrics.counter("cluster.nodes.joined").inc()
            await conn.send(protocol.joined_msg(
                rid, spec.node_id, self.members.live_ids()))
        else:
            self.members.leave(spec.node_id)
            client = self._clients.pop(spec.node_id, None)
            if client is not None:
                self._spawn(client.close())
            self.metrics.counter("cluster.nodes.left").inc()
            await conn.send(protocol.left_msg(
                rid, spec.node_id, self.members.live_ids()))

    # -- admission / routing ----------------------------------------------

    async def _handle_submit(self, conn: _Connection, rid, job: object) -> None:
        m = self.metrics
        m.counter("cluster.jobs.submitted").inc()
        if self._draining:
            m.counter("cluster.jobs.rejected").inc()
            await conn.send(protocol.rejected_msg(
                rid, 503, "coordinator is draining"))
            return
        try:
            cell = protocol.job_to_cell(job)
        except ProtocolError as exc:
            m.counter("protocol.errors").inc()
            await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
            return
        digest = cell.digest()

        existing = self._forwards.get(digest)
        if existing is not None and not existing.withdrawn:
            # Coalesce: one forward (one worker execution) answers all.
            m.counter("cluster.jobs.coalesced").inc()
            existing.waiters.append((conn, rid))
            await conn.send(protocol.queued_msg(
                rid, digest, position=len(self._forwards)))
            return

        if len(self._forwards) >= self.config.queue_limit:
            m.counter("cluster.jobs.rejected").inc()
            await conn.send(protocol.rejected_msg(
                rid, 429,
                f"coordinator has {self.config.queue_limit} forwards in "
                "flight"))
            return

        fwd = _Forward(digest, dict(job))
        fwd.waiters.append((conn, rid))
        self._forwards[digest] = fwd
        m.counter("cluster.jobs.accepted").inc()
        await conn.send(protocol.queued_msg(
            rid, digest, position=len(self._forwards)))
        self._spawn(self._dispatch_forward(fwd))

    async def _handle_cancel(self, conn: _Connection, rid,
                             msg: Dict[str, object]) -> None:
        try:
            digest = protocol.parse_cancel(msg)
        except ProtocolError as exc:
            self.metrics.counter("protocol.errors").inc()
            await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
            return
        fwd = self._forwards.get(digest)
        if fwd is None:
            await conn.send(protocol.cancelled_msg(rid, digest, "unknown"))
            return
        outcome = "busy"
        node_id = fwd.node_id
        if node_id is not None and not fwd.withdrawn:
            try:
                client = await self._client_for(node_id)
                resp = await client.cancel(digest, timeout=30.0)
                if resp.get("outcome") == "cancelled":
                    fwd.withdrawn = True    # dispatch loop fans it out
                    outcome = "cancelled"
            except _NODE_ERRORS:
                pass    # in transit or node dying: conservatively busy
        await conn.send(protocol.cancelled_msg(rid, digest, outcome))

    # -- the forward loop --------------------------------------------------

    async def _dispatch_forward(self, fwd: _Forward) -> None:
        """Route one digest until a terminal lands; re-route on node
        death and after confirmed steals."""
        m = self.metrics
        # Enough headroom to walk the whole ring twice under churn.
        max_attempts = 2 * max(1, len(self.members)) + 4
        while fwd.attempts < max_attempts:
            if fwd.withdrawn:
                self._deliver(fwd, lambda rid: protocol.cancelled_msg(
                    rid, fwd.digest, "cancelled"))
                return
            if fwd.steal_to is not None and \
                    self.members.get(fwd.steal_to) is not None:
                node_id = fwd.steal_to
            else:
                spec = self.members.assign(fwd.digest)
                if spec is None:
                    m.counter("cluster.jobs.unroutable").inc()
                    self._deliver(fwd, lambda rid: protocol.rejected_msg(
                        rid, 503, "no live worker nodes"))
                    return
                node_id = spec.node_id
            fwd.steal_to = None
            reroute = fwd.attempts > 0
            fwd.attempts += 1
            fwd.node_id = node_id
            self._route_seq += 1
            fwd.route_seq = self._route_seq
            m.counter("cluster.routes").inc()
            if reroute:
                m.counter("cluster.reroutes").inc()
            self.tracer.cluster_route(self._now(), fwd.digest[:12], node_id,
                                      reroute)
            pending = self._pending_by_node.setdefault(node_id, set())
            pending.add(fwd.digest)
            try:
                client = await self._client_for(node_id)
                resp = await client.submit(
                    fwd.job, timeout=self.config.forward_timeout)
            except _NODE_ERRORS:
                self._node_failed(node_id)
                continue
            finally:
                pending.discard(fwd.digest)
            kind = resp.get("type")
            if kind == "cancelled" and not fwd.withdrawn:
                continue    # stolen: next lap honours steal_to / the ring
            if kind == "result":
                m.counter("cluster.jobs.completed").inc()
                m.counter("cluster.cache.hits" if resp.get("cached")
                          else "cluster.cache.misses").inc()
            elif kind == "failed":
                m.counter("cluster.jobs.failed").inc()
            self._deliver(fwd, lambda rid: self._relay(rid, resp, node_id))
            return
        m.counter("cluster.jobs.unroutable").inc()
        self._deliver(fwd, lambda rid: protocol.rejected_msg(
            rid, 503, f"gave up after {fwd.attempts} routing attempts"))

    @staticmethod
    def _relay(rid, resp: Dict[str, object], node_id: str) -> Dict[str, object]:
        """A worker's terminal, re-addressed to one waiter (the serving
        node rides along in ``meta`` for observability)."""
        out = dict(resp)
        out["id"] = rid
        if rid is None:
            out.pop("id", None)
        meta = dict(out.get("meta") or {})
        meta["node"] = node_id
        out["meta"] = meta
        if "queued" in out:     # the worker's ack is not the client's
            del out["queued"]
        return out

    def _deliver(self, fwd: _Forward, build) -> None:
        if self._forwards.get(fwd.digest) is fwd:
            del self._forwards[fwd.digest]
        for conn, rid in fwd.waiters:
            self._spawn(conn.send(build(rid)))
        fwd.waiters = []
        self._check_idle()

    def _check_idle(self) -> None:
        if self._draining and not self._forwards:
            self._idle.set()

    # -- work stealing -----------------------------------------------------

    async def _steal_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.steal_interval)
            self._maybe_steal()

    def _maybe_steal(self) -> None:
        """One rebalance decision: move a queued digest from the most
        loaded node to the least loaded, iff confirmed unstarted."""
        live = self.members.live_ids()
        if len(live) < 2:
            return
        counts = {nid: len(self._pending_by_node.get(nid, ()))
                  for nid in live}
        victim = max(live, key=lambda n: (counts[n], n))
        thief = min(live, key=lambda n: (counts[n], n))
        if victim == thief or \
                counts[victim] - counts[thief] < self.config.steal_threshold:
            return
        candidates = [
            self._forwards[d]
            for d in sorted(self._pending_by_node.get(victim, ()))
            if d in self._forwards
        ]
        candidates = [f for f in candidates
                      if f.node_id == victim and f.steal_to is None
                      and not f.withdrawn and not f.unstealable]
        if not candidates:
            return
        # The most recently routed forward is the likeliest still queued.
        fwd = max(candidates, key=lambda f: f.route_seq)
        self._spawn(self._steal_one(fwd, victim, thief))

    async def _steal_one(self, fwd: _Forward, victim: str,
                         thief: str) -> None:
        """Cancel on the victim; only a ``cancelled`` verdict moves the
        job (at-most-once: the victim provably never started it)."""
        fwd.steal_to = thief
        self.metrics.counter("cluster.steal_attempts").inc()
        try:
            client = await self._client_for(victim)
            resp = await client.cancel(fwd.digest, timeout=30.0)
        except _NODE_ERRORS:
            fwd.steal_to = None     # node death re-routes on its own
            return
        if resp.get("outcome") == "cancelled":
            self.metrics.counter("cluster.steals").inc()
            self.tracer.cluster_steal(self._now(), fwd.digest[:12],
                                      victim, thief)
        else:
            fwd.steal_to = None
            if resp.get("outcome") == "busy":
                fwd.unstealable = True

    # -- scatter-gather status ---------------------------------------------

    async def stats_async(self) -> Dict[str, object]:
        """Aggregate snapshot: per-node stats gathered concurrently, an
        unreachable node is marked dead rather than failing the call."""
        node_stats: Dict[str, Dict[str, object]] = {}

        async def one(node_id: str) -> None:
            try:
                client = await self._client_for(node_id)
                node_stats[node_id] = await client.status(timeout=30.0)
            except _NODE_ERRORS:
                self._node_failed(node_id)

        await asyncio.gather(*(one(n) for n in self.members.live_ids()))
        return self.stats(node_stats=node_stats)

    def stats(self, *, node_stats: Dict[str, Dict[str, object]]
              ) -> Dict[str, object]:
        """Merge per-node snapshots (counters summed exactly, pause
        histograms merged exactly) under the coordinator's own view."""
        totals: Dict[str, int] = {}
        for ns in node_stats.values():
            counters = ns.get("metrics", {}).get("counters", {})
            for name, value in counters.items():
                totals[name] = totals.get(name, 0) + int(value)
        hits = sum(int(ns.get("cache", {}).get("hits", 0))
                   for ns in node_stats.values())
        misses = sum(int(ns.get("cache", {}).get("misses", 0))
                     for ns in node_stats.values())
        served = hits + misses
        merged = LatencySummary.merged_from_dicts(
            ns["pauses"]["hist"] for ns in node_stats.values()
            if isinstance(ns.get("pauses"), dict) and "hist" in ns["pauses"])
        pause_summary = merged.summary_dict()
        pause_summary["hist"] = merged.hist.to_dict()
        return {
            "protocol": PROTOCOL_VERSION,
            "role": "coordinator",
            "draining": self._draining,
            "uptime_s": self._now(),
            "cluster": {
                "live": self.members.live_ids(),
                "dead": self.members.dead_ids(),
                "inflight": len(self._forwards),
                "queue_limit": self.config.queue_limit,
                "pending_by_node": {
                    nid: len(self._pending_by_node.get(nid, ()))
                    for nid in self.members.live_ids()},
            },
            "totals": {
                "counters": {k: totals[k] for k in sorted(totals)},
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": round(hits / served, 6) if served else None,
                },
                # Integer microjoule counters sum exactly, so the
                # cluster-wide energy section is as bit-faithful as the
                # merged pause histograms above.
                "energy": energy_section(totals),
            },
            "pauses": pause_summary,
            "metrics": self.metrics.to_dict(),
            "nodes": {nid: node_stats[nid] for nid in sorted(node_stats)},
        }
