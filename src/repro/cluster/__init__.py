"""Multi-node experiment fabric: shard ``repro-serve`` across workers.

One coordinator process consistent-hashes job content digests across N
worker nodes, each running today's :class:`~repro.serve.service
.ExperimentService` over its own socket and result-store shard. The
fabric adds exactly three mechanisms on top of the single-node service
(DESIGN.md §16):

* **placement** — a :class:`~repro.cluster.ring.HashRing` over
  :meth:`CellSpec.digest` content digests (registration-order
  independent; a leave moves only the leaver's digests);
* **work stealing** — queued-but-unstarted digests move from the
  slowest node to the least loaded one, with at-most-once execution
  guaranteed by the worker's ``cancel`` verdict;
* **exact aggregation** — scatter-gather status sums counters and
  merges :class:`~repro.telemetry.hist.LogHistogram` pause histograms
  exactly, and :func:`~repro.campaign.store.merge_stores` folds shard
  stores into one byte-identical to a serial run's.
"""

from .coordinator import ClusterConfig, ClusterCoordinator
from .membership import Membership, NodeSpec
from .ring import DEFAULT_REPLICAS, HashRing, digest_point

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "DEFAULT_REPLICAS",
    "HashRing",
    "Membership",
    "NodeSpec",
    "digest_point",
]
