"""Cluster membership: worker addresses, liveness, and the ring.

A :class:`NodeSpec` is one worker's address — ``unix:/path/to.sock`` (or
a bare absolute path) for local fabrics, ``host:port`` for TCP — and its
string form doubles as the node id everywhere (ring tokens, status
sections, steal victims), so two coordinators given the same node list
agree on placement byte-for-byte.

:class:`Membership` owns the :class:`~repro.cluster.ring.HashRing`:
``join``/``leave`` are the deliberate membership operations (protocol
``join``/``leave`` ops land here), ``mark_dead`` is the failure path —
the node leaves the ring so new placements avoid it, but stays listed as
dead for the status endpoint until it rejoins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from .ring import DEFAULT_REPLICAS, HashRing


@dataclass(frozen=True)
class NodeSpec:
    """One worker node's address (the id is the canonical string)."""

    node_id: str
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0

    @classmethod
    def parse(cls, address: str) -> "NodeSpec":
        """Parse ``unix:/path``, a bare ``/path``, or ``host:port``."""
        address = str(address).strip()
        if not address:
            raise ConfigError("node address must be non-empty")
        if address.startswith("unix:"):
            path = address[len("unix:"):]
            if not path:
                raise ConfigError(f"empty socket path in {address!r}")
            return cls(node_id=f"unix:{path}", socket_path=path)
        if address.startswith("/"):
            return cls(node_id=f"unix:{address}", socket_path=address)
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ConfigError(
                f"node address {address!r} is neither unix:/path nor host:port")
        try:
            port_n = int(port)
        except ValueError:
            raise ConfigError(f"bad port in node address {address!r}") from None
        if not 0 < port_n < 65536:
            raise ConfigError(f"port out of range in node address {address!r}")
        return cls(node_id=f"{host}:{port_n}", host=host, port=port_n)


class Membership:
    """Live/dead node bookkeeping plus the placement ring."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        self._ring = HashRing(replicas)
        self._nodes: Dict[str, NodeSpec] = {}
        self._dead: Dict[str, NodeSpec] = {}

    # -- membership operations -------------------------------------------

    def join(self, spec: NodeSpec) -> None:
        """Add (or revive) a node; idempotent for a live member."""
        self._dead.pop(spec.node_id, None)
        self._nodes[spec.node_id] = spec
        self._ring.add(spec.node_id)

    def leave(self, node_id: str) -> bool:
        """Remove a node entirely (deliberate departure). True if it was
        a member (live or dead)."""
        known = (self._nodes.pop(node_id, None) is not None
                 or self._dead.pop(node_id, None) is not None)
        self._ring.remove(node_id)
        return known

    def mark_dead(self, node_id: str) -> bool:
        """Failure path: drop the node from placement but remember it as
        dead (status visibility; a later ``join`` revives it)."""
        spec = self._nodes.pop(node_id, None)
        if spec is None:
            return False
        self._dead[node_id] = spec
        self._ring.remove(node_id)
        return True

    # -- queries ---------------------------------------------------------

    def get(self, node_id: str) -> Optional[NodeSpec]:
        """Spec of a live node (None when unknown or dead)."""
        return self._nodes.get(node_id)

    def live_ids(self) -> List[str]:
        """Sorted live node ids."""
        return sorted(self._nodes)

    def dead_ids(self) -> List[str]:
        """Sorted ids of nodes dropped by :meth:`mark_dead`."""
        return sorted(self._dead)

    def __len__(self) -> int:
        return len(self._nodes)

    def assign(self, digest: str) -> Optional[NodeSpec]:
        """The digest's owner under current live membership."""
        node_id = self._ring.lookup(digest)
        return self._nodes.get(node_id) if node_id is not None else None

    def preference(self, digest: str) -> List[NodeSpec]:
        """Failover order for *digest* (owner first)."""
        return [self._nodes[nid] for nid in self._ring.preference(digest)
                if nid in self._nodes]
