"""``repro-energy``: run and report energy/pause Pareto studies.

::

    repro-energy run --gcs ParallelOld CMS G1 \\
        --placements p-cores e-cores adaptive \\
        --topologies asym-hybrid --heap 8g --seeds 1 2 \\
        --store /tmp/energy --out study.json
    repro-energy report study.json

``run`` prints the Pareto table (frontier rows starred) and (with
``--out``) writes the canonical study JSON — byte-identical across
reruns of the same config, which the CI ``energy-smoke`` job enforces
with ``cmp``. Cell cache accounting goes to stdout only, never into
the JSON.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..campaign.store import ResultStore
from ..errors import ConfigError
from .placement import PLACEMENT_NAMES
from .study import EnergyStudyConfig, EnergyStudyResult, run_energy_study


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-energy",
        description="energy/pause Pareto study over "
                    "{collector x GC placement x topology}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an energy study")
    run.add_argument("--benchmarks", nargs="+", default=["xalan"],
                     help="DaCapo benchmarks to aggregate over")
    run.add_argument("--gcs", nargs="+",
                     default=["ParallelOldGC", "ConcMarkSweepGC", "G1GC"],
                     help="collectors to study")
    run.add_argument("--placements", nargs="+",
                     default=list(PLACEMENT_NAMES),
                     help="GC placement policies (p-cores, e-cores, adaptive)")
    run.add_argument("--topologies", nargs="+", default=["asym-hybrid"],
                     help="registered machine topologies")
    run.add_argument("--heap", default="8g",
                     help="heap size (HotSpot size string)")
    run.add_argument("--seeds", nargs="+", type=int, default=[1, 2],
                     help="JVM invocations averaged per combination")
    run.add_argument("--iterations", type=int, default=4,
                     help="harness iterations per invocation")
    run.add_argument("--system-gc", action="store_true",
                     help="force a full collection between iterations")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="campaign ResultStore for the study's cells")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write canonical study JSON here")
    run.set_defaults(func=cmd_run)

    report = sub.add_parser("report",
                            help="render the table from a study JSON")
    report.add_argument("study", help="study JSON written by `run --out`")
    report.set_defaults(func=cmd_report)
    return parser


def cmd_run(args) -> int:
    config = EnergyStudyConfig(
        benchmarks=tuple(args.benchmarks),
        gcs=tuple(args.gcs),
        placements=tuple(args.placements),
        topologies=tuple(args.topologies),
        heap=args.heap,
        seeds=tuple(args.seeds),
        iterations=args.iterations,
        system_gc=args.system_gc,
    )
    store = ResultStore(args.store) if args.store else None
    result = run_energy_study(config, store=store)
    # Cache accounting stays OUT of the JSON: a cached rerun must be
    # byte-identical to the run that populated the cache.
    print(f"cells: {result.cache_hits}/{result.cells_total} cache hits")
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.to_json())
        print(f"study written to {args.out}")
    return 0


def cmd_report(args) -> int:
    with open(args.study) as fh:
        result = EnergyStudyResult.from_dict(json.load(fh))
    print(result.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
