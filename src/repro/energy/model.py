"""Joules-per-phase energy accounting for simulated JVM runs.

:class:`EnergyModel` decomposes a finished run's wall clock into four
phases — mutator run, STW pause, concurrent GC, and the always-on idle
baseline — and prices each from the per-core active/idle power of the
:class:`~repro.machine.topology.CoreClass` doing the work. The model is
strictly *post-hoc*: it reads the GC log a run already produced and
never feeds back into the simulation, so enabling energy accounting
cannot perturb a single simulated byte.

First-order power model (documented simplifications):

* A core draws ``idle_w`` for the whole run (the idle baseline) plus
  ``active_w - idle_w`` while it is doing attributed work. Frequency
  scaling, package states and uncore power are folded into those two
  numbers per class.
* During mutator phases ``mutator_threads`` cores are active, packed
  across classes in declaration order (P-cores first). During STW
  pauses the mutators are stopped (idle) and the GC threads are active
  on the class the placement policy selected, spilling onto
  neighbouring classes if the class is smaller than the thread count.
* Concurrent phases charge the concurrent GC threads on top of the
  mutator baseline; the mutator slowdown they cause is already in the
  simulated durations.

All per-run totals are quantised once to integer **microjoules** per
(phase, core class). Integer addition is exactly associative, so — like
``LogHistogram`` merges — energy folded run-by-run, shard-by-shard, or
from a merged store agrees to the last microjoule (pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from ..machine.topology import CoreClass, MachineTopology
from .placement import (GCPlacementPolicy, effective_gc_threads,
                        resolve_placement)

#: The four accounting phases, in reporting order.
ENERGY_PHASES = ("mutator", "stw", "concurrent", "idle")

#: Microjoules per joule (the quantum of the integer ledger).
UJ_PER_J = 1_000_000

#: Per-collector map from STW pause kind to the GC work bucket whose
#: placement class runs it (``young`` or ``old``). Concurrent phases all
#: land in the ``concurrent`` bucket and need no per-kind map. The
#: nightly registry guard asserts every collector in ``ALL_GC_NAMES``
#: has an entry, so a future collector cannot silently report zero
#: joules.
GC_PHASE_MAP: Dict[str, Dict[str, str]] = {
    "SerialGC": {"young": "young", "full": "old"},
    "ParNewGC": {"young": "young", "full": "old"},
    "ParallelGC": {"young": "young", "full": "old"},
    "ParallelOldGC": {"young": "young", "full": "old"},
    "ConcMarkSweepGC": {"young": "young", "full": "old",
                        "initial-mark": "old", "remark": "old"},
    "G1GC": {"young": "young", "mixed": "young", "remark": "old",
             "cleanup": "old", "full": "old"},
    "HTMGC": {"young": "young", "full": "old"},
    "ZGC": {"young": "young", "mark-start": "old", "mark-end": "old",
            "relocate-start": "old", "full": "old"},
    "ShenandoahGC": {"young": "young", "initial-mark": "old",
                     "remark": "old", "degenerated": "old", "full": "old"},
    # Epsilon never pauses; present so the registry guard holds for the
    # full roster.
    "EpsilonGC": {},
}

#: JVM-level (non-GC) safepoint kinds shared by every collector.
_COMMON_KINDS = {"vm-op": "old"}

#: The MetricsRegistry counter names the serve/cluster layers fold
#: energy into (integer microjoules per phase; counters sum exactly
#: across nodes).
ENERGY_COUNTERS = tuple(f"energy.{p}_uj" for p in ENERGY_PHASES)


def energy_section(counters: Dict[str, int]) -> Dict[str, object]:
    """The human-readable ``energy`` status section, derived from the
    exact per-phase microjoule counters (serve and cluster share it)."""
    uj = {p: int(counters.get(f"energy.{p}_uj", 0)) for p in ENERGY_PHASES}
    gc = uj["stw"] + uj["concurrent"]
    return {
        "phases_j": {p: round(v / UJ_PER_J, 6) for p, v in uj.items()},
        "gc_j": round(gc / UJ_PER_J, 6),
        "total_j": round(sum(uj.values()) / UJ_PER_J, 6),
    }


class EnergyAccount:
    """An integer-microjoule ledger keyed by (phase, core class).

    The energy analogue of ``LogHistogram``: merges are integer adds,
    hence exactly associative and commutative — fold order can never
    change a total.
    """

    __slots__ = ("_uj",)

    def __init__(self) -> None:
        self._uj: Dict[Tuple[str, str], int] = {}

    def add_uj(self, phase: str, core_class: str, uj: int) -> None:
        """Add *uj* microjoules to one (phase, class) bucket."""
        if phase not in ENERGY_PHASES:
            raise ConfigError(f"unknown energy phase {phase!r}")
        key = (phase, core_class)
        self._uj[key] = self._uj.get(key, 0) + int(uj)

    def merge(self, other: "EnergyAccount") -> "EnergyAccount":
        """Fold *other* into this account (exact; returns self)."""
        for key, uj in other._uj.items():
            self._uj[key] = self._uj.get(key, 0) + uj
        return self

    def items(self) -> Tuple[Tuple[str, str, int], ...]:
        """All ``(phase, core_class, microjoules)`` entries, sorted."""
        return tuple((p, c, v) for (p, c), v in sorted(self._uj.items()))

    def uj(self, phase: Optional[str] = None,
           core_class: Optional[str] = None) -> int:
        """Total microjoules, optionally filtered by phase and/or class."""
        return sum(v for (p, c), v in self._uj.items()
                   if (phase is None or p == phase)
                   and (core_class is None or c == core_class))

    def joules(self, phase: Optional[str] = None,
               core_class: Optional[str] = None) -> float:
        """Total joules (derived from the exact microjoule ledger)."""
        return self.uj(phase, core_class) / UJ_PER_J

    @property
    def gc_uj(self) -> int:
        """Microjoules attributable to GC work (STW + concurrent)."""
        return self.uj("stw") + self.uj("concurrent")

    def to_dict(self) -> Dict[str, Dict[str, int]]:
        """``{phase: {core_class: microjoules}}`` with sorted keys."""
        out: Dict[str, Dict[str, int]] = {}
        for phase in ENERGY_PHASES:
            row = {c: v for (p, c), v in self._uj.items() if p == phase}
            if row:
                out[phase] = {c: row[c] for c in sorted(row)}
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Dict[str, int]]) -> "EnergyAccount":
        acct = cls()
        for phase, row in d.items():
            for core_class, uj in row.items():
                acct.add_uj(phase, core_class, uj)
        return acct

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnergyAccount):
            return NotImplemented
        return self._uj == other._uj

    def __repr__(self) -> str:
        return f"EnergyAccount({self.joules():.3f} J, gc={self.gc_uj / UJ_PER_J:.3f} J)"


def _collector_class(collector: str):
    """The collector class (for its parallel_young/parallel_full flags)."""
    from ..gc.registry import collector_class
    return collector_class(collector)


@dataclass(frozen=True)
class EnergyModel:
    """Prices a finished run's phases in joules on its machine."""

    topology: MachineTopology
    collector: str
    mutator_threads: int
    young_threads: int
    old_threads: int
    conc_threads: int
    placement: Optional[GCPlacementPolicy] = None

    @classmethod
    def for_config(cls, config) -> "EnergyModel":
        """Build the model matching a :class:`~repro.jvm.flags.JVMConfig`.

        Thread counts follow the same HotSpot ergonomics the collectors
        themselves use, honouring an explicit ``gc_threads`` override
        and each collector's serial/parallel phase flags.
        """
        topo = config.topology
        placement = (resolve_placement(config.gc_placement)
                     if config.gc_placement else None)
        gc_threads = effective_gc_threads(topo, placement, config.gc_threads)
        conc_threads = max(1, (gc_threads + 3) // 4)
        gc_cls = _collector_class(config.gc.value)
        return cls(
            topology=topo,
            collector=config.gc.value,
            mutator_threads=config.mutator_threads,
            young_threads=gc_threads if gc_cls.parallel_young else 1,
            old_threads=gc_threads if gc_cls.parallel_full else 1,
            conc_threads=conc_threads,
            placement=placement,
        )

    # ------------------------------------------------------------------

    def work_for(self, pause_kind: str) -> str:
        """Map a pause kind to its work bucket (``young`` or ``old``)."""
        kinds = GC_PHASE_MAP.get(self.collector, {})
        return kinds.get(pause_kind) or _COMMON_KINDS.get(pause_kind, "old")

    def _spread(self, n_threads: int,
                start_class: Optional[str] = None
                ) -> Tuple[Tuple[CoreClass, int], ...]:
        """Assign *n_threads* to core classes, packed.

        Fills the start class first (declaration order when none given),
        spilling the surplus onto the remaining classes in declaration
        order. Thread counts above the core count clamp to it.
        """
        layout = list(self.topology.core_class_layout())
        if start_class is not None:
            layout.sort(key=lambda c: c.name != start_class)
        out = []
        remaining = min(n_threads, self.topology.cores)
        for cls in layout:
            take = min(remaining, cls.count)
            if take > 0:
                out.append((cls, take))
                remaining -= take
        return tuple(out)

    def _gc_class(self, work: str) -> Optional[str]:
        if self.placement is None:
            return None
        return self.placement.core_class(self.topology, work).name

    def account_run(self, result) -> EnergyAccount:
        """Price one :class:`~repro.jvm.jvm.RunResult` (exact ledger).

        Float joules are accumulated per (phase, class) and quantised
        *once* per run, so merging per-run accounts in any order yields
        identical totals.
        """
        joules: Dict[Tuple[str, str], float] = {}

        def add(phase: str, core_class: str, j: float) -> None:
            key = (phase, core_class)
            joules[key] = joules.get(key, 0.0) + j

        wall = result.execution_time
        log = result.gc_log

        # Idle baseline: every core draws idle_w for the whole run.
        for cls in self.topology.core_class_layout():
            add("idle", cls.name, cls.count * cls.idle_w * wall)

        # STW seconds per work bucket (mutators are stopped, GC active).
        stw_secs: Dict[str, float] = {}
        for pause in log.pauses:
            work = self.work_for(pause.kind)
            stw_secs[work] = stw_secs.get(work, 0.0) + pause.duration
        total_stw = sum(stw_secs.values())
        for work in sorted(stw_secs):
            n = self.young_threads if work == "young" else self.old_threads
            for cls, take in self._spread(n, self._gc_class(work)):
                add("stw", cls.name,
                    take * (cls.active_w - cls.idle_w) * stw_secs[work])

        # Mutator phase: the run minus its pauses.
        t_run = max(wall - total_stw, 0.0)
        for cls, take in self._spread(self.mutator_threads):
            add("mutator", cls.name,
                take * (cls.active_w - cls.idle_w) * t_run)

        # Concurrent GC rides alongside the mutators.
        conc_secs = 0.0
        for rec in log.concurrent:
            conc_secs += rec.duration
        if conc_secs > 0.0:
            for cls, take in self._spread(self.conc_threads,
                                          self._gc_class("concurrent")):
                add("concurrent", cls.name,
                    take * (cls.active_w - cls.idle_w) * conc_secs)

        acct = EnergyAccount()
        for (phase, core_class), j in joules.items():
            acct.add_uj(phase, core_class, int(round(j * UJ_PER_J)))
        return acct
