"""repro.energy — asymmetric-machine energy accounting and GC placement.

The paper's central finding — GC behaviour is governed by how GC work
maps onto the machine — extended to asymmetric (P/E-core) multicores in
the spirit of Hussein et al.'s energy-aware GC scheduling and Gidra et
al.'s NUMA studies:

* :mod:`repro.energy.placement` — :class:`GCPlacementPolicy`: pin GC
  threads to P-cores, to E-cores, or adaptively (young on P, old and
  concurrent work on E), expressed as per-phase bandwidth rate scales
  threaded through :class:`~repro.machine.costs.CostModel`.
* :mod:`repro.energy.model` — :class:`EnergyModel`: a first-order
  joules-per-phase account (mutator run, STW pause, concurrent phase,
  idle baseline) computed post-hoc from a run's GC log and per-class
  active/idle power. Totals are integer microjoules, so they fold
  exactly like ``LogHistogram`` merges: per-run and merged-store sums
  agree to the bit.
* :mod:`repro.energy.study` — :func:`run_energy_study`: the
  energy/pause Pareto study over {collector x placement x topology}
  with byte-stable JSON from cached campaign cells (EXPERIMENTS.md X7).

See DESIGN.md §18.
"""

from .model import ENERGY_PHASES, EnergyAccount, EnergyModel, GC_PHASE_MAP
from .placement import GCPlacementPolicy, PLACEMENT_NAMES, resolve_placement
from .study import EnergyStudyConfig, run_energy_study

__all__ = [
    "EnergyAccount",
    "EnergyModel",
    "ENERGY_PHASES",
    "GC_PHASE_MAP",
    "GCPlacementPolicy",
    "PLACEMENT_NAMES",
    "resolve_placement",
    "EnergyStudyConfig",
    "run_energy_study",
]
