"""GC-thread placement policies for asymmetric machines.

A :class:`GCPlacementPolicy` decides which core class runs each kind of
GC work — young evacuation, old/full STW phases, concurrent phases —
by selector: ``fast`` is the class with the highest per-thread GC
bandwidth scale (the P-cores), ``slow`` the lowest (the E-cores).
Resolving selectors against a topology yields per-phase bandwidth rate
scales that :func:`apply_placement` folds into the
:class:`~repro.machine.costs.CostModel` (``young_gc_rate`` /
``old_gc_rate`` / ``conc_gc_rate``).

On a homogeneous machine every selector resolves to the single
``uniform`` class at scale 1.0, so any policy is an exact no-op there —
the byte-identity guarantee the tests pin.

Modelling note: pinning also bounds the GC thread pool — a pool pinned
to an 8-core class cannot be 18 threads wide, so the HotSpot
ergonomics are capped at the smallest STW class the policy uses
(:func:`effective_gc_threads`; an explicit ``gc_threads`` override
still wins). An explicit override larger than the class is allowed and
assumed to time-slice on the class's run-queue; the energy model then
spills the surplus onto neighbouring classes when attributing joules
(see :mod:`repro.energy.model`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from ..errors import ConfigError
from ..machine.costs import CostModel
from ..machine.topology import CoreClass, MachineTopology

#: The three work buckets a policy places (matching GC_PHASE_MAP values
#: plus the concurrent bucket).
WORK_KINDS = ("young", "old", "concurrent")


@dataclass(frozen=True)
class GCPlacementPolicy:
    """Pin each GC work kind to a core-class selector (``fast``/``slow``)."""

    name: str
    young: str = "fast"
    old: str = "fast"
    concurrent: str = "fast"

    def __post_init__(self) -> None:
        for work in WORK_KINDS:
            sel = getattr(self, work)
            if sel not in ("fast", "slow"):
                raise ConfigError(
                    f"placement selector for {work!r} must be 'fast' or "
                    f"'slow', got {sel!r}")

    def selector(self, work: str) -> str:
        if work not in WORK_KINDS:
            raise ConfigError(f"unknown GC work kind {work!r}")
        return getattr(self, work)

    def core_class(self, topology: MachineTopology, work: str) -> CoreClass:
        """The core class running *work* on *topology*."""
        return (fastest_class(topology) if self.selector(work) == "fast"
                else slowest_class(topology))

    def rates(self, topology: MachineTopology) -> Tuple[float, float, float]:
        """(young, old, concurrent) bandwidth rate scales on *topology*."""
        return tuple(self.core_class(topology, w).gc_bw_scale
                     for w in WORK_KINDS)


#: Pin everything to the fast cores: shortest pauses, highest GC power.
PIN_P = GCPlacementPolicy(name="p-cores", young="fast", old="fast",
                          concurrent="fast")
#: Pin everything to the efficiency cores: longest pauses, lowest GC
#: energy.
PIN_E = GCPlacementPolicy(name="e-cores", young="slow", old="slow",
                          concurrent="slow")
#: Hussein-style adaptive split: latency-critical young work on the
#: fast cores, throughput-tolerant old and concurrent work on the
#: efficiency cores.
ADAPTIVE = GCPlacementPolicy(name="adaptive", young="fast", old="slow",
                             concurrent="slow")

PLACEMENTS = {p.name: p for p in (PIN_P, PIN_E, ADAPTIVE)}
PLACEMENT_NAMES = tuple(sorted(PLACEMENTS))

_ALIASES = {
    "p": "p-cores",
    "pcores": "p-cores",
    "pin-p": "p-cores",
    "e": "e-cores",
    "ecores": "e-cores",
    "pin-e": "e-cores",
    "hybrid": "adaptive",
}


def resolve_placement(spec: Union[str, GCPlacementPolicy]) -> GCPlacementPolicy:
    """Resolve a placement policy given by name, alias, or instance."""
    if isinstance(spec, GCPlacementPolicy):
        return spec
    if isinstance(spec, str):
        key = spec.strip().lower()
        key = _ALIASES.get(key, key)
        try:
            return PLACEMENTS[key]
        except KeyError:
            raise ConfigError(
                f"unknown GC placement {spec!r}; known: {list(PLACEMENT_NAMES)}"
            ) from None
    raise ConfigError(f"placement must be a name or GCPlacementPolicy, got {spec!r}")


def fastest_class(topology: MachineTopology) -> CoreClass:
    """The class with the highest GC bandwidth scale (first wins ties)."""
    best = None
    for cls in topology.core_class_layout():
        if best is None or cls.gc_bw_scale > best.gc_bw_scale:
            best = cls
    return best


def slowest_class(topology: MachineTopology) -> CoreClass:
    """The class with the lowest GC bandwidth scale (first wins ties)."""
    best = None
    for cls in topology.core_class_layout():
        if best is None or cls.gc_bw_scale < best.gc_bw_scale:
            best = cls
    return best


def gc_thread_cap(topology: MachineTopology,
                  policy: Union[str, GCPlacementPolicy]) -> int:
    """The largest GC thread pool the policy's pinning permits.

    Pinning GC threads to a core class means the pool must fit on that
    class's cores; with per-phase classes (adaptive) the *smallest* STW
    class bounds the shared pool. On a homogeneous machine this is the
    full core count, leaving the HotSpot ergonomics untouched.
    """
    policy = resolve_placement(policy)
    return min(policy.core_class(topology, w).count for w in ("young", "old"))


def effective_gc_threads(topology: MachineTopology,
                         policy: Optional[GCPlacementPolicy],
                         explicit: Optional[int] = None) -> int:
    """The STW GC thread count a run actually uses.

    An explicit ``gc_threads`` wins; otherwise HotSpot's
    ``8 + (ncpus-8) * 5/8`` ergonomics, capped by the placement's class
    size when a policy pins the pool. The JVM and the energy model both
    go through here so accounting matches simulation.
    """
    if explicit:
        return int(explicit)
    n = topology.cores
    default = n if n <= 8 else int(8 + (n - 8) * 5 / 8)
    if policy is None:
        return default
    return min(default, gc_thread_cap(topology, policy))


def apply_placement(costs: CostModel,
                    policy: Union[str, GCPlacementPolicy]) -> CostModel:
    """Return *costs* with the policy's per-phase rate scales applied.

    On a homogeneous topology all scales are exactly 1.0 and the
    returned model prices every phase bit-identically to the input.
    """
    policy = resolve_placement(policy)
    young, old, conc = policy.rates(costs.topology)
    return replace(costs, young_gc_rate=young, old_gc_rate=old,
                   conc_gc_rate=conc)
