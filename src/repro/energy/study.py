"""The energy/pause Pareto study over {collector x placement x topology}.

:func:`run_energy_study` runs every combination as content-addressed
campaign cells (served from a shared
:class:`~repro.campaign.store.ResultStore` when given one — a cached
rerun must produce byte-identical JSON, enforced by the CI
``energy-smoke`` job with ``cmp``) and reports, per combination:

* mean execution time and pooled nearest-rank pause percentiles;
* the folded :class:`~repro.energy.model.EnergyAccount` — exact
  integer microjoules per (phase, core class), so totals computed from
  per-shard stores and from a ``merge_stores`` result agree to the bit;
* GC joules per GB allocated, the figure of merit the Pareto frontier
  trades against the P99.9 pause.

The qualitative result (EXPERIMENTS.md X7): pinning GC to the P-cores
buys the shortest tail pauses at the highest GC power; pinning to the
E-cores stretches pauses by ~35% (the bandwidth-scale gap, damped by
the wider thread pool) while the GC power drops by half, so E-pinned
points dominate on joules/GB and P-pinned points dominate on the tail
— the frontier keeps both, and the adaptive split sits between them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.lbo import nearest_rank
from ..analysis.report import render_table
from ..errors import ConfigError
from ..gc.registry import resolve_gc
from ..machine.topology import resolve_topology
from ..units import GB, parse_size
from .model import ENERGY_PHASES, EnergyAccount, EnergyModel, UJ_PER_J
from .placement import PLACEMENT_NAMES, resolve_placement

#: Bump on incompatible study-output changes (part of the JSON).
ENERGY_SCHEMA_VERSION = 1

#: Pause percentiles reported per combination (the tail view).
_QS = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class EnergyStudyConfig:
    """One Pareto study: collectors x placements x topologies."""

    benchmarks: Tuple[str, ...] = ("xalan",)
    gcs: Tuple[str, ...] = ("ParallelOldGC", "ConcMarkSweepGC", "G1GC")
    placements: Tuple[str, ...] = PLACEMENT_NAMES
    topologies: Tuple[str, ...] = ("asym-hybrid",)
    heap: object = 8 * GB
    seeds: Tuple[int, ...] = (1, 2)
    iterations: int = 4
    system_gc: bool = False

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigError("an energy study needs at least one benchmark")
        if not self.gcs:
            raise ConfigError("an energy study needs at least one collector")
        if not self.placements:
            raise ConfigError("an energy study needs at least one placement")
        if not self.topologies:
            raise ConfigError("an energy study needs at least one topology")
        if not self.seeds:
            raise ConfigError("an energy study needs at least one seed")
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        object.__setattr__(self, "benchmarks",
                           tuple(str(b) for b in self.benchmarks))
        object.__setattr__(self, "gcs",
                           tuple(resolve_gc(g).value for g in self.gcs))
        object.__setattr__(
            self, "placements",
            tuple(resolve_placement(p).name for p in self.placements))
        object.__setattr__(
            self, "topologies",
            tuple(resolve_topology(t).name for t in self.topologies))
        object.__setattr__(self, "heap", float(parse_size(self.heap)))
        object.__setattr__(self, "seeds",
                           tuple(sorted(int(s) for s in self.seeds)))

    def cell(self, topology: str, gc: str, placement: str, benchmark: str,
             seed: int) -> "CellSpec":
        """The content-addressed identity of one study run.

        Topology and placement ride in the cell's ``overrides`` as plain
        registered names, so the digest stays a pure function of JSON
        scalars.
        """
        # Deferred: campaign.cells imports repro.jvm which (lazily)
        # imports this package.
        from ..campaign.cells import CellSpec

        return CellSpec.from_axes(
            benchmark, gc, self.heap, None, seed,
            iterations=self.iterations, system_gc=self.system_gc,
            overrides={"topology": topology, "gc_placement": placement},
        )

    def cells(self) -> List["CellSpec"]:
        """Every cell of the grid, in deterministic execution order."""
        out = []
        for topology in self.topologies:
            for gc in self.gcs:
                for placement in self.placements:
                    for benchmark in self.benchmarks:
                        for seed in self.seeds:
                            out.append(self.cell(topology, gc, placement,
                                                 benchmark, seed))
        return out


@dataclass
class ComboResult:
    """Everything the study reports about one (topology, gc, placement)."""

    topology: str
    gc: str
    placement: str
    exec_s: Optional[float] = None  #: mean over non-crashed runs
    crashed_cells: int = 0
    pause_count: int = 0
    pause_percentiles: Dict[str, float] = field(default_factory=dict)
    max_pause: float = 0.0
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    allocated_bytes: float = 0.0

    @property
    def gc_j_per_gb(self) -> Optional[float]:
        """GC joules (STW + concurrent) per GB allocated."""
        if self.allocated_bytes <= 0.0:
            return None
        return (self.energy.gc_uj / UJ_PER_J) / (self.allocated_bytes / GB)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form. The ``uj`` ledger stays integral;
        derived joule figures are rounded for byte stability."""
        gjg = self.gc_j_per_gb
        return {
            "exec_s": None if self.exec_s is None else round(self.exec_s, 6),
            "crashed_cells": self.crashed_cells,
            "pauses": {
                "count": self.pause_count,
                "percentiles": {k: round(v, 9)
                                for k, v in self.pause_percentiles.items()},
                "max": round(self.max_pause, 9),
            },
            "energy": {
                "uj": self.energy.to_dict(),
                "phases_j": {p: round(self.energy.joules(p), 6)
                             for p in ENERGY_PHASES},
                "total_j": round(self.energy.joules(), 6),
                "gc_j": round(self.energy.gc_uj / UJ_PER_J, 6),
                "gc_j_per_gb": None if gjg is None else round(gjg, 6),
            },
            "allocated_gb": round(self.allocated_bytes / GB, 6),
        }

    @classmethod
    def from_dict(cls, topology: str, gc: str, placement: str,
                  d: Dict[str, object]) -> "ComboResult":
        combo = cls(
            topology=topology, gc=gc, placement=placement,
            exec_s=d["exec_s"], crashed_cells=d["crashed_cells"],
            pause_count=d["pauses"]["count"],
            pause_percentiles=dict(d["pauses"]["percentiles"]),
            max_pause=d["pauses"]["max"],
            energy=EnergyAccount.from_dict(d["energy"]["uj"]),
            allocated_bytes=float(d["allocated_gb"]) * GB,
        )
        return combo


def pareto_frontier(combos: List[ComboResult]) -> List[ComboResult]:
    """The non-dominated set minimising (P99.9 pause, GC joules/GB).

    A combo is dominated when another is no worse on both axes and
    strictly better on at least one. Combos without a valid joules/GB
    figure (crashed everywhere) are excluded. Deterministic order:
    ascending P99.9, then joules/GB, then names.
    """
    pts = [(c.pause_percentiles.get("p99.9", 0.0), c.gc_j_per_gb, c)
           for c in combos if c.gc_j_per_gb is not None]
    frontier = []
    for p, j, c in pts:
        dominated = any(
            (p2 <= p and j2 <= j) and (p2 < p or j2 < j)
            for p2, j2, c2 in pts if c2 is not c)
        if not dominated:
            frontier.append((p, j, c))
    frontier.sort(key=lambda pjc: (pjc[0], pjc[1], pjc[2].gc,
                                   pjc[2].placement))
    return [c for _p, _j, c in frontier]


@dataclass
class EnergyStudyResult:
    """All combination results plus the knobs that produced them."""

    config: EnergyStudyConfig
    combos: List[ComboResult] = field(default_factory=list)
    #: Cache accounting (stdout-only — a cached rerun must stay
    #: byte-identical to the run that populated the cache).
    cache_hits: int = 0
    cells_total: int = 0

    def combo(self, topology: str, gc: str, placement: str) -> ComboResult:
        """Result for one combination (:class:`ConfigError` if absent)."""
        gc = resolve_gc(gc).value
        placement = resolve_placement(placement).name
        topology = resolve_topology(topology).name
        for c in self.combos:
            if (c.topology, c.gc, c.placement) == (topology, gc, placement):
                return c
        raise ConfigError(f"no result for {topology}/{gc}/{placement}")

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form of the whole study."""
        c = self.config
        results: Dict[str, Dict[str, Dict[str, object]]] = {}
        for combo in self.combos:
            results.setdefault(combo.topology, {}).setdefault(
                combo.gc, {})[combo.placement] = combo.to_dict()
        pareto = {
            topo: [{"gc": f.gc, "placement": f.placement,
                    "p99_9": round(f.pause_percentiles.get("p99.9", 0.0), 9),
                    "gc_j_per_gb": round(f.gc_j_per_gb, 6)}
                   for f in pareto_frontier(
                       [x for x in self.combos if x.topology == topo])]
            for topo in c.topologies
        }
        return {
            "v": ENERGY_SCHEMA_VERSION,
            "config": {
                "benchmarks": list(c.benchmarks),
                "gcs": list(c.gcs),
                "placements": list(c.placements),
                "topologies": list(c.topologies),
                "heap": c.heap,
                "seeds": list(c.seeds),
                "iterations": c.iterations,
                "system_gc": c.system_gc,
            },
            "results": results,
            "pareto": pareto,
        }

    def to_json(self) -> str:
        """Byte-stable serialization (same config ⇒ identical bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """The Pareto table, grouped by topology, frontier rows starred."""
        rows = []
        for topo in self.config.topologies:
            topo_combos = [c for c in self.combos if c.topology == topo]
            frontier = set(map(id, pareto_frontier(topo_combos)))
            for c in topo_combos:
                gjg = c.gc_j_per_gb
                rows.append([
                    topo,
                    c.gc,
                    c.placement + (" *" if id(c) in frontier else ""),
                    ("-" if c.exec_s is None else f"{c.exec_s:.2f}"),
                    f"{1e3 * c.pause_percentiles.get('p99.9', 0.0):.2f}",
                    f"{c.energy.gc_uj / UJ_PER_J:.1f}",
                    f"{c.energy.joules():.1f}",
                    ("-" if gjg is None else f"{gjg:.2f}"),
                    c.crashed_cells,
                ])
        return render_table(
            ["topology", "collector", "placement", "exec s", "P99.9 ms",
             "GC J", "total J", "J/GB", "crashed"],
            rows,
            title="Energy/pause Pareto study (* = frontier point)",
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "EnergyStudyResult":
        """Rehydrate a study from its JSON (``report`` path)."""
        c = d["config"]
        config = EnergyStudyConfig(
            benchmarks=tuple(c["benchmarks"]), gcs=tuple(c["gcs"]),
            placements=tuple(c["placements"]),
            topologies=tuple(c["topologies"]), heap=c["heap"],
            seeds=tuple(c["seeds"]), iterations=int(c["iterations"]),
            system_gc=bool(c["system_gc"]),
        )
        result = cls(config=config)
        for topo in config.topologies:
            for gc in config.gcs:
                for placement in config.placements:
                    result.combos.append(ComboResult.from_dict(
                        topo, gc, placement,
                        d["results"][topo][gc][placement]))
        return result


# ----------------------------------------------------------------------
# the study
# ----------------------------------------------------------------------


def run_energy_study(config: EnergyStudyConfig,
                     store=None) -> EnergyStudyResult:
    """Run the full {collector x placement x topology} grid.

    Energy is folded per combination by merging per-run integer
    accounts, so any partition of the same cells — per-seed shards, a
    ``merge_stores`` result, a cached rerun — yields identical totals.
    """
    from ..analysis.lbo import _run_cached

    result = EnergyStudyResult(config=config)
    for topology in config.topologies:
        for gc in config.gcs:
            for placement in config.placements:
                combo = ComboResult(topology=topology, gc=gc,
                                    placement=placement)
                times: List[float] = []
                pooled: List[float] = []
                for benchmark in config.benchmarks:
                    for seed in config.seeds:
                        cell = config.cell(topology, gc, placement,
                                           benchmark, seed)
                        run, hit = _run_cached(cell, store)
                        result.cells_total += 1
                        result.cache_hits += int(hit)
                        if run.crashed:
                            combo.crashed_cells += 1
                            continue
                        times.append(run.execution_time)
                        pooled.extend(p.duration
                                      for p in run.gc_log.pauses)
                        combo.allocated_bytes += float(run.allocated_bytes)
                        model = EnergyModel.for_config(run.config)
                        combo.energy.merge(model.account_run(run))
                combo.exec_s = sum(times) / len(times) if times else None
                pooled.sort()
                combo.pause_count = len(pooled)
                combo.pause_percentiles = {
                    f"p{q:g}": nearest_rank(pooled, q) for q in _QS}
                combo.max_pause = pooled[-1] if pooled else 0.0
                result.combos.append(combo)
    return result
