"""Card tables and per-region remembered sets.

PR 1 introduced ``World.dirty_cards`` but the heap tracked dirtiness as
a single scalar (``dirty_card_bytes``) — a volume approximation good
enough for the paper's six collectors, where the card-scan term is a
linear function of dirty volume anyway.  This module upgrades the model
to explicit structures:

* :class:`CardTable` — a saturating count of *distinct* dirty cards over
  the old generation, quantised to :data:`CARD_SIZE`-byte cards exactly
  like HotSpot's byte-map (one byte per 512-byte card).  Two writes into
  the same logical card region no longer double-count, and the table can
  never report more dirty cards than the covered space holds.
* :class:`RememberedSet` — per-region card counts for region-based
  collectors (G1, ZGC, Shenandoah).  Into-region references are what a
  region collector actually scans when it evacuates a region, so remset
  cardinality — not raw dirty volume — prices the remark/evacuation scan
  when ``remset_fidelity`` is enabled.

Both structures are pure integer arithmetic: enabling them for the new
collectors adds **zero** floating-point operations on the legacy
collectors' paths, which is what keeps the paper's six collectors
byte-identical to the committed baselines (gated in CI by ``cmp``).

The scalar ``dirty_card_bytes`` remains the source of truth for legacy
pricing; the card table runs in parallel and becomes authoritative only
when a collector opts in via ``remset_fidelity`` (see
:meth:`repro.gc.base.Collector.__init__`).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from .regions import RegionTable

# HotSpot's card size: 512 bytes per card, one byte-map entry each.
CARD_SIZE = 512.0


def cards_for(n_bytes: float) -> int:
    """Number of cards covering *n_bytes* (ceiling; >=0)."""
    if n_bytes <= 0.0:
        return 0
    return int(-(-n_bytes // CARD_SIZE))


class CardTable:
    """Saturating dirty-card counter over a covered byte range.

    Models HotSpot's card-table byte map at the granularity the
    simulation needs: how *many* distinct cards are dirty, never which
    ones.  ``dirty()`` returns the number of newly dirtied cards so a
    remembered set can be kept in sync incrementally.
    """

    __slots__ = ("covered_bytes", "total_cards", "dirty_cards_count")

    def __init__(self, covered_bytes: float) -> None:
        if covered_bytes <= 0.0:
            raise ConfigError(f"card table must cover >0 bytes: {covered_bytes}")
        self.covered_bytes = float(covered_bytes)
        self.total_cards = cards_for(covered_bytes)
        self.dirty_cards_count = 0

    def dirty(self, n_bytes: float, used_bytes: float) -> int:
        """Dirty the cards covering *n_bytes* of writes into a space
        currently holding *used_bytes*; returns the newly-dirtied count.

        Saturates at the number of cards the *used* portion of the
        covered space occupies — mirroring the scalar model's
        ``min(dirty + n, old.used)`` clamp, card-quantised.
        """
        if n_bytes < 0.0:
            raise ConfigError(f"cannot dirty a negative span: {n_bytes}")
        cap = min(cards_for(used_bytes), self.total_cards)
        new_count = min(self.dirty_cards_count + cards_for(n_bytes), cap)
        added = new_count - self.dirty_cards_count
        if added > 0:
            self.dirty_cards_count = new_count
        return max(added, 0)

    @property
    def dirty_bytes(self) -> float:
        """Dirty volume implied by the card count (count x CARD_SIZE)."""
        return self.dirty_cards_count * CARD_SIZE

    def clear(self) -> None:
        """Clean every card (post-scan reset)."""
        self.dirty_cards_count = 0


class RememberedSet:
    """Per-region counts of into-region reference cards.

    Each old region remembers how many dirty cards point into it.  New
    cards are spread round-robin over the currently occupied region
    prefix — a deterministic stand-in for HotSpot's per-region
    "Other regions -> this region" card sets that preserves the global
    invariant ``sum(per_region) == card_table.dirty_cards_count``.
    """

    __slots__ = ("regions", "per_region", "_cursor")

    def __init__(self, regions: RegionTable) -> None:
        self.regions = regions
        self.per_region: List[int] = [0] * regions.total_regions
        self._cursor = 0

    def record(self, n_cards: int, occupied_regions: int) -> None:
        """Distribute *n_cards* new remembered cards over the occupied
        region prefix (round-robin from a persistent cursor)."""
        if n_cards <= 0:
            return
        span = max(1, min(occupied_regions, len(self.per_region)))
        for _ in range(n_cards):
            self.per_region[self._cursor % span] += 1
            self._cursor += 1

    def evacuate_region(self, src: int, dst: int) -> int:
        """Move every remembered card from region *src* to *dst*
        (references into an evacuated region now point at its copy);
        returns the number of cards moved.  Conserves total cardinality.
        """
        moved = self.per_region[src]
        if src == dst:
            return moved
        self.per_region[src] = 0
        self.per_region[dst] += moved
        return moved

    @property
    def total_cards(self) -> int:
        return sum(self.per_region)

    @property
    def total_bytes(self) -> float:
        """Remembered volume (cards x CARD_SIZE) — the remset-fidelity
        replacement for the scalar ``dirty_card_bytes`` in remark
        pricing."""
        return self.total_cards * CARD_SIZE

    def occupied(self) -> int:
        """Number of regions with at least one remembered card."""
        return sum(1 for c in self.per_region if c)

    def clear(self) -> None:
        self.per_region = [0] * self.regions.total_regions
        self._cursor = 0
