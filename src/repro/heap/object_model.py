"""Explicit heap objects with references, write barrier and remembered set.

This is the fine-grained half of the heap model (DESIGN.md §2): real
objects forming a graph, really traced by the collectors. Workloads use it
for their structured live sets; the test suite uses it to check collector
correctness (reachability is preserved, garbage is reclaimed, bytes are
conserved).

Generations are tracked per object (``gen`` is ``"young"`` or ``"old"``).
Old→young references are recorded in a remembered set via the write
barrier, exactly like HotSpot's card table: a minor collection scans only
the young generation plus the remembered set, never the whole old
generation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..errors import ConfigError, HeapError

YOUNG = "young"
OLD = "old"


class HeapObject:
    """A simulated heap object: size in bytes plus outgoing references."""

    __slots__ = ("oid", "size", "refs", "age", "gen")

    def __init__(self, oid: int, size: float, refs: Iterable[int] = ()):
        self.oid = oid
        self.size = float(size)
        self.refs: List[int] = list(refs)
        self.age = 0
        self.gen = YOUNG

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Obj #{self.oid} {self.size:.0f}B {self.gen} age={self.age}>"


@dataclass
class GraphCollectResult:
    """Work volumes of a collection over the object graph (bytes/objects)."""

    scanned_bytes: float = 0.0
    copied_bytes: float = 0.0      # survivors that stayed young
    promoted_bytes: float = 0.0    # survivors moved to old
    freed_bytes: float = 0.0
    freed_objects: int = 0
    cards_scanned_bytes: float = 0.0  # remembered-set source bytes scanned


class ObjectGraph:
    """Object store + roots + remembered set with a write barrier.

    All mutations of the reference structure must go through
    :meth:`set_ref` / :meth:`add_ref` / :meth:`clear_refs` so the
    remembered set stays correct — exactly the discipline a JVM's barrier
    enforces.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.objects: Dict[int, HeapObject] = {}
        self.roots: Set[int] = set()
        #: Old objects that may hold references into the young generation.
        self.remset: Set[int] = set()
        self.young_bytes = 0.0
        self.old_bytes = 0.0

    # ------------------------------------------------------------------
    # Allocation & roots
    # ------------------------------------------------------------------

    def allocate(self, size: float, refs: Iterable[int] = (), root: bool = False) -> HeapObject:
        """Create a young object of *size* bytes referencing *refs*.

        Space accounting is the caller's (the heap's) responsibility; the
        graph only tracks the object structure and per-generation totals.
        """
        if size < 0:
            raise ConfigError("object size must be >= 0")
        obj = HeapObject(next(self._ids), size)
        self.objects[obj.oid] = obj
        self.young_bytes += obj.size
        for dst in refs:
            self.add_ref(obj.oid, dst)
        if root:
            self.roots.add(obj.oid)
        return obj

    def add_root(self, oid: int) -> None:
        """Pin *oid* as a GC root (thread stack / static field)."""
        self._get(oid)
        self.roots.add(oid)

    def remove_root(self, oid: int) -> None:
        """Unpin a root; the object becomes collectable if unreferenced."""
        self.roots.discard(oid)

    # ------------------------------------------------------------------
    # Reference mutation (write barrier)
    # ------------------------------------------------------------------

    def add_ref(self, src: int, dst: int) -> None:
        """Append a reference ``src -> dst`` (with write barrier)."""
        s, d = self._get(src), self._get(dst)
        s.refs.append(dst)
        self._barrier(s, d)

    def set_ref(self, src: int, index: int, dst: Optional[int]) -> None:
        """Overwrite reference slot *index* of *src* (with write barrier)."""
        s = self._get(src)
        if not (0 <= index < len(s.refs)):
            raise ConfigError(f"ref index {index} out of range for {src}")
        if dst is None:
            del s.refs[index]
            return
        d = self._get(dst)
        s.refs[index] = dst
        self._barrier(s, d)

    def clear_refs(self, src: int) -> None:
        """Drop all outgoing references of *src*."""
        self._get(src).refs.clear()

    def _barrier(self, src: HeapObject, dst: HeapObject) -> None:
        if src.gen == OLD and dst.gen == YOUNG:
            self.remset.add(src.oid)

    def _get(self, oid: int) -> HeapObject:
        try:
            return self.objects[oid]
        except KeyError:
            raise HeapError(f"dangling object id {oid}") from None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _trace(self, seeds: Iterable[int], young_only: bool) -> Set[int]:
        """Iterative BFS from *seeds*; optionally stays inside young gen."""
        live: Set[int] = set()
        stack = [oid for oid in seeds if oid in self.objects]
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            obj = self.objects.get(oid)
            if obj is None:
                continue
            if young_only and obj.gen != YOUNG:
                continue
            live.add(oid)
            stack.extend(obj.refs)
        return live

    def reachable_all(self) -> Set[int]:
        """All objects reachable from the roots."""
        return self._trace(self.roots, young_only=False)

    def young_seeds(self) -> Set[int]:
        """Seeds for a minor trace: roots plus remembered-set targets."""
        seeds: Set[int] = set(self.roots)
        for src in self.remset:
            obj = self.objects.get(src)
            if obj is not None:
                seeds.update(obj.refs)
        return seeds

    def reachable_young(self) -> Set[int]:
        """Young objects reachable from roots or the remembered set."""
        return self._trace(self.young_seeds(), young_only=True)

    # ------------------------------------------------------------------
    # Collections
    # ------------------------------------------------------------------

    def minor_collect(self, tenuring_threshold: int) -> GraphCollectResult:
        """Collect the young generation of the graph.

        Unreachable young objects are freed; survivors age, and those past
        *tenuring_threshold* are promoted (their young references enter the
        remembered set). Returns the work volumes for the cost model.
        """
        res = GraphCollectResult()
        # Cost of scanning remembered-set sources (the "card scan").
        for src in self.remset:
            obj = self.objects.get(src)
            if obj is not None:
                res.cards_scanned_bytes += obj.size
        live = self.reachable_young()
        young = [o for o in self.objects.values() if o.gen == YOUNG]
        promoted: List[HeapObject] = []
        for obj in young:
            if obj.oid in live:
                res.scanned_bytes += obj.size
                obj.age += 1
                if obj.age > tenuring_threshold:
                    promoted.append(obj)
                    res.promoted_bytes += obj.size
                else:
                    res.copied_bytes += obj.size
            else:
                res.freed_bytes += obj.size
                res.freed_objects += 1
                self.young_bytes -= obj.size
                del self.objects[obj.oid]
        for obj in promoted:
            obj.gen = OLD
            self.young_bytes -= obj.size
            self.old_bytes += obj.size
            if any(
                d in self.objects and self.objects[d].gen == YOUNG for d in obj.refs
            ):
                self.remset.add(obj.oid)
        self._clean_remset()
        return res

    def full_collect(self) -> GraphCollectResult:
        """Collect the whole graph: free unreachable objects everywhere and
        promote all young survivors (as HotSpot's full GCs do)."""
        res = GraphCollectResult()
        live = self.reachable_all()
        for obj in list(self.objects.values()):
            if obj.oid in live:
                res.scanned_bytes += obj.size
                if obj.gen == YOUNG:
                    res.promoted_bytes += obj.size
                    obj.gen = OLD
                    self.young_bytes -= obj.size
                    self.old_bytes += obj.size
            else:
                res.freed_bytes += obj.size
                res.freed_objects += 1
                if obj.gen == YOUNG:
                    self.young_bytes -= obj.size
                else:
                    self.old_bytes -= obj.size
                del self.objects[obj.oid]
        self.remset.clear()  # no young objects remain referenced from old
        self._clean_remset()
        return res

    def _clean_remset(self) -> None:
        """Drop remembered-set entries that no longer point into young."""
        stale = []
        for src in self.remset:
            obj = self.objects.get(src)
            if obj is None or obj.gen != OLD:
                stale.append(src)
                continue
            if not any(
                d in self.objects and self.objects[d].gen == YOUNG for d in obj.refs
            ):
                stale.append(src)
        for src in stale:
            self.remset.discard(src)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """All bytes held by graph objects (young + old)."""
        return self.young_bytes + self.old_bytes

    def check_invariants(self) -> None:
        """Raise :class:`HeapError` if internal accounting is inconsistent.

        Used by tests and debug runs; O(#objects).
        """
        yb = sum(o.size for o in self.objects.values() if o.gen == YOUNG)
        ob = sum(o.size for o in self.objects.values() if o.gen == OLD)
        if abs(yb - self.young_bytes) > 1e-3 or abs(ob - self.old_bytes) > 1e-3:
            raise HeapError(
                f"graph byte accounting drift: young {self.young_bytes} vs {yb}, "
                f"old {self.old_bytes} vs {ob}"
            )
        for src in self.remset:
            obj = self.objects.get(src)
            if obj is not None and obj.gen != OLD:
                raise HeapError(f"remset contains non-old object {src}")
