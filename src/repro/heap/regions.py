"""G1 region geometry.

G1 divides the heap into equal fixed-size regions; HotSpot's ergonomic
picks a power-of-two size so that the heap holds about 2048 regions,
clamped to [1 MB, 32 MB]. Objects larger than half a region are
*humongous* and are allocated directly in (old) humongous regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import MB


def ergonomic_region_size(heap_bytes: float) -> float:
    """HotSpot's region-size ergonomic: ~heap/2048, power of two, 1-32 MB."""
    if heap_bytes <= 0:
        raise ConfigError("heap_bytes must be positive")
    target = heap_bytes / 2048.0
    size = 1 * MB
    while size * 2 <= target and size < 32 * MB:
        size *= 2
    return float(size)


@dataclass(frozen=True)
class RegionTable:
    """Static region geometry for a G1 heap."""

    heap_bytes: float
    region_size: float

    @classmethod
    def for_heap(cls, heap_bytes: float) -> "RegionTable":
        """Build the table with the ergonomic region size."""
        return cls(heap_bytes=float(heap_bytes), region_size=ergonomic_region_size(heap_bytes))

    def __post_init__(self) -> None:
        if self.region_size <= 0 or self.heap_bytes <= 0:
            raise ConfigError("region_size and heap_bytes must be positive")
        if self.region_size > self.heap_bytes:
            raise ConfigError("region_size larger than the heap")

    @property
    def total_regions(self) -> int:
        """Number of regions the heap is divided into."""
        return max(1, int(self.heap_bytes // self.region_size))

    @property
    def humongous_threshold(self) -> float:
        """Objects at least this large are humongous (half a region)."""
        return self.region_size / 2.0

    def regions_for(self, n_bytes: float) -> int:
        """Regions needed to hold *n_bytes* (ceiling)."""
        if n_bytes < 0:
            raise ConfigError("n_bytes must be >= 0")
        return int(-(-n_bytes // self.region_size))

    def bytes_for(self, n_regions: int) -> float:
        """Capacity of *n_regions* regions."""
        return n_regions * self.region_size
