"""Object-lifetime distributions with closed-form survival integrals.

The weak generational hypothesis ("most objects die young") is encoded as a
lifetime distribution per allocation site. For the analytic cohort model we
need two functions of age ``a`` (seconds since allocation):

* ``survival(a)``   — probability an object is still live at age ``a``;
* ``integrated_survival(a)`` — :math:`\\int_0^a S(x)\\,dx`, used to compute
  the expected live bytes of a cohort allocated uniformly over a window.

All distributions are immutable and vectorized: both methods accept floats
or numpy arrays (scalar in, float out; array in, array out). Closed forms
use scipy special functions — no numeric quadrature in the hot path, per
the HPC guide's "vectorize the bottleneck".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np
from scipy import special

from ..errors import ConfigError


def _wrap(age, fn):
    """Apply *fn* to age as a 1-d float array; preserve scalar-ness."""
    scalar = np.ndim(age) == 0
    a = np.atleast_1d(np.asarray(age, dtype=float))
    out = fn(a)
    return float(out[0]) if scalar else out


class LifetimeDistribution(ABC):
    """Abstract lifetime law of allocated objects."""

    @abstractmethod
    def _survival(self, age: np.ndarray) -> np.ndarray:
        """P(lifetime > age) on a 1-d float array."""

    @abstractmethod
    def _integrated_survival(self, age: np.ndarray) -> np.ndarray:
        """:math:`\\int_0^{age} S(x) dx` on a 1-d float array."""

    @abstractmethod
    def mean(self) -> float:
        """Expected lifetime in seconds (may be ``inf``)."""

    def survival(self, age):
        """P(lifetime > age). Vectorized over *age*."""
        return _wrap(age, self._survival)

    def integrated_survival(self, age):
        """:math:`\\int_0^{age} S(x) dx`. Vectorized over *age*."""
        return _wrap(age, self._integrated_survival)

    def window_live_fraction(self, t0: float, t1: float, now: float) -> float:
        """Expected live fraction at *now* of bytes allocated uniformly on
        ``[t0, t1]``.

        .. math:: \\frac{1}{t_1-t_0}\\int_{t_0}^{t_1} S(now-u)\\,du
                  = \\frac{IS(now-t_0) - IS(now-t_1)}{t_1-t_0}

        ``now`` must be >= ``t1``. A zero-width window degenerates to
        ``S(now - t0)``.
        """
        if t1 < t0:
            raise ConfigError(f"bad window [{t0}, {t1}]")
        if now < t1 - 1e-9:
            raise ConfigError(f"now={now} inside allocation window [{t0}, {t1}]")
        width = t1 - t0
        # Degenerate windows: the integral quotient cancels catastrophically
        # when the window is many orders of magnitude smaller than the age.
        if width <= 1e-9 * max(1.0, now - t0):
            return float(self.survival(max(now - t0, 0.0)))
        hi = self.integrated_survival(now - t0)
        lo = self.integrated_survival(max(now - t1, 0.0))
        return float(min(max((hi - lo) / width, 0.0), 1.0))


class Immortal(LifetimeDistribution):
    """Objects that never die (pinned live data)."""

    def _survival(self, age):
        return np.ones_like(age)

    def _integrated_survival(self, age):
        return age.copy()

    def mean(self) -> float:
        return math.inf

    def __repr__(self) -> str:
        return "Immortal()"


class Fixed(LifetimeDistribution):
    """Deterministic lifetime: every object dies at exactly *lifetime* s."""

    def __init__(self, lifetime: float):
        if lifetime < 0:
            raise ConfigError("lifetime must be >= 0")
        self.lifetime = float(lifetime)

    def _survival(self, age):
        return (age < self.lifetime).astype(float)

    def _integrated_survival(self, age):
        return np.minimum(age, self.lifetime)

    def mean(self) -> float:
        return self.lifetime

    def __repr__(self) -> str:
        return f"Fixed({self.lifetime!r})"


class Exponential(LifetimeDistribution):
    """Memoryless lifetimes with mean *tau* seconds.

    The classic model for short-lived "die young" garbage.
    """

    def __init__(self, tau: float):
        if tau <= 0:
            raise ConfigError("tau must be > 0")
        self.tau = float(tau)

    def _survival(self, age):
        return np.exp(-age / self.tau)

    def _integrated_survival(self, age):
        return self.tau * (1.0 - np.exp(-age / self.tau))

    def mean(self) -> float:
        return self.tau

    def __repr__(self) -> str:
        return f"Exponential(tau={self.tau!r})"


class Weibull(LifetimeDistribution):
    """Weibull lifetimes; ``shape < 1`` gives the heavy tail typical of
    medium-lived program data (caches, per-request state).

    ``S(a) = exp(-(a/scale)**shape)``.
    """

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ConfigError("shape and scale must be > 0")
        self.shape = float(shape)
        self.scale = float(scale)

    def _survival(self, age):
        return np.exp(-np.power(np.maximum(age, 0.0) / self.scale, self.shape))

    def _integrated_survival(self, age):
        # int_0^a exp(-(x/s)^k) dx = (s/k) * Gamma(1/k) * P(1/k, (a/s)^k)
        # where P is the regularized lower incomplete gamma (scipy gammainc).
        k, s = self.shape, self.scale
        z = np.power(np.maximum(age, 0.0) / s, k)
        return (s / k) * special.gamma(1.0 / k) * special.gammainc(1.0 / k, z)

    def mean(self) -> float:
        return self.scale * special.gamma(1.0 + 1.0 / self.shape)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class LogNormal(LifetimeDistribution):
    """Log-normal lifetimes, parameterized by *median* and *sigma* (log-std).

    Matches the long-tailed lifetime profiles observed for Java application
    data (most bytes die fast, a tail lives for many collections).
    """

    def __init__(self, median: float, sigma: float):
        if median <= 0 or sigma <= 0:
            raise ConfigError("median and sigma must be > 0")
        self.mu = math.log(median)
        self.sigma = float(sigma)
        self.median = float(median)

    def _survival(self, age):
        out = np.ones_like(age)
        pos = age > 0
        out[pos] = special.ndtr(-(np.log(age[pos]) - self.mu) / self.sigma)
        return out

    def _integrated_survival(self, age):
        # IS(a) = E[min(X, a)]
        #       = exp(mu + s^2/2) * Phi((ln a - mu - s^2)/s) + a * S(a)
        out = np.zeros_like(age)
        pos = age > 0
        ap = age[pos]
        ln = np.log(ap)
        partial = math.exp(self.mu + self.sigma ** 2 / 2.0) * special.ndtr(
            (ln - self.mu - self.sigma ** 2) / self.sigma
        )
        tail = ap * special.ndtr(-(ln - self.mu) / self.sigma)
        out[pos] = partial + tail
        return out

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma ** 2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median!r}, sigma={self.sigma!r})"


class Mixture(LifetimeDistribution):
    """Weighted mixture of lifetime distributions.

    The canonical generational profile is a three-way mixture: a large
    short-lived component, a medium-lived component and a small immortal
    component, e.g.::

        Mixture([(0.90, Exponential(0.05)),
                 (0.08, Weibull(0.7, 5.0)),
                 (0.02, Immortal())])

    Weights are normalized to sum to 1.
    """

    def __init__(self, components: Sequence[Tuple[float, LifetimeDistribution]]):
        if not components:
            raise ConfigError("Mixture needs at least one component")
        total = float(sum(w for w, _ in components))
        if total <= 0:
            raise ConfigError("Mixture weights must sum to > 0")
        for w, _ in components:
            if w < 0:
                raise ConfigError("Mixture weights must be >= 0")
        self.components: Tuple[Tuple[float, LifetimeDistribution], ...] = tuple(
            (w / total, d) for w, d in components
        )

    def _survival(self, age):
        out = np.zeros_like(age)
        for w, dist in self.components:
            out += w * dist._survival(age)
        return out

    def _integrated_survival(self, age):
        out = np.zeros_like(age)
        for w, dist in self.components:
            out += w * dist._integrated_survival(age)
        return out

    def mean(self) -> float:
        return float(sum(w * d.mean() for w, d in self.components))

    def __repr__(self) -> str:
        inner = ", ".join(f"({w:.3g}, {d!r})" for w, d in self.components)
        return f"Mixture([{inner}])"


def generational(
    short_frac: float = 0.90,
    short_tau: float = 0.1,
    medium_frac: float = 0.08,
    medium_scale: float = 5.0,
    immortal_frac: float = 0.02,
) -> Mixture:
    """Convenience constructor for the canonical generational mixture."""
    return Mixture(
        [
            (short_frac, Exponential(short_tau)),
            (medium_frac, Weibull(0.7, medium_scale)),
            (immortal_frac, Immortal()),
        ]
    )
