"""Simulated JVM heap: generations, TLABs, cohorts and an object graph.

Two complementary resolutions (see DESIGN.md §2):

* **Analytic cohorts** — the bulk of allocated bytes, with closed-form
  expected survival (O(#cohorts) per collection).
* **Explicit object graph** — real objects with references, traced by the
  collectors; used for structured live sets and correctness tests.
"""

from .lifetime import (
    Exponential,
    Fixed,
    Immortal,
    LifetimeDistribution,
    LogNormal,
    Mixture,
    Weibull,
)
from .cards import CARD_SIZE, CardTable, RememberedSet, cards_for
from .cohort import Cohort
from .object_model import HeapObject, ObjectGraph
from .spaces import Space, SpaceKind
from .tlab import TLABConfig, TLABManager
from .heap import GenerationalHeap, HeapConfig

__all__ = [
    "LifetimeDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Fixed",
    "Immortal",
    "Mixture",
    "CARD_SIZE",
    "CardTable",
    "RememberedSet",
    "cards_for",
    "Cohort",
    "HeapObject",
    "ObjectGraph",
    "Space",
    "SpaceKind",
    "TLABConfig",
    "TLABManager",
    "GenerationalHeap",
    "HeapConfig",
]
