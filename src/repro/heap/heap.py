"""The generational heap facade.

Wires together spaces, cohorts, the object graph, TLAB accounting and a
card-table model, and implements the *mechanics* of collections (what
moves where, what is freed). Collection *policy and timing* live in the
collectors (:mod:`repro.gc`), which call the ``minor_collection`` /
``full_collection`` / ``sweep_old`` primitives and convert the returned
work volumes into pause durations via the machine cost model.

Space accounting invariants (exercised by the property tests):

* ``eden.used`` equals the bytes allocated since the last collection;
* after a minor collection eden is empty and every surviving byte is in a
  survivor space or the old generation;
* allocation never exceeds ``eden.capacity - tlab_waste``;
* the old generation honours a CMS-style fragmentation factor: its
  *effective* capacity is ``capacity * (1 - fragmentation)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AllocationFailure, ConfigError, HeapError, PromotionFailure
from ..units import MB, fmt_bytes
from .cards import CardTable, RememberedSet
from .cohort import Cohort
from .lifetime import LifetimeDistribution
from .object_model import ObjectGraph
from .spaces import Space, SpaceKind
from .tlab import TLABConfig, TLABManager

#: Absolute slack (bytes) tolerated by the accounting invariants: float
#: summation over many cohorts drifts by well under a byte, so one
#: milli-byte of slack separates rounding noise from real leaks. Applied
#: exactly once per comparison.
_EPSILON = 1e-3


@dataclass(frozen=True)
class HeapConfig:
    """Static heap geometry (mirrors ``-Xmx``/``-Xmn``/``-XX:SurvivorRatio``)."""

    heap_bytes: float
    young_bytes: float
    survivor_ratio: int = 8  #: eden : survivor = ratio : 1 (two survivors)
    tlab: TLABConfig = field(default_factory=TLABConfig)

    def __post_init__(self) -> None:
        if self.heap_bytes <= 0:
            raise ConfigError("heap_bytes must be positive")
        if not (0 < self.young_bytes <= self.heap_bytes):
            raise ConfigError(
                f"young_bytes must be in (0, heap]: {self.young_bytes} vs {self.heap_bytes}"
            )
        if self.survivor_ratio < 1:
            raise ConfigError("survivor_ratio must be >= 1")

    @property
    def eden_bytes(self) -> float:
        """Eden capacity given the survivor ratio."""
        return self.young_bytes * self.survivor_ratio / (self.survivor_ratio + 2)

    @property
    def survivor_bytes(self) -> float:
        """Capacity of *one* survivor semispace."""
        return self.young_bytes / (self.survivor_ratio + 2)

    @property
    def old_bytes(self) -> float:
        """Old-generation capacity."""
        return self.heap_bytes - self.young_bytes


def batch_live_bytes(cohorts: Sequence[Cohort], now: float) -> np.ndarray:
    """Expected live bytes of every cohort at *now*, vectorized.

    Cohorts are grouped by their (shared) lifetime-distribution object so
    the scipy survival integrals run once per distribution on an array of
    ages rather than once per cohort — the hot loop of every collection
    (see the HPC guide: vectorize the bottleneck).
    """
    n = len(cohorts)
    out = np.zeros(n, dtype=float)
    groups: dict = {}
    for i, c in enumerate(cohorts):
        if c.pinned:
            out[i] = 0.0 if c.released else c.resident
        elif c.allocated > 0.0:
            entry = groups.get(id(c.dist))
            if entry is None:
                entry = groups[id(c.dist)] = (c.dist, [], [])
            entry[1].append(i)
            entry[2].append(c)
    for dist, idx, cs in groups.values():
        k = len(cs)
        t0 = np.fromiter((c.t0 for c in cs), dtype=float, count=k)
        t1 = np.fromiter((c.t1 for c in cs), dtype=float, count=k)
        alloc = np.fromiter((c.allocated for c in cs), dtype=float, count=k)
        resident = np.fromiter((c.resident for c in cs), dtype=float, count=k)
        eff_now = np.maximum(now, t1)
        width = t1 - t0
        # Ages are already 1-d arrays, so skip the scalar-preserving
        # public wrappers and hit the vectorized kernels directly.
        hi = dist._integrated_survival(eff_now - t0)
        lo = dist._integrated_survival(np.maximum(eff_now - t1, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            # Degenerate windows cancel catastrophically; fall back to the
            # point survival and clamp into [0, 1] (see window_live_fraction).
            tiny = width <= 1e-9 * np.maximum(1.0, eff_now - t0)
            frac = np.where(~tiny, (hi - lo) / np.where(width > 0, width, 1.0),
                            dist._survival(eff_now - t0))
            frac = np.clip(frac, 0.0, 1.0)
        out[idx] = np.minimum(resident, alloc * frac)
    return out


def batch_collect(cohorts: Sequence[Cohort], now: float) -> Tuple[float, List[Cohort]]:
    """Collect every cohort in *cohorts* (age + drop dead bytes), vectorized.

    Semantics match calling :meth:`Cohort.collect` on each cohort (including
    the tail cutoff); returns ``(freed_bytes, surviving_cohorts)``.
    """
    lives = batch_live_bytes(cohorts, now)
    freed = 0.0
    survivors: List[Cohort] = []
    cutoff = Cohort.TAIL_CUTOFF
    # tolist() gives plain floats (bit-identical); iterating np scalars is
    # several times slower in this loop.
    for c, live in zip(cohorts, lives.tolist()):
        if not c.pinned and live <= max(cutoff * c.allocated, 0.5):
            live = 0.0
        freed += c.resident - live
        c.resident = live
        c.age += 1
        if not c.is_dead:
            survivors.append(c)
    return freed, survivors


@dataclass
class CollectionVolumes:
    """Work volumes of one collection, in bytes (input to the cost model)."""

    kind: str = "minor"            #: "minor" | "full" | "sweep"
    eden_freed: float = 0.0
    survivor_freed: float = 0.0
    old_freed: float = 0.0
    copied_to_survivor: float = 0.0   #: includes survivor-space re-copying
    promoted: float = 0.0
    marked: float = 0.0               #: live bytes traced
    compacted: float = 0.0            #: live bytes slid/moved in old gen
    swept: float = 0.0                #: bytes walked by a free-list sweep
    cards_scanned: float = 0.0        #: dirty-card-covered old bytes scanned
    #: Promoted bytes made of *small* objects (the expensive free-list
    #: case); bulk arena blocks promote via single free-list insertions.
    promoted_small: float = 0.0
    old_occupancy_before: float = 0.0
    promotion_failed: bool = False

    @property
    def total_freed(self) -> float:
        """All bytes reclaimed by this collection."""
        return self.eden_freed + self.survivor_freed + self.old_freed


class GenerationalHeap:
    """A generational heap with analytic cohorts plus an object graph."""

    def __init__(self, config: HeapConfig, n_mutator_threads: int = 1):
        self.config = config
        self.eden = Space("eden", SpaceKind.EDEN, config.eden_bytes)
        self.survivor = Space("survivor", SpaceKind.SURVIVOR, config.survivor_bytes)
        self.old = Space("old", SpaceKind.OLD, config.old_bytes)
        self.eden_cohorts: List[Cohort] = []
        self.survivor_cohorts: List[Cohort] = []
        self.old_cohorts: List[Cohort] = []
        self.graph = ObjectGraph()
        self.tlabs = TLABManager(config.tlab, config.eden_bytes, n_mutator_threads)
        #: Nominal young geometry (updated by :meth:`resize_young`); the
        #: live capacities may deviate temporarily when survivor overflow
        #: borrows eden space (to-space overflow).
        self._nominal_eden = self.eden.capacity
        self._nominal_survivor = self.survivor.capacity
        #: CMS-style old-gen fragmentation in [0, fragmentation_cap].
        self.fragmentation = 0.0
        self.fragmentation_cap = 0.25
        #: Old-gen bytes covered by dirty cards since the last young GC.
        #: The scalar stays authoritative for the paper's six collectors;
        #: the explicit card table below runs in parallel (pure integer
        #: arithmetic, zero float ops on the legacy path) and prices scans
        #: only for collectors that opt in via ``card_fidelity``.
        self.dirty_card_bytes = 0.0
        self.card_table = CardTable(config.heap_bytes)
        #: Per-region remembered set; region collectors attach one via
        #: :meth:`attach_remset` and it is kept in card-table sync.
        self.remset: Optional[RememberedSet] = None
        #: When True, ``minor_collection`` reports the card-quantised
        #: scan volume instead of the scalar approximation.
        self.card_fidelity = False
        self._last_minor_at = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def eden_free(self) -> float:
        """Eden bytes still allocatable (TLAB waste reserved)."""
        return self.eden.capacity - self.tlabs.expected_waste - self.eden.used

    @property
    def young_used(self) -> float:
        """Bytes in eden + survivor."""
        return self.eden.used + self.survivor.used

    @property
    def old_effective_capacity(self) -> float:
        """Old capacity usable given current fragmentation."""
        return self.old.capacity * (1.0 - self.fragmentation)

    @property
    def old_free_effective(self) -> float:
        """Promotable headroom in the old generation."""
        return max(0.0, self.old_effective_capacity - self.old.used)

    @property
    def used(self) -> float:
        """Total heap bytes occupied."""
        return self.young_used + self.old.used

    def live_estimate(self, now: float) -> float:
        """Expected live bytes across the whole heap at *now*."""
        total = self.graph.total_bytes
        for coll in (self.eden_cohorts, self.survivor_cohorts, self.old_cohorts):
            total += float(batch_live_bytes(coll, now).sum())
        return total

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(
        self,
        now: float,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: float = 1.0,
        pinned: bool = False,
        label: str = "",
        window: float = 0.0,
    ) -> Cohort:
        """Allocate a cohort of *n_bytes* in eden.

        Raises :class:`~repro.errors.AllocationFailure` when eden cannot fit
        the request — the JVM reacts by triggering a minor collection and
        retrying, exactly like HotSpot's ``GC (Allocation Failure)``.
        """
        if n_bytes < 0:
            raise ConfigError("cannot allocate negative bytes")
        if n_bytes > self.eden_free + 1e-6:
            raise AllocationFailure(n_bytes)
        cohort = Cohort(
            now - window, now, n_bytes, dist,
            n_objects=n_objects, pinned=pinned, label=label,
        )
        self.eden.add(n_bytes)
        self.eden_cohorts.append(cohort)
        return cohort

    def allocate_bump(self, now: float, n_bytes: float, dist, *,
                      n_objects: float, label: str, window: float) -> Cohort:
        """:meth:`allocate` minus the feasibility re-checks, for the batched
        bump path — the span's pass 1 already proved the piece fits eden
        (against the stricter TLAB-waste-reserved bound, which implies
        :meth:`~repro.heap.spaces.Space.add`'s own check). State effects
        are identical to :meth:`allocate`.
        """
        cohort = Cohort.bump(now - window, now, n_bytes, dist, n_objects, label)
        eden = self.eden
        eden.used = min(eden.used + n_bytes, eden.capacity)
        self.eden_cohorts.append(cohort)
        return cohort

    def allocate_old(
        self,
        now: float,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: float = 1.0,
        pinned: bool = False,
        label: str = "",
    ) -> Cohort:
        """Allocate directly in the old generation (humongous objects).

        Raises :class:`~repro.errors.PromotionFailure` when the effective
        old capacity cannot fit the request.
        """
        if n_bytes > self.old_free_effective + 1e-6:
            raise PromotionFailure(
                f"old gen cannot fit humongous {fmt_bytes(n_bytes)}"
            )
        cohort = Cohort(now, now, n_bytes, dist, n_objects=n_objects,
                        pinned=pinned, label=label)
        cohort.age = 10 ** 6  # never "tenured" again
        self.old.add(n_bytes)
        self.old_cohorts.append(cohort)
        return cohort

    def allocate_object(self, size: float, refs=(), root: bool = False):
        """Allocate an explicit graph object in eden (fine-grained model).

        Raises :class:`~repro.errors.AllocationFailure` when eden is full,
        like :meth:`allocate`.
        """
        if size > self.eden_free + 1e-6:
            raise AllocationFailure(size)
        obj = self.graph.allocate(size, refs=refs, root=root)
        self.eden.add(size)
        return obj

    def dirty_cards(self, n_bytes: float) -> None:
        """Record *n_bytes* of old-generation data written by mutators.

        Young collections of CMS/ParNew (and G1 via remembered sets) must
        scan this volume; it is the physical source of the paper's
        young-generation-size anomaly (DESIGN.md §6.3).
        """
        if n_bytes < 0:
            raise ConfigError("dirty_cards takes non-negative bytes")
        self.dirty_card_bytes = min(
            self.dirty_card_bytes + n_bytes, self.old.used
        )
        added = self.card_table.dirty(n_bytes, self.old.used)
        if self.remset is not None and added:
            self.remset.record(added, self._occupied_old_regions())

    def attach_remset(self, remset: RememberedSet) -> None:
        """Attach a per-region remembered set (region collectors only).

        Must happen before any cards are dirtied so the remset starts in
        sync with the card table; from then on every newly-dirtied card
        is distributed into it and :meth:`check_invariants` enforces
        ``remset.total_cards == card_table.dirty_cards_count``.
        """
        if self.card_table.dirty_cards_count != 0:
            raise HeapError("attach_remset requires a clean card table")
        self.remset = remset

    def _occupied_old_regions(self) -> int:
        """Old regions currently holding data (for remset distribution)."""
        assert self.remset is not None
        return max(1, self.remset.regions.regions_for(self.old.used))

    def _reset_card_structures(self, redirty_bytes: float) -> None:
        """Post-scan card reset: clean every card, then re-dirty the
        cards covering *redirty_bytes* (freshly promoted data holds some
        references into young)."""
        self.card_table.clear()
        added = self.card_table.dirty(redirty_bytes, self.old.used)
        if self.remset is not None:
            self.remset.clear()
            if added:
                self.remset.record(added, self._occupied_old_regions())

    # ------------------------------------------------------------------
    # Collection mechanics
    # ------------------------------------------------------------------

    def minor_collection(
        self,
        now: float,
        tenuring_threshold: int,
        *,
        survivor_target_fraction: float = 1.0,
    ) -> CollectionVolumes:
        """Evacuate the young generation.

        Survivors below the tenuring threshold are copied to the survivor
        space (oldest cohorts promoted first on overflow, as HotSpot does);
        the rest are promoted. Returns the work volumes; sets
        ``promotion_failed`` (leaving survivors conservatively promoted as
        far as possible) when the old generation cannot absorb them —
        callers then run a full collection.
        """
        vol = CollectionVolumes(kind="minor")
        vol.old_occupancy_before = self.old.occupancy
        if self.card_fidelity:
            vol.cards_scanned = self.card_table.dirty_bytes
        else:
            vol.cards_scanned = self.dirty_card_bytes

        # 1. Age cohorts and find survivors (vectorized over cohorts).
        eden_freed, eden_survivors = batch_collect(self.eden_cohorts, now)
        surv_freed, surv_survivors = batch_collect(self.survivor_cohorts, now)
        vol.eden_freed += eden_freed
        vol.survivor_freed += surv_freed
        candidates: List[Cohort] = eden_survivors + surv_survivors

        # 2. Object graph young collection.
        g = self.graph.minor_collect(tenuring_threshold)
        vol.eden_freed += g.freed_bytes
        vol.copied_to_survivor += g.copied_bytes
        vol.promoted += g.promoted_bytes
        vol.cards_scanned += g.cards_scanned_bytes
        graph_survivor_bytes = g.copied_bytes

        # 3. Tenuring + survivor-space packing (oldest promoted first).
        survivor_cap = max(
            0.0, self.survivor.capacity * survivor_target_fraction - graph_survivor_bytes
        )
        tenured = [c for c in candidates if c.age > tenuring_threshold]
        keep = [c for c in candidates if c.age <= tenuring_threshold]
        keep.sort(key=lambda c: c.age)  # youngest first: oldest overflow first
        packed: List[Cohort] = []
        packed_bytes = 0.0
        for c in keep:
            if packed_bytes + c.resident <= survivor_cap:
                packed.append(c)
                packed_bytes += c.resident
            else:
                tenured.append(c)
        vol.copied_to_survivor += packed_bytes

        # 4. Promote tenured cohorts into the old generation.
        promoted_bytes = sum(c.resident for c in tenured)
        vol.promoted += promoted_bytes
        vol.promoted_small += g.promoted_bytes + sum(
            c.resident for c in tenured if c.mean_object_size() < 256 * 1024
        )
        total_promoted = vol.promoted
        if total_promoted > self.old_free_effective + 1e-6:
            vol.promotion_failed = True
            # Promote what fits; the caller must follow with a full GC.
            fits: List[Cohort] = []
            room = self.old_free_effective
            for c in sorted(tenured, key=lambda c: -c.age):
                if c.resident <= room:
                    fits.append(c)
                    room -= c.resident
                else:
                    packed.append(c)  # stranded in survivor bookkeeping
                    packed_bytes += c.resident
            tenured = fits
            promoted_bytes = sum(c.resident for c in tenured)

        # 5. Commit the move.
        self.eden_cohorts = []
        self.survivor_cohorts = packed
        for c in tenured:
            self.old_cohorts.append(c)
        self.eden.reset()
        self.survivor.used = 0.0
        self._commit_survivor(packed_bytes + graph_survivor_bytes)
        if promoted_bytes + g.promoted_bytes > 0:
            self.old.add(min(promoted_bytes + g.promoted_bytes, self.old.free))

        # Promoted data starts out with some dirty references into young.
        redirty = 0.15 * (promoted_bytes + g.promoted_bytes)
        self.dirty_card_bytes = redirty
        self._reset_card_structures(redirty)
        vol.marked = vol.copied_to_survivor + vol.promoted
        self._last_minor_at = now
        return vol

    def full_collection(self, now: float, *, compacting: bool = True) -> CollectionVolumes:
        """Collect every generation.

        All young survivors are promoted to the old generation (as HotSpot
        full GCs do); dead old bytes are reclaimed. With ``compacting=True``
        the old generation is slid (fragmentation resets to zero); with
        ``compacting=False`` (CMS foreground mark-sweep) the space is freed
        in place and fragmentation persists.
        """
        vol = CollectionVolumes(kind="full")
        vol.old_occupancy_before = self.old.occupancy

        eden_freed, eden_survivors = batch_collect(self.eden_cohorts, now)
        surv_freed, surv_survivors = batch_collect(self.survivor_cohorts, now)
        old_freed, old_live = batch_collect(self.old_cohorts, now)
        vol.eden_freed += eden_freed
        vol.survivor_freed += surv_freed
        vol.old_freed += old_freed
        survivors: List[Cohort] = eden_survivors + surv_survivors

        g = self.graph.full_collect()
        vol.eden_freed += g.freed_bytes  # graph doesn't split young/old freed
        cohort_live = sum(c.resident for c in survivors) + sum(
            c.resident for c in old_live
        )
        live = cohort_live + self.graph.total_bytes
        vol.marked = live
        vol.swept = self.old.used + self.young_used
        if compacting:
            vol.compacted = live
            self.fragmentation = 0.0

        if live > self.config.heap_bytes + 1e-6:
            raise HeapError(
                f"live data {fmt_bytes(live)} exceeds heap "
                f"{fmt_bytes(self.config.heap_bytes)}"
            )
        # Promote young survivors into the compacted old gen, oldest first;
        # whatever does not fit stays in the young generation (HotSpot keeps
        # live young data in place when the old gen is tight).
        room = self.old.capacity - (
            sum(c.resident for c in old_live) + self.graph.old_bytes
        )
        promoted_cohorts: List[Cohort] = []
        stranded: List[Cohort] = []
        for c in sorted(survivors, key=lambda c: -c.age):
            if c.resident <= room:
                promoted_cohorts.append(c)
                room -= c.resident
            else:
                stranded.append(c)
        vol.promoted = sum(c.resident for c in promoted_cohorts) + g.promoted_bytes

        self.eden_cohorts = []
        self.survivor_cohorts = stranded
        self.old_cohorts = old_live + promoted_cohorts
        self.eden.reset()
        stranded_bytes = sum(c.resident for c in stranded)
        self.survivor.used = 0.0
        self._commit_survivor(stranded_bytes)
        self.old.used = min(
            sum(c.resident for c in self.old_cohorts) + self.graph.old_bytes,
            self.old.capacity,
        )
        self.dirty_card_bytes = 0.0
        self._reset_card_structures(0.0)
        return vol

    def _commit_survivor(self, survivor_bytes: float) -> None:
        """Install post-collection survivor contents, handling overflow.

        Survivor bytes beyond the nominal semispace capacity ("to-space
        overflow") borrow eden capacity, so total young capacity is
        conserved — eden shrinks and allocations fail sooner, which is
        exactly the thrashing HotSpot exhibits when live data barely fits
        the heap (paper Table 3, 250 MB rows).
        """
        overflow = max(0.0, survivor_bytes - self._nominal_survivor)
        self.survivor.capacity = self._nominal_survivor + overflow
        self.survivor.add(survivor_bytes)
        self.eden.capacity = max(self._nominal_eden - overflow, 0.0)
        self.tlabs.eden_capacity = max(self.eden.capacity, 1.0)

    def sweep_old(self, now: float, *, fragmentation_increment: float = 0.02) -> CollectionVolumes:
        """CMS-style concurrent sweep of the old generation (no moving).

        Frees dead old bytes in place and increases fragmentation.
        """
        vol = CollectionVolumes(kind="sweep")
        vol.old_occupancy_before = self.old.occupancy
        vol.swept = self.old.used
        vol.old_freed, self.old_cohorts = batch_collect(self.old_cohorts, now)
        self.old.remove(min(vol.old_freed, self.old.used))
        if vol.old_freed > 0:
            self.fragmentation = min(
                self.fragmentation_cap, self.fragmentation + fragmentation_increment
            )
        return vol

    def old_live_bytes(self, now: float) -> float:
        """Expected live bytes currently in the old generation."""
        return float(batch_live_bytes(self.old_cohorts, now).sum()) + self.graph.old_bytes

    # ------------------------------------------------------------------
    # Dynamic young sizing (G1)
    # ------------------------------------------------------------------

    def resize_young(self, new_young_bytes: float) -> None:
        """Resize the young generation (G1's pause-target policy).

        Only legal right after a collection, while eden is empty. The old
        generation receives/cedes the complementary capacity.
        """
        if self.eden.used > 0:
            raise HeapError("resize_young requires an empty eden")
        new_young_bytes = min(max(new_young_bytes, 1 * MB), self.config.heap_bytes * 0.6)
        ratio = self.config.survivor_ratio
        eden_cap = new_young_bytes * ratio / (ratio + 2)
        surv_cap = new_young_bytes / (ratio + 2)
        if surv_cap < self.survivor.used:
            surv_cap = self.survivor.used
            eden_cap = max(new_young_bytes - 2 * surv_cap, 1 * MB)
        old_cap = self.config.heap_bytes - (eden_cap + 2 * surv_cap)
        if old_cap < self.old.used:
            return  # old gen too full to shrink; keep current geometry
        self.eden.resize(eden_cap)
        self.survivor.resize(surv_cap)
        self.old.resize(old_cap)
        self._nominal_eden = eden_cap
        self._nominal_survivor = surv_cap
        self.tlabs.eden_capacity = eden_cap

    def check_invariants(self, now: float) -> None:
        """Raise on accounting drift (used by tests, debug runs and the
        runtime :class:`~repro.lint.audit.InvariantAuditor`).

        Every space's cohort-resident total must fit inside its space
        accounting, with the shared :data:`_EPSILON` slack applied once
        per comparison (the old-gen check used to apply it on both sides,
        doubling the tolerance relative to eden's).
        """
        eden_resident = sum(c.resident for c in self.eden_cohorts)
        if eden_resident > self.eden.used + _EPSILON:
            raise HeapError(
                f"eden cohorts {eden_resident} exceed eden.used {self.eden.used}"
            )
        surv_resident = sum(c.resident for c in self.survivor_cohorts)
        if surv_resident > self.survivor.used + _EPSILON:
            raise HeapError(
                f"survivor cohorts {surv_resident} exceed "
                f"survivor.used {self.survivor.used}"
            )
        old_resident = sum(c.resident for c in self.old_cohorts) + self.graph.old_bytes
        if old_resident > self.old.used + _EPSILON:
            raise HeapError(
                f"old cohorts {old_resident} exceed old.used {self.old.used}"
            )
        if not (0.0 <= self.fragmentation <= self.fragmentation_cap + _EPSILON):
            raise HeapError(
                f"fragmentation {self.fragmentation} outside "
                f"[0, {self.fragmentation_cap}]"
            )
        if self.dirty_card_bytes < -_EPSILON:
            raise HeapError(
                f"negative dirty_card_bytes {self.dirty_card_bytes}"
            )
        if not (0 <= self.card_table.dirty_cards_count
                <= self.card_table.total_cards):
            raise HeapError(
                f"dirty card count {self.card_table.dirty_cards_count} "
                f"outside [0, {self.card_table.total_cards}]"
            )
        if (self.remset is not None
                and self.remset.total_cards != self.card_table.dirty_cards_count):
            raise HeapError(
                f"remset cards {self.remset.total_cards} out of sync with "
                f"card table {self.card_table.dirty_cards_count}"
            )
        self.graph.check_invariants()
