"""Analytic allocation cohorts.

A :class:`Cohort` represents a batch of bytes allocated over a short time
window by one thread, sharing a lifetime distribution. Collections compute
the cohort's expected live bytes in closed form, so a collection costs
O(#cohorts) regardless of how many *objects* the cohort stands for.

Accounting invariants (checked by tests):

* ``0 <= live_bytes(now) <= resident <= allocated`` for unreleased cohorts;
* ``live_bytes`` is non-increasing in ``now`` (survival is monotone);
* a *pinned* cohort is fully live until :meth:`release` is called, after
  which it is fully dead (its space is reclaimed at the next collection
  that visits it).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import ConfigError
from .lifetime import Immortal, LifetimeDistribution

_ids = itertools.count(1)


class Cohort:
    """A batch of bytes allocated on ``[t0, t1]`` with a shared lifetime law.

    Parameters
    ----------
    t0, t1:
        Allocation window (simulated seconds); ``t0 <= t1``.
    allocated:
        Total bytes allocated in the window.
    dist:
        Lifetime distribution of the bytes.
    n_objects:
        How many objects the cohort stands for (used for allocation-path
        cost accounting only).
    pinned:
        Pinned cohorts ignore *dist* and stay fully live until
        :meth:`release` — used for explicitly-managed live sets such as a
        memtable chunk or a benchmark's heap-resident database.
    label:
        Free-form tag for logs and debugging.
    """

    __slots__ = (
        "cid",
        "t0",
        "t1",
        "allocated",
        "dist",
        "n_objects",
        "pinned",
        "released",
        "resident",
        "age",
        "label",
    )

    def __init__(
        self,
        t0: float,
        t1: float,
        allocated: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: float = 1.0,
        pinned: bool = False,
        label: str = "",
    ):
        if t1 < t0:
            raise ConfigError(f"bad cohort window [{t0}, {t1}]")
        if allocated < 0:
            raise ConfigError("allocated must be >= 0")
        if dist is None:
            if not pinned:
                raise ConfigError("non-pinned cohorts need a lifetime distribution")
            dist = Immortal()
        self.cid = next(_ids)
        self.t0 = float(t0)
        self.t1 = float(t1)
        self.allocated = float(allocated)
        self.dist = dist
        self.n_objects = float(n_objects)
        self.pinned = bool(pinned)
        self.released = False
        #: Bytes currently occupying heap space. Allocation occupies space at
        #: the full allocated volume; collections shrink it to the live part.
        self.resident = float(allocated)
        #: Number of collections survived (drives tenuring).
        self.age = 0
        self.label = label

    @classmethod
    def bump(cls, t0: float, t1: float, allocated: float, dist,
             n_objects: float, label: str) -> "Cohort":
        """Validation-free constructor for the batched eden bump path.

        The caller (``MutatorContext._allocate_span`` pass 1) has already
        proven ``t1 >= t0``, ``allocated >= 0`` and ``dist is not None``;
        re-checking per piece was measurable. Field values are identical
        to ``Cohort(t0, t1, allocated, dist, n_objects=..., label=...)``.
        """
        self = cls.__new__(cls)
        self.cid = next(_ids)
        self.t0 = float(t0)
        self.t1 = float(t1)
        self.allocated = float(allocated)
        self.dist = dist
        self.n_objects = float(n_objects)
        self.pinned = False
        self.released = False
        self.resident = float(allocated)
        self.age = 0
        self.label = label
        return self

    # ------------------------------------------------------------------

    #: Live fractions below this are rounded to zero at collection time:
    #: the residual tail of a heavy-tailed cohort is treated as dead once
    #: 99 % of it is. Keeps cohort counts bounded on long runs.
    TAIL_CUTOFF = 0.01

    def live_bytes(self, now: float) -> float:
        """Expected live bytes at *now* (capped by current residency)."""
        if self.pinned:
            return 0.0 if self.released else self.resident
        if self.allocated == 0.0:
            return 0.0
        frac = self.dist.window_live_fraction(self.t0, self.t1, max(now, self.t1))
        return min(self.resident, self.allocated * frac)

    def collect(self, now: float) -> float:
        """Drop the dead part at *now*; returns bytes freed.

        After this call ``resident == live_bytes(now)`` (zero once the live
        fraction falls under :attr:`TAIL_CUTOFF`) and :attr:`age` has been
        incremented (one more collection survived).
        """
        live = self.live_bytes(now)
        if not self.pinned and live <= max(self.TAIL_CUTOFF * self.allocated, 0.5):
            live = 0.0
        freed = self.resident - live
        self.resident = live
        self.age += 1
        return freed

    def release(self) -> float:
        """Mark a pinned cohort dead; returns the bytes that became garbage.

        The space itself is reclaimed only when a collection next visits the
        cohort (garbage occupies heap until collected, as in a real JVM).
        """
        if not self.pinned:
            raise ConfigError("release() is only valid for pinned cohorts")
        if self.released:
            return 0.0
        self.released = True
        return self.resident

    @property
    def is_dead(self) -> bool:
        """True when the cohort holds no bytes worth keeping."""
        return self.resident <= 0.5 or (self.pinned and self.released)

    def mean_object_size(self) -> float:
        """Average object size the cohort stands for."""
        return self.allocated / self.n_objects if self.n_objects else self.allocated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "pinned" if self.pinned else repr(self.dist)
        return (
            f"<Cohort #{self.cid} {self.label or ''} {self.resident:.0f}B/"
            f"{self.allocated:.0f}B age={self.age} {kind}>"
        )
