"""Heap spaces: byte-accounted arenas making up the generations.

A :class:`Space` tracks capacity and usage; the heap wires eden, two
survivor semispaces and the old generation together. Spaces do not know
about cohorts or objects — they are pure accounting, which keeps the
occupancy invariants easy to state and test.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError, HeapError


class SpaceKind(enum.Enum):
    """Logical role of a space within the generational heap."""

    EDEN = "eden"
    SURVIVOR = "survivor"
    OLD = "old"


class Space:
    """A byte-accounted heap arena.

    Invariant: ``0 <= used <= capacity`` at all times (enforced).
    """

    __slots__ = ("name", "kind", "capacity", "used")

    def __init__(self, name: str, kind: SpaceKind, capacity: float):
        if capacity < 0:
            raise ConfigError(f"space {name!r}: negative capacity")
        self.name = name
        self.kind = kind
        self.capacity = float(capacity)
        self.used = 0.0

    @property
    def free(self) -> float:
        """Unused bytes."""
        return self.capacity - self.used

    @property
    def occupancy(self) -> float:
        """Used fraction in [0, 1] (0 for a zero-capacity space)."""
        return self.used / self.capacity if self.capacity > 0 else 0.0

    def can_fit(self, n_bytes: float) -> bool:
        """Whether *n_bytes* more would fit."""
        return n_bytes <= self.free + 1e-6

    def add(self, n_bytes: float) -> None:
        """Occupy *n_bytes*; raises :class:`HeapError` on overflow."""
        if n_bytes < 0:
            raise ConfigError("add() takes non-negative bytes")
        if n_bytes > self.free + 1e-6:
            raise HeapError(
                f"space {self.name!r} overflow: used {self.used:.0f} + {n_bytes:.0f}"
                f" > capacity {self.capacity:.0f}"
            )
        self.used = min(self.used + n_bytes, self.capacity)

    def remove(self, n_bytes: float) -> None:
        """Release *n_bytes*; raises :class:`HeapError` on underflow."""
        if n_bytes < 0:
            raise ConfigError("remove() takes non-negative bytes")
        if n_bytes > self.used + 1e-6:
            raise HeapError(
                f"space {self.name!r} underflow: used {self.used:.0f} - {n_bytes:.0f}"
            )
        self.used = max(self.used - n_bytes, 0.0)

    def reset(self) -> None:
        """Empty the space (evacuation complete)."""
        self.used = 0.0

    def resize(self, new_capacity: float) -> None:
        """Change capacity; refuses to shrink below current usage."""
        if new_capacity < 0:
            raise ConfigError("negative capacity")
        if new_capacity + 1e-6 < self.used:
            raise HeapError(
                f"cannot shrink {self.name!r} to {new_capacity:.0f} < used {self.used:.0f}"
            )
        self.capacity = float(new_capacity)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Space {self.name} {self.used:.0f}/{self.capacity:.0f}B>"
