"""Thread-Local Allocation Buffers (TLABs).

TLABs trade allocation-path cost for space: each thread bump-allocates in
a private eden chunk (no synchronization) but leaves, on average, half a
buffer unused when eden fills, and pays a CAS per refill. We model:

* the *space* effect as an eden reservation (``expected_waste``), which
  makes collections slightly more frequent — this is what lets TLABs
  occasionally *hurt* (paper Table 4);
* the *time* effect through
  :meth:`repro.machine.costs.CostModel.alloc_overhead`.

HotSpot sizes TLABs adaptively: eden / (allocating threads × target
refills). We reproduce that ergonomic as the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..units import KB, MB


@dataclass(frozen=True)
class TLABConfig:
    """TLAB settings (mirrors ``-XX:+UseTLAB`` and ``-XX:TLABSize``)."""

    enabled: bool = True
    #: Fixed TLAB size in bytes, or ``None`` for HotSpot-style adaptive
    #: sizing (eden / (threads * target_refills)).
    size: Optional[float] = None
    #: Adaptive sizing targets this many refills per thread per young GC.
    target_refills: int = 50
    min_size: float = 16 * KB
    max_size: float = 4 * MB

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise ConfigError("TLAB size must be positive")
        if self.target_refills < 1:
            raise ConfigError("target_refills must be >= 1")


class TLABManager:
    """Computes TLAB sizing and expected waste for a heap + thread count."""

    def __init__(self, config: TLABConfig, eden_capacity: float, n_threads: int):
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        self.config = config
        self.eden_capacity = float(eden_capacity)
        self.n_threads = int(n_threads)

    @property
    def tlab_size(self) -> float:
        """Effective per-thread TLAB size in bytes (0 when disabled)."""
        if not self.config.enabled:
            return 0.0
        if self.config.size is not None:
            return float(self.config.size)
        adaptive = self.eden_capacity / (self.n_threads * self.config.target_refills)
        return float(min(max(adaptive, self.config.min_size), self.config.max_size))

    @property
    def expected_waste(self) -> float:
        """Eden bytes expected to be stranded in half-full TLABs at GC time.

        Half a buffer per allocating thread, capped at 10 % of eden so a
        pathological thread count cannot consume the whole nursery.
        """
        if not self.config.enabled:
            return 0.0
        waste = 0.5 * self.tlab_size * self.n_threads
        return float(min(waste, 0.10 * self.eden_capacity))
