"""Thread-Local Allocation Buffers (TLABs).

TLABs trade allocation-path cost for space: each thread bump-allocates in
a private eden chunk (no synchronization) but leaves, on average, half a
buffer unused when eden fills, and pays a CAS per refill. We model:

* the *space* effect as an eden reservation (``expected_waste``), which
  makes collections slightly more frequent — this is what lets TLABs
  occasionally *hurt* (paper Table 4);
* the *time* effect through
  :meth:`repro.machine.costs.CostModel.alloc_overhead`.

HotSpot sizes TLABs adaptively: eden / (allocating threads × target
refills). We reproduce that ergonomic as the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..units import KB, MB


@dataclass(frozen=True)
class TLABConfig:
    """TLAB settings (mirrors ``-XX:+UseTLAB`` and ``-XX:TLABSize``)."""

    enabled: bool = True
    #: Fixed TLAB size in bytes, or ``None`` for HotSpot-style adaptive
    #: sizing (eden / (threads * target_refills)).
    size: Optional[float] = None
    #: Adaptive sizing targets this many refills per thread per young GC.
    target_refills: int = 50
    min_size: float = 16 * KB
    max_size: float = 4 * MB

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise ConfigError("TLAB size must be positive")
        if self.target_refills < 1:
            raise ConfigError("target_refills must be >= 1")


class TLABManager:
    """Computes TLAB sizing and expected waste for a heap + thread count.

    ``tlab_size`` and ``expected_waste`` are pure functions of the config,
    eden capacity and thread count, but they sit on the per-allocation hot
    path (every ``eden_free`` check reads ``expected_waste``), so both are
    cached and recomputed only when :attr:`eden_capacity` changes — the
    single input that moves at runtime (young-gen resizing).
    """

    __slots__ = ("config", "n_threads", "_eden_capacity",
                 "tlab_size", "expected_waste")

    def __init__(self, config: TLABConfig, eden_capacity: float, n_threads: int):
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        self.config = config
        self.n_threads = int(n_threads)
        self._eden_capacity = float(eden_capacity)
        self._recompute()

    @property
    def eden_capacity(self) -> float:
        """Eden capacity the sizing is based on (setting it re-sizes)."""
        return self._eden_capacity

    @eden_capacity.setter
    def eden_capacity(self, value: float) -> None:
        value = float(value)
        if value != self._eden_capacity:
            self._eden_capacity = value
            self._recompute()

    def _recompute(self) -> None:
        config = self.config
        if not config.enabled:
            #: Effective per-thread TLAB size in bytes (0 when disabled).
            self.tlab_size = 0.0
            #: Eden bytes expected stranded in half-full TLABs at GC time:
            #: half a buffer per allocating thread, capped at 10 % of eden
            #: so a pathological thread count cannot consume the nursery.
            self.expected_waste = 0.0
            return
        if config.size is not None:
            size = float(config.size)
        else:
            adaptive = self._eden_capacity / (self.n_threads * config.target_refills)
            size = float(min(max(adaptive, config.min_size), config.max_size))
        self.tlab_size = size
        waste = 0.5 * size * self.n_threads
        self.expected_waste = float(min(waste, 0.10 * self._eden_capacity))
