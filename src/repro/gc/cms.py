"""ConcurrentMarkSweep: mostly-concurrent old-generation collection.

Young collections are ParNew's. The old generation is collected by a
concurrent cycle (paper §2, Table 1):

1. **initial mark** (STW): scan roots into the old generation;
2. **concurrent mark**: trace the old generation alongside mutators;
3. **remark** (STW): re-scan objects dirtied during concurrent marking
   (young generation + dirty cards);
4. **concurrent sweep**: free dead space into free lists — *no
   compaction*, so fragmentation accumulates until a fallback full GC.

A promotion failure while the cycle cannot keep up is HotSpot's
*concurrent mode failure*: a **serial** mark-sweep-compact of the whole
heap, which is where CMS's multi-second (or worse) pauses come from.
"""

from __future__ import annotations

from .base import Collector, Outcome, STWPause
from .stats import ConcurrentRecord


class ConcurrentMarkSweepGC(Collector):
    """``-XX:+UseConcMarkSweepGC``."""

    name = "ConcMarkSweepGC"
    parallel_young = True
    parallel_full = False  # the fallback full GC is serial
    tenuring_threshold = 4
    survivor_target_fraction = 0.35
    card_scan_weight = 3.0
    promotion_bw_scale = 0.8
    overflow_promotion_penalty = 0.25
    young_fixed_cost = 0.002
    full_fixed_cost = 0.010

    #: Old-gen occupancy (of effective capacity) that initiates a cycle.
    initiating_occupancy = 0.75
    #: Fraction of the young generation re-scanned at remark.
    remark_young_fraction = 0.3
    #: Fragmentation added per concurrent sweep cycle (resets at compaction).
    sweep_fragmentation = 0.004

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.conc_threads = self.costs.default_concurrent_gc_threads()
        self._state = "idle"  # idle | marking | sweeping
        self._cycle_gen = 0   # invalidates stale scheduled continuations
        # CMS free lists tolerate moderate fragmentation before a CMF.
        self.heap.fragmentation_cap = 0.05

    # ------------------------------------------------------------------

    @property
    def concurrent_threads_active(self) -> int:
        return self.conc_threads if self._state != "idle" else 0

    @property
    def cycle_state(self) -> str:
        """Current concurrent-cycle state (``idle``/``marking``/``sweeping``)."""
        return self._state

    def after_minor(self, now, vol, outcome: Outcome) -> None:
        if self._state != "idle":
            return
        old = self.heap.old
        effective = self.heap.old_effective_capacity
        if effective <= 0 or old.used / effective < self.initiating_occupancy:
            return
        self._start_cycle(now, outcome)

    def _start_cycle(self, now: float, outcome: Outcome) -> None:
        self._state = "marking"
        self._cycle_gen += 1
        gen = self._cycle_gen
        # Initial mark: roots + direct old references (short STW pause).
        initial = STWPause(
            "initial-mark",
            "CMS Initial Mark",
            self.costs.stw_duration(
                n_threads=self._young_threads(),
                marked=0.05 * self.heap.old.used,
                fixed=0.005,
                rate_factor=self._locality(),
            )
            * self._jitter(),
        )
        outcome.pauses.append(initial)
        mark_work = self.heap.old_live_bytes(now)
        mark_duration = max(
            self.costs.concurrent_duration(marked=mark_work, n_threads=self.conc_threads, rate_factor=self._locality()),
            0.01,
        )
        outcome.concurrent.append(
            ConcurrentRecord(now, mark_duration, "concurrent-mark", self.name)
        )
        outcome.schedule.append(
            (mark_duration, lambda t, g=gen: self._finish_mark(t, g))
        )

    def _finish_mark(self, now: float, gen: int) -> Outcome:
        if gen != self._cycle_gen or self._state != "marking":
            return Outcome()  # cycle was aborted by a concurrent mode failure
        outcome = Outcome()
        remark = STWPause(
            "remark",
            "CMS Final Remark",
            self.costs.stw_duration(
                n_threads=self._young_threads(),
                marked=self.remark_young_fraction * self.heap.young_used,
                cards_scanned=self.heap.dirty_card_bytes * self.card_scan_weight,
                fixed=0.010,
                rate_factor=self._locality(),
            )
            * self._jitter(),
        )
        outcome.pauses.append(remark)
        self._state = "sweeping"
        sweep_duration = max(
            self.costs.concurrent_duration(
                swept=self.heap.old.used, n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.01,
        )
        outcome.concurrent.append(
            ConcurrentRecord(now, sweep_duration, "concurrent-sweep", self.name)
        )
        outcome.schedule.append(
            (sweep_duration, lambda t, g=gen: self._finish_sweep(t, g))
        )
        return outcome

    def _finish_sweep(self, now: float, gen: int) -> Outcome:
        if gen != self._cycle_gen or self._state != "sweeping":
            return Outcome()
        self.heap.sweep_old(now, fragmentation_increment=self.sweep_fragmentation)
        self._state = "idle"
        return Outcome()

    # ------------------------------------------------------------------

    def _promotion_failure_full(self, now: float) -> STWPause:
        """Concurrent mode failure: abort the cycle, serial compacting GC."""
        self._state = "idle"
        self._cycle_gen += 1
        self.tracer.annotate(now, "concurrent_mode_failure")
        return self._full(now, "Concurrent Mode Failure")

    def explicit_gc(self, now: float) -> Outcome:
        """System.gc(): aborts any running cycle and performs a serial
        mark-sweep-compact (HotSpot's default without
        ``-XX:+ExplicitGCInvokesConcurrent``)."""
        self._state = "idle"
        self._cycle_gen += 1
        pause = self._full(now, "System.gc()")
        return Outcome(pauses=[pause])
