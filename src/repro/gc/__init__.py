"""The six OpenJDK 8 garbage collectors (paper Table 1).

Every collector really traces the simulated heap (cohorts + object graph)
and converts the work it performed into stop-the-world pause durations via
the machine cost model. Structural properties match HotSpot in OpenJDK 8:

=============  ===========================  =================================
Collector      Young collection             Old collection
=============  ===========================  =================================
Serial         serial copying               serial mark-compact
ParNew         parallel copying             serial mark-compact
Parallel       parallel copying (scavenge)  **serial** mark-sweep-compact
ParallelOld    parallel copying (scavenge)  parallel mark-compact
CMS            parallel copying (ParNew)    concurrent mark-sweep (STW
                                            initial-mark + remark), no
                                            compaction, serial fallback
G1             parallel evacuation          concurrent marking + mixed
                                            evacuations; **serial** full GC
=============  ===========================  =================================
"""

from .base import Collector, Outcome, STWPause
from .stats import GCLog, PauseRecord
from .registry import (
    ALL_GC_NAMES,
    GC_NAMES,
    GCType,
    MODERN_GC_NAMES,
    TABLE8_GC_NAMES,
    collector_class,
    create_collector,
)
from .serial import SerialGC
from .parnew import ParNewGC
from .parallel import ParallelGC
from .parallel_old import ParallelOldGC
from .cms import ConcurrentMarkSweepGC
from .g1 import G1GC
from .htm import HTMGC
from .zgc import ZGC
from .shenandoah import ShenandoahGC
from .epsilon import EpsilonGC

__all__ = [
    "Collector",
    "Outcome",
    "STWPause",
    "GCLog",
    "PauseRecord",
    "GCType",
    "GC_NAMES",
    "MODERN_GC_NAMES",
    "ALL_GC_NAMES",
    "TABLE8_GC_NAMES",
    "collector_class",
    "create_collector",
    "SerialGC",
    "ParNewGC",
    "ParallelGC",
    "ParallelOldGC",
    "ConcurrentMarkSweepGC",
    "G1GC",
    "HTMGC",
    "ZGC",
    "ShenandoahGC",
    "EpsilonGC",
]
