"""ZGC-style fully-concurrent copying collector.

Models the structure the "Distilling the Real Cost of Production
Garbage Collectors" paper measures for ZGC:

* **Tiny bounded STW pauses.** The only stop-the-world work is three
  sub-millisecond synchronisation points per cycle — ``mark-start``
  (root scan + barrier flip), ``mark-end`` (marking termination) and
  ``relocate-start`` (relocation-set selection + barrier flip). Pause
  durations are O(roots), independent of heap size.
* **Concurrent relocation.** All copying happens while mutators run,
  on dedicated GC threads (CPU steal), slower than STW copying because
  every access races a colored-pointer load barrier
  (:attr:`conc_copy_factor`).
* **Load-barrier tax.** The colored-pointer load barrier is always
  armed (:attr:`base_tax`); self-healing remap traffic adds more while
  a relocation is in flight (:attr:`relocation_tax`).
* **Allocation stalls.** When allocation outruns reclamation — eden
  fills again before the in-flight relocation finishes — the allocating
  thread *stalls* until the relocation completes instead of the world
  stopping. This is ZGC's signature degradation mode: throughput
  suffers; the pause profile stays flat.
* On true exhaustion (promotion failure mid-relocation) the simulator
  degrades to a serial STW full collection, the worst case the real
  collector works very hard to avoid.

Runs with full card/remset fidelity: the heap's explicit card table
prices young scans and a per-region remembered set tracks into-region
references (evacuation candidates' remembered cards move with them).
"""

from __future__ import annotations

from ..heap.cards import RememberedSet
from ..heap.heap import CollectionVolumes
from ..heap.regions import RegionTable
from .base import Collector, Outcome, STWPause
from .stats import ConcurrentRecord, RELOCATION_PHASE


class ZGC(Collector):
    """``-XX:+UseZGC``-style concurrent copying collector."""

    name = "ZGC"
    parallel_young = True
    parallel_full = False          # exhaustion fallback is serial
    tenuring_threshold = 4
    survivor_target_fraction = 0.5
    card_scan_weight = 1.0
    young_fixed_cost = 0.002
    full_fixed_cost = 0.015
    full_overhead_factor = 1.2     # fallback walks forwarding tables

    #: STW synchronisation points (seconds, before jitter): O(roots).
    mark_start_pause: float = 0.0008
    mark_end_pause: float = 0.0012
    relocate_start_pause: float = 0.0010
    #: Permanent mutator slowdown from the always-armed colored-pointer
    #: load barrier (the Distilling paper's LBO floor for ZGC).
    base_tax: float = 0.04
    #: Additional slowdown while a relocation is in flight (self-healing
    #: barrier remaps + remembered-set maintenance).
    relocation_tax: float = 0.04
    #: Concurrent copying bandwidth relative to STW copying.
    conc_copy_factor: float = 0.75
    #: Old-gen occupancy triggering a concurrent mark + old relocation.
    old_trigger: float = 0.65

    def __init__(self, *args, **kwargs):
        # Forced, not defaulted: the JVM passes the config flag
        # explicitly, and colored-pointer ZGC has no coarse-scalar mode.
        kwargs["remset_fidelity"] = True
        super().__init__(*args, **kwargs)
        self.regions = RegionTable.for_heap(self.heap.config.heap_bytes)
        if self.heap.remset is None:
            self.heap.attach_remset(RememberedSet(self.regions))
        self.conc_threads = max(1, self.costs.default_gc_threads() // 2)
        self._relocating = False       # young relocation in flight
        self._old_cycle = False        # concurrent mark/old relocation
        self._relocation_end = 0.0
        self._young_gen = 0            # invalidates stale young finishes
        self._old_gen = 0              # invalidates stale old-cycle finishes

    # ------------------------------------------------------------------

    @property
    def concurrent_threads_active(self) -> int:
        return self.conc_threads if (self._relocating or self._old_cycle) else 0

    @property
    def mutator_overhead(self) -> float:
        if self._relocating or self._old_cycle:
            return self.base_tax + self.relocation_tax
        return self.base_tax

    # ------------------------------------------------------------------

    def allocation_failure(self, now: float) -> Outcome:
        outcome = Outcome()
        if self._relocating and now < self._relocation_end:
            # Allocation outran reclamation: the allocating thread waits
            # for the in-flight relocation instead of the world stopping.
            outcome.stall_seconds = self._relocation_end - now
        pause, vol = self._flip_collection(now, "Allocation Stall"
                                           if outcome.stall_seconds > 0
                                           else "Allocation Failure")
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            outcome.stall_seconds = 0.0
            return outcome
        self._schedule_relocation(now, vol, outcome)
        self._maybe_old_cycle(now, outcome)
        return outcome

    def _flip_collection(self, now: float, cause: str):
        """Young collection decided at the relocate-start flip.

        Heap mechanics run eagerly (the relocation outcome is known in
        expectation at the flip); the copying *time* is paid concurrently
        by :meth:`_schedule_relocation`.
        """
        vol = self.heap.minor_collection(
            now,
            self._tenuring,
            survivor_target_fraction=self.survivor_target_fraction,
        )
        target = self.target_survivor_ratio * self.heap.survivor.capacity
        if vol.copied_to_survivor > target:
            self._tenuring = max(1, self._tenuring - 2)
        elif self._tenuring < self.tenuring_threshold:
            self._tenuring += 1
        duration = self.relocate_start_pause * self._jitter()
        return STWPause("relocate-start", cause, duration, vol), vol

    def _schedule_relocation(self, now: float, vol: CollectionVolumes,
                             outcome: Outcome) -> None:
        copy_work = vol.copied_to_survivor + vol.promoted
        if copy_work <= 0:
            self._relocating = False
            return
        duration = max(
            self.costs.concurrent_duration(
                marked=copy_work / self.conc_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.002,
        )
        self._relocating = True
        self._relocation_end = now + duration
        self._young_gen += 1
        gen = self._young_gen
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, RELOCATION_PHASE, self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish_young(t, g)))

    def _maybe_old_cycle(self, now: float, outcome: Outcome) -> None:
        if self._old_cycle or self.heap.old.occupancy < self.old_trigger:
            return
        self._old_cycle = True
        self._old_gen += 1
        gen = self._old_gen
        outcome.pauses.append(
            STWPause("mark-start", "ZGC Cycle", self.mark_start_pause * self._jitter())
        )
        mark_work = self.heap.old_live_bytes(now)
        duration = max(
            self.costs.concurrent_duration(
                marked=mark_work,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.005,
        )
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, "concurrent-mark", self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish_mark(t, g)))

    def _finish_mark(self, now: float, gen: int) -> Outcome:
        """Marking terminated: mark-end pause, then relocate the old
        generation concurrently (dead regions are reclaimed in place,
        remembered cards of evacuated regions move with their copies)."""
        if gen != self._old_gen or not self._old_cycle:
            return Outcome()
        outcome = Outcome()
        outcome.pauses.append(
            STWPause("mark-end", "ZGC Cycle", self.mark_end_pause * self._jitter())
        )
        live = self.heap.old_live_bytes(now)
        sweep = self.heap.sweep_old(now, fragmentation_increment=0.0)
        remset = self.heap.remset
        if remset is not None and remset.regions.total_regions > 1:
            # Evacuating the most-fragmented region forwards its
            # remembered cards to the relocation target.
            remset.evacuate_region(0, remset.regions.total_regions - 1)
        duration = max(
            self.costs.concurrent_duration(
                marked=live / self.conc_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.005,
        )
        self._old_gen += 1
        g2 = self._old_gen
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, RELOCATION_PHASE, self.name)
        )
        outcome.schedule.append((duration, lambda t, g=g2: self._finish_old(t, g)))
        _ = sweep
        return outcome

    def _finish_young(self, now: float, gen: int) -> Outcome:
        if gen == self._young_gen:
            self._relocating = False
        return Outcome()

    def _finish_old(self, now: float, gen: int) -> Outcome:
        if gen == self._old_gen:
            self._old_cycle = False
            self.heap.fragmentation = 0.0  # relocation compacts
        return Outcome()

    # ------------------------------------------------------------------

    def _exhaustion_fallback(self, now: float) -> STWPause:
        """Heap exhausted mid-cycle: serial STW full collection."""
        self._relocating = False
        self._old_cycle = False
        self._relocation_end = 0.0
        self._young_gen += 1
        self._old_gen += 1
        return self._full(now, "ZGC Exhaustion")

    def explicit_gc(self, now: float) -> Outcome:
        """``System.gc()``: a full *concurrent* cycle (ZGC never runs a
        STW full collection on request), honoured with the flip pauses."""
        outcome = Outcome()
        pause, vol = self._flip_collection(now, "System.gc()")
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            return outcome
        self._schedule_relocation(now, vol, outcome)
        if not self._old_cycle:
            self._old_cycle = True
            self._old_gen += 1
            gen = self._old_gen
            outcome.pauses.append(
                STWPause("mark-start", "System.gc()",
                         self.mark_start_pause * self._jitter())
            )
            mark_work = self.heap.old_live_bytes(now)
            duration = max(
                self.costs.concurrent_duration(
                    marked=mark_work,
                    n_threads=self.conc_threads,
                    rate_factor=self._locality(),
                ),
                0.005,
            )
            outcome.concurrent.append(
                ConcurrentRecord(now, duration, "concurrent-mark", self.name)
            )
            outcome.schedule.append(
                (duration, lambda t, g=gen: self._finish_mark(t, g))
            )
        return outcome
