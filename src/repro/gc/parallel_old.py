"""ParallelOldGC: parallel young + parallel compacting old generation.

OpenJDK 8's default collector and the paper's baseline. Both young and
full collections use the parallel GC thread pool, which is why it wins on
the DaCapo suite — and why its *huge* full collections on a 64 GB
mostly-live Cassandra heap still take minutes (the parallel compaction
bandwidth saturates well below linear scaling on the NUMA box).
"""

from __future__ import annotations

from .base import Collector


class ParallelOldGC(Collector):
    """``-XX:+UseParallelOldGC`` (the JDK 8 default)."""

    name = "ParallelOldGC"
    parallel_young = True
    parallel_full = True
    tenuring_threshold = 15
    survivor_target_fraction = 1.0
    card_scan_weight = 1.0
    promotion_degrades = True
    young_fixed_cost = 0.004
    #: ParallelOld's compaction has a *serial* summary phase between the
    #: parallel marking and compaction phases (region destination
    #: calculation) — a fixed cost its parallel phases cannot hide.
    full_fixed_cost = 0.030
