"""Collector registry: name -> factory, mirroring the JVM's GC flags."""

from __future__ import annotations

import enum
from typing import Dict, Type

from ..errors import ConfigError
from .base import Collector
from .cms import ConcurrentMarkSweepGC
from .g1 import G1GC
from .htm import HTMGC
from .parallel import ParallelGC
from .parallel_old import ParallelOldGC
from .parnew import ParNewGC
from .serial import SerialGC


class GCType(enum.Enum):
    """The six collectors evaluated by the paper (Table 1), plus the
    HTM-based collector the paper proposes as future work (§6)."""

    SERIAL = "SerialGC"
    PARNEW = "ParNewGC"
    PARALLEL = "ParallelGC"
    PARALLEL_OLD = "ParallelOldGC"
    CMS = "ConcMarkSweepGC"
    G1 = "G1GC"
    HTM = "HTMGC"


_REGISTRY: Dict[GCType, Type[Collector]] = {
    GCType.SERIAL: SerialGC,
    GCType.PARNEW: ParNewGC,
    GCType.PARALLEL: ParallelGC,
    GCType.PARALLEL_OLD: ParallelOldGC,
    GCType.CMS: ConcurrentMarkSweepGC,
    GCType.G1: G1GC,
    GCType.HTM: HTMGC,
}

#: The paper's six collectors, in its plotting order (the HTM extension
#: is deliberately excluded — it is the paper's *future work*).
GC_NAMES = [t.value for t in GCType if t is not GCType.HTM]

_ALIASES = {
    "serial": GCType.SERIAL,
    "serialgc": GCType.SERIAL,
    "parnew": GCType.PARNEW,
    "parnewgc": GCType.PARNEW,
    "parallel": GCType.PARALLEL,
    "parallelgc": GCType.PARALLEL,
    "parallelold": GCType.PARALLEL_OLD,
    "paralleloldgc": GCType.PARALLEL_OLD,
    "cms": GCType.CMS,
    "concmarksweep": GCType.CMS,
    "concmarksweepgc": GCType.CMS,
    "concurrentmarksweep": GCType.CMS,
    "g1": GCType.G1,
    "g1gc": GCType.G1,
    "htm": GCType.HTM,
    "htmgc": GCType.HTM,
}


def resolve_gc(name) -> GCType:
    """Resolve a flexible collector name/enum to a :class:`GCType`."""
    if isinstance(name, GCType):
        return name
    key = str(name).replace("-", "").replace("_", "").lower()
    try:
        return _ALIASES[key]
    except KeyError:
        raise ConfigError(
            f"unknown GC {name!r}; choose from {sorted(set(_ALIASES))}"
        ) from None


def create_collector(gc_type, heap, costs, **kwargs) -> Collector:
    """Instantiate the collector for *gc_type* on *heap* with *costs*.

    Extra keyword arguments (``gc_threads``, ``rng``, ``pause_target`` for
    G1...) are forwarded to the collector constructor.
    """
    gc = resolve_gc(gc_type)
    cls = _REGISTRY[gc]
    if gc is not GCType.G1:
        kwargs.pop("pause_target", None)
    return cls(heap, costs, **kwargs)
