"""Collector registry: name -> factory, mirroring the JVM's GC flags."""

from __future__ import annotations

import enum
from typing import Dict, Type

from ..errors import ConfigError
from .base import Collector
from .cms import ConcurrentMarkSweepGC
from .epsilon import EpsilonGC
from .g1 import G1GC
from .htm import HTMGC
from .parallel import ParallelGC
from .parallel_old import ParallelOldGC
from .parnew import ParNewGC
from .serial import SerialGC
from .shenandoah import ShenandoahGC
from .zgc import ZGC


class GCType(enum.Enum):
    """The six collectors evaluated by the paper (Table 1), plus the
    extensions: the HTM-based collector the paper proposes as future
    work (§6) and the modern fully-concurrent set measured by the
    Distilling-the-Real-Cost study (ZGC, Shenandoah, Epsilon)."""

    SERIAL = "SerialGC"
    PARNEW = "ParNewGC"
    PARALLEL = "ParallelGC"
    PARALLEL_OLD = "ParallelOldGC"
    CMS = "ConcMarkSweepGC"
    G1 = "G1GC"
    HTM = "HTMGC"
    ZGC = "ZGC"
    SHENANDOAH = "ShenandoahGC"
    EPSILON = "EpsilonGC"


_REGISTRY: Dict[GCType, Type[Collector]] = {
    GCType.SERIAL: SerialGC,
    GCType.PARNEW: ParNewGC,
    GCType.PARALLEL: ParallelGC,
    GCType.PARALLEL_OLD: ParallelOldGC,
    GCType.CMS: ConcurrentMarkSweepGC,
    GCType.G1: G1GC,
    GCType.HTM: HTMGC,
    GCType.ZGC: ZGC,
    GCType.SHENANDOAH: ShenandoahGC,
    GCType.EPSILON: EpsilonGC,
}

#: Collectors beyond the paper's measured six: the HTM future-work
#: extension and the modern fully-concurrent set (Epsilon is the LBO
#: ideal baseline, not a production collector).
_EXTENSIONS = frozenset({GCType.HTM, GCType.ZGC, GCType.SHENANDOAH, GCType.EPSILON})

#: The paper's six collectors, in its plotting order (the extensions
#: above are deliberately excluded — the paper never measured them).
GC_NAMES = [t.value for t in GCType if t not in _EXTENSIONS]

#: The modern fully-concurrent production collectors (Distilling study).
MODERN_GC_NAMES = [GCType.ZGC.value, GCType.SHENANDOAH.value]

#: Every production collector the simulator models (paper six + modern;
#: excludes the HTM thought experiment and the Epsilon oracle).
ALL_GC_NAMES = GC_NAMES + MODERN_GC_NAMES

#: Table 8's qualitative-summary roster extended into the modern era:
#: the paper's three headline collectors plus the concurrent newcomers.
TABLE8_GC_NAMES = (
    GCType.PARALLEL_OLD.value,
    GCType.CMS.value,
    GCType.G1.value,
    *MODERN_GC_NAMES,
)

_ALIASES = {
    "serial": GCType.SERIAL,
    "serialgc": GCType.SERIAL,
    "parnew": GCType.PARNEW,
    "parnewgc": GCType.PARNEW,
    "parallel": GCType.PARALLEL,
    "parallelgc": GCType.PARALLEL,
    "parallelold": GCType.PARALLEL_OLD,
    "paralleloldgc": GCType.PARALLEL_OLD,
    "cms": GCType.CMS,
    "concmarksweep": GCType.CMS,
    "concmarksweepgc": GCType.CMS,
    "concurrentmarksweep": GCType.CMS,
    "g1": GCType.G1,
    "g1gc": GCType.G1,
    "htm": GCType.HTM,
    "htmgc": GCType.HTM,
    "z": GCType.ZGC,
    "zgc": GCType.ZGC,
    "shenandoah": GCType.SHENANDOAH,
    "shenandoahgc": GCType.SHENANDOAH,
    "epsilon": GCType.EPSILON,
    "epsilongc": GCType.EPSILON,
    "nogc": GCType.EPSILON,
}


def resolve_gc(name) -> GCType:
    """Resolve a flexible collector name/enum to a :class:`GCType`."""
    if isinstance(name, GCType):
        return name
    key = str(name).replace("-", "").replace("_", "").lower()
    try:
        return _ALIASES[key]
    except KeyError:
        raise ConfigError(
            f"unknown GC {name!r}; choose from {sorted(set(_ALIASES))}"
        ) from None


def collector_class(gc_type) -> Type[Collector]:
    """The collector class for *gc_type* (for registry introspection —
    e.g. the energy model reads its ``parallel_young``/``parallel_full``
    flags without instantiating a heap)."""
    return _REGISTRY[resolve_gc(gc_type)]


def create_collector(gc_type, heap, costs, **kwargs) -> Collector:
    """Instantiate the collector for *gc_type* on *heap* with *costs*.

    Extra keyword arguments (``gc_threads``, ``rng``, ``pause_target`` for
    G1...) are forwarded to the collector constructor.
    """
    gc = resolve_gc(gc_type)
    cls = _REGISTRY[gc]
    if gc is not GCType.G1:
        kwargs.pop("pause_target", None)
    return cls(heap, costs, **kwargs)
