"""Garbage-First (G1): region-based, pause-target-driven collection.

G1 divides the heap into regions and sizes the young generation so that
evacuation pauses meet ``-XX:MaxGCPauseMillis`` (200 ms by default). A
concurrent marking cycle starts when old occupancy crosses the initiating
heap occupancy percent (IHOP, 45 %); after remark + cleanup, the next few
evacuation pauses are *mixed* — they also evacuate the old regions with
the most garbage ("garbage first").

Two structural properties drive the paper's findings:

* **The full GC is single-threaded** in OpenJDK 8 (a serial
  mark-sweep-compact over the region table). Forcing a ``System.gc()``
  per DaCapo iteration therefore makes G1 the worst collector by far
  (Figures 1(a), 2(a), 3(a)).
* G1 *ignores a fixed ``-Xmn``-style young size* (HotSpot warns against
  setting it) and keeps resizing young to meet the pause target — which is
  why its Cassandra pauses stay in seconds while ParallelOld's young
  pauses reach tens of seconds.
"""

from __future__ import annotations

from typing import Optional

from ..heap.cards import RememberedSet
from ..heap.heap import CollectionVolumes
from ..heap.regions import RegionTable
from .base import Collector, Outcome, STWPause
from .stats import ConcurrentRecord


class G1GC(Collector):
    """``-XX:+UseG1GC`` (OpenJDK 8 behaviour)."""

    name = "G1GC"
    parallel_young = True
    parallel_full = False          # JDK 8: serial full GC
    full_overhead_factor = 1.9     # region bookkeeping in the serial full GC
    tenuring_threshold = 4
    survivor_target_fraction = 0.5
    card_scan_weight = 2.0         # per-region remembered sets
    young_fixed_cost = 0.006       # RSet maintenance, choosing the CSet
    full_fixed_cost = 0.015

    #: Initiating heap occupancy percent for concurrent marking.
    ihop = 0.45
    #: Mixed collections following one marking cycle.
    mixed_count_target = 4
    #: Young-size bounds as heap fractions (G1NewSizePercent/G1MaxNewSizePercent).
    young_min_fraction = 0.05
    young_max_fraction = 0.60

    def __init__(self, *args, pause_target: float = 0.2, **kwargs):
        super().__init__(*args, **kwargs)
        self.pause_target = float(pause_target)
        self.regions = RegionTable.for_heap(self.heap.config.heap_bytes)
        # G1 always maintains per-region remembered sets (kept in sync
        # with the card table by the heap — pure integer bookkeeping);
        # they *price* the remark scan only under remset fidelity.
        if self.heap.remset is None:
            self.heap.attach_remset(RememberedSet(self.regions))
        self.conc_threads = self.costs.default_concurrent_gc_threads()
        self._state = "idle"       # idle | marking
        self._cycle_gen = 0
        self._mixed_remaining = 0
        #: Last observed evacuation pause, driving the young-size policy.
        self._last_pause: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def concurrent_threads_active(self) -> int:
        return self.conc_threads if self._state == "marking" else 0

    @property
    def cycle_state(self) -> str:
        """Concurrent-cycle state (``idle``/``marking``)."""
        return self._state

    @property
    def mixed_remaining(self) -> int:
        """Mixed evacuations still owed from the last marking cycle."""
        return self._mixed_remaining

    def humongous_threshold(self) -> float:
        """G1's humongous rule: objects of at least half a region are
        allocated directly in (old) humongous regions."""
        return self.regions.humongous_threshold

    def allocation_failure(self, now: float) -> Outcome:
        outcome = Outcome()
        kind = "mixed" if self._mixed_remaining > 0 else "young"
        pause, vol = self._minor(now, "Allocation Failure")
        pause.kind = kind
        if kind == "mixed":
            pause.duration += self._evacuate_old(now, vol)
            self._mixed_remaining -= 1
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._promotion_failure_full(now))
        self.after_minor(now, vol, outcome)
        self._adapt_young(now, pause.duration)
        return outcome

    # ------------------------------------------------------------------
    # Pause-target-driven young sizing
    # ------------------------------------------------------------------

    def _adapt_young(self, now: float, observed_pause: float) -> None:
        """Resize young toward the pause target.

        A multiplicative controller: if the last evacuation beat the
        target, grow the young generation (fewer, equally-short pauses);
        if it overshot, shrink it. This tracks HotSpot's behaviour
        including the important edge case where survivors are a fixed
        volume independent of young size — G1 then settles at a large
        young generation instead of thrashing at the minimum.
        """
        self._last_pause = observed_pause
        if observed_pause <= 0:
            return
        factor = (self.pause_target / observed_pause) ** 0.7
        factor = min(max(factor, 0.5), 2.0)
        current = self.heap.eden.capacity + 2 * self.heap.survivor.capacity
        heap_bytes = self.heap.config.heap_bytes
        target_young = min(
            max(current * factor, self.young_min_fraction * heap_bytes),
            self.young_max_fraction * heap_bytes,
        )
        # Round to whole regions.
        target_young = self.regions.bytes_for(
            max(1, self.regions.regions_for(target_young))
        )
        if target_young != current:
            self.tracer.heap_resize(now, "young", current, target_young)
        self.heap.resize_young(target_young)

    # ------------------------------------------------------------------
    # Concurrent marking and mixed collections
    # ------------------------------------------------------------------

    def after_minor(self, now, vol, outcome: Outcome) -> None:
        if self._state != "idle":
            return
        occupancy = self.heap.used / self.heap.config.heap_bytes
        if occupancy < self.ihop:
            return
        self._state = "marking"
        self._cycle_gen += 1
        gen = self._cycle_gen
        # Initial mark piggybacks on the evacuation pause.
        if outcome.pauses:
            outcome.pauses[-1].duration += 0.005 * self._jitter()
            outcome.pauses[-1].cause += " (initial-mark)"
        mark_work = self.heap.old_live_bytes(now)
        duration = max(
            self.costs.concurrent_duration(marked=mark_work, n_threads=self.conc_threads, rate_factor=self._locality()),
            0.01,
        )
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, "concurrent-mark", self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish_mark(t, g)))

    def _finish_mark(self, now: float, gen: int) -> Outcome:
        if gen != self._cycle_gen or self._state != "marking":
            return Outcome()
        outcome = Outcome()
        if self.remset_fidelity and self.heap.remset is not None:
            # Real remset cardinality: scan exactly the remembered cards
            # plus the per-region "into-old" component.
            remark_cards = (
                self.heap.remset.total_bytes + 0.02 * self.heap.old.used
            )
        else:
            # Legacy scalar approximation (byte-identical baseline path).
            remark_cards = self.heap.dirty_card_bytes + 0.02 * self.heap.old.used
        remark = STWPause(
            "remark",
            "G1 Remark",
            self.costs.stw_duration(
                n_threads=self._young_threads(),
                marked=0.1 * self.heap.young_used,
                # Region remembered sets grow with the old generation.
                cards_scanned=remark_cards * self.card_scan_weight,
                fixed=0.008,
                rate_factor=self._locality(),
            )
            * self._jitter(),
        )
        outcome.pauses.append(remark)
        # Cleanup: reclaim wholly-empty regions immediately (cheap STW).
        sweep = self.heap.sweep_old(now, fragmentation_increment=0.0)
        cleanup = STWPause(
            "cleanup",
            "G1 Cleanup",
            self.costs.stw_duration(
                n_threads=self._young_threads(),
                swept=sweep.swept * 0.1,
                fixed=0.003,
                rate_factor=self._locality(),
            )
            * self._jitter(),
            sweep,
        )
        outcome.pauses.append(cleanup)
        self._state = "idle"
        self._mixed_remaining = self.mixed_count_target
        return outcome

    def _evacuate_old(self, now: float, vol: CollectionVolumes) -> float:
        """Extra work of a mixed pause: evacuate the garbage-first old regions.

        Picks the old cohorts with the highest garbage fraction, frees their
        dead bytes, and charges the copying of their live bytes. Returns the
        extra pause seconds.
        """
        from ..heap.heap import batch_live_bytes

        budget = self.pause_target * 0.3 * self.costs.copy_bw * self.costs.effective_threads(
            self._young_threads()
        )
        # Placement: old-region evacuation rides the young pause, so the
        # young class's rate bounds how much fits in the pause budget.
        budget *= self.costs.young_gc_rate
        lives = batch_live_bytes(self.heap.old_cohorts, now)
        scored = []
        for c, live in zip(self.heap.old_cohorts, lives):
            garbage = c.resident - live
            if garbage > 0:
                scored.append((garbage / max(c.resident, 1.0), c, live, garbage))
        scored.sort(key=lambda item: -item[0])
        copied = 0.0
        freed = 0.0
        for _score, c, live, garbage in scored:
            if copied + live > budget:
                break
            # Use the bytes the cohort actually dropped, not the estimate:
            # collect() applies the tail cutoff and can free slightly more
            # than `garbage`, and old.used must track cohort residents
            # exactly or the drift surfaces at the next full GC.
            freed += c.collect(now)
            copied += live
        if freed > 0:
            self.heap.old.remove(min(freed, self.heap.old.used))
        vol.old_freed += freed
        eff = self.costs.effective_threads(self._young_threads())
        eff *= self.costs.young_gc_rate
        return copied / (self.costs.copy_bw * eff)

    # ------------------------------------------------------------------

    def _promotion_failure_full(self, now: float) -> STWPause:
        """To-space exhaustion: the dreaded serial full GC."""
        self._state = "idle"
        self._cycle_gen += 1
        self._mixed_remaining = 0
        self.tracer.annotate(now, "to_space_exhausted")
        return self._full(now, "To-space Exhausted")

    def explicit_gc(self, now: float) -> Outcome:
        """System.gc(): a single-threaded full compaction (JDK 8 G1)."""
        self._state = "idle"
        self._cycle_gen += 1
        self._mixed_remaining = 0
        pause = self._full(now, "System.gc()")
        return Outcome(pauses=[pause])
