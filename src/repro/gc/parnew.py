"""ParNewGC: parallel copying young generation, serial mark-compact old.

ParNew is CMS's young-generation collector run standalone (paper Table 1):
it keeps CMS's early-tenuring behaviour (free-list-friendly promotion
discipline) but falls back to a *serial* full collection for the old
generation.
"""

from __future__ import annotations

from .base import Collector


class ParNewGC(Collector):
    """``-XX:+UseParNewGC`` (without CMS)."""

    name = "ParNewGC"
    parallel_young = True
    parallel_full = False
    #: CMS-style early tenuring (MaxTenuringThreshold defaulted low for
    #: the CMS family in the JDK 8 era).
    tenuring_threshold = 4
    survivor_target_fraction = 0.5
    #: Old generation is managed with CMS-style free lists: dirty-card
    #: scanning chases pointers and costs more per byte.
    card_scan_weight = 3.0
    promotion_bw_scale = 0.8
    overflow_promotion_penalty = 0.25
    young_fixed_cost = 0.002
    full_fixed_cost = 0.008
