"""HTM-assisted concurrent collector — the paper's future work (§6).

The paper closes with: "we plan to implement and thoroughly test a
garbage collector that uses HTM [hardware transactional memory] ... We
aim to repeat this evaluation of the GC impact on application execution
and compare the new approach to the current available GCs." This module
provides that collector in the simulator, modelled on the two HTM
systems the paper discusses:

* **StackTrack** (Alistarh et al., EuroSys'14): HTM gives collector
  threads a consistent view of mutator-accessed data without stopping
  the world, at the price of mutator throughput — "it can also reduce
  the data structure throughput by up to 50 %".
* **Collie** (Iyengar et al., ISMM'12): a wait-free compacting collector
  using HTM; its noted weaknesses are single-threaded collection and a
  second pass over the object graph that risks "memory exhaustion
  during a collection".

Model:

* Young and old collections run **concurrently**: the only stop-the-world
  work is a short *flip* pause (root scan + barrier arm/disarm), a few
  milliseconds regardless of heap size.
* While a concurrent evacuation is in flight, mutators pay the HTM tax:
  transactional read/write-set tracking slows every heap access
  (:attr:`mutator_overhead`), and the evacuation itself occupies GC
  threads (CPU steal).
* Transactions abort under write contention. The abort rate grows with
  the mutation rate of old data; aborted work is retried, stretching the
  concurrent phase (:attr:`abort_overhead_factor`).
* If the heap fills up before a concurrent evacuation finishes (Collie's
  exhaustion hazard), the collector degrades to a serial STW compaction
  of the whole heap — the same fallback path as a CMS concurrent mode
  failure.
"""

from __future__ import annotations

from typing import Optional

from ..heap.heap import CollectionVolumes
from .base import Collector, Outcome, STWPause
from .stats import ConcurrentRecord


class HTMGC(Collector):
    """Simulated HTM-based concurrent compacting collector.

    Not part of the paper's measured six — this is the collector the
    paper *proposes to build*; the ``bench_extension_htm`` benchmark runs
    the comparison the paper planned.
    """

    name = "HTMGC"
    parallel_young = True
    parallel_full = False        # exhaustion fallback is serial (Collie)
    tenuring_threshold = 4
    survivor_target_fraction = 0.5
    card_scan_weight = 1.0
    young_fixed_cost = 0.002
    full_fixed_cost = 0.015
    full_overhead_factor = 1.3   # fallback walks HTM side state

    #: STW flip pause: root scan + read/write barrier arm.
    flip_pause: float = 0.006
    #: Permanent mutator slowdown: the HTM read barrier is always armed
    #: (StackTrack observes up to ~50 % on contended structures; a whole
    #: application mix sits lower).
    base_tax: float = 0.15
    #: Additional slowdown while a concurrent evacuation is in flight
    #: (write transactions conflict with the copying collector).
    evacuation_tax: float = 0.10
    #: Concurrent copying is slower than STW copying: every object move is
    #: a transaction with validation overhead.
    htm_copy_factor: float = 0.6
    #: Extra work from aborted/retried transactions per unit of old-gen
    #: mutation concurrency.
    abort_overhead_factor: float = 0.5
    #: Old-gen occupancy triggering a concurrent old-space compaction.
    old_trigger: float = 0.6

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.conc_threads = self.costs.default_gc_threads() // 2
        self._evacuating = False
        self._old_cycle = False
        self._generation = 0

    # ------------------------------------------------------------------

    @property
    def concurrent_threads_active(self) -> int:
        return self.conc_threads if (self._evacuating or self._old_cycle) else 0

    @property
    def mutator_overhead(self) -> float:
        """Fractional mutator slowdown (barriers always armed; worse while
        an evacuation is in flight)."""
        if self._evacuating or self._old_cycle:
            return self.base_tax + self.evacuation_tax
        return self.base_tax

    # ------------------------------------------------------------------

    def allocation_failure(self, now: float) -> Outcome:
        outcome = Outcome()
        pause, vol = self._flip_collection(now)
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            return outcome
        self._schedule_evacuation(now, vol, outcome)
        self._maybe_old_cycle(now, outcome)
        return outcome

    def _flip_collection(self, now: float):
        """The young collection happens at the flip; only the flip is STW.

        Heap mechanics run eagerly (the evacuation outcome is known at the
        flip in expectation); the *time* of the copying work is paid
        concurrently by :meth:`_schedule_evacuation`.
        """
        vol = self.heap.minor_collection(
            now,
            self._tenuring,
            survivor_target_fraction=self.survivor_target_fraction,
        )
        target = self.target_survivor_ratio * self.heap.survivor.capacity
        if vol.copied_to_survivor > target:
            self._tenuring = max(1, self._tenuring - 2)
        elif self._tenuring < self.tenuring_threshold:
            self._tenuring += 1
        duration = (self.flip_pause + self.costs.reference_processing) * self._jitter()
        return STWPause("young", "HTM Flip", duration, vol), vol

    def _schedule_evacuation(self, now: float, vol: CollectionVolumes,
                             outcome: Outcome) -> None:
        copy_work = vol.copied_to_survivor + vol.promoted
        if copy_work <= 0:
            return
        aborts = 1.0 + self.abort_overhead_factor * min(
            self.heap.dirty_card_bytes / max(copy_work, 1.0), 1.0
        )
        duration = max(
            self.costs.concurrent_duration(
                marked=copy_work * aborts / self.htm_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.005,
        )
        self._evacuating = True
        self._generation += 1
        gen = self._generation
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, "htm-evacuation", self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish(t, g, "evac")))

    def _maybe_old_cycle(self, now: float, outcome: Outcome) -> None:
        if self._old_cycle:
            return
        if self.heap.old.occupancy < self.old_trigger:
            return
        live = self.heap.old_live_bytes(now)
        sweep = self.heap.sweep_old(now, fragmentation_increment=0.0)
        duration = max(
            self.costs.concurrent_duration(
                marked=live / self.htm_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.01,
        )
        self._old_cycle = True
        self._generation += 1
        gen = self._generation
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, "htm-old-compaction", self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish(t, g, "old")))
        _ = sweep  # dead old space is reclaimed concurrently

    def _finish(self, now: float, gen: int, which: str) -> Outcome:
        if which == "evac":
            self._evacuating = False
        else:
            self._old_cycle = False
            self.heap.fragmentation = 0.0  # HTM compaction defragments
        return Outcome()

    # ------------------------------------------------------------------

    def _exhaustion_fallback(self, now: float) -> STWPause:
        """Collie's hazard: the heap filled mid-collection — serial STW."""
        self._evacuating = False
        self._old_cycle = False
        self._generation += 1
        return self._full(now, "HTM Exhaustion")

    def explicit_gc(self, now: float) -> Outcome:
        """System.gc(): run the old compaction concurrently, but honour the
        contract with a flip-sized pause."""
        outcome = Outcome()
        pause, vol = self._flip_collection(now)
        pause.cause = "System.gc()"
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            return outcome
        self._schedule_evacuation(now, vol, outcome)
        if not self._old_cycle:
            live = self.heap.old_live_bytes(now)
            self.heap.sweep_old(now, fragmentation_increment=0.0)
            duration = max(
                self.costs.concurrent_duration(
                    marked=live / self.htm_copy_factor,
                    n_threads=self.conc_threads,
                    rate_factor=self._locality(),
                ),
                0.01,
            )
            self._old_cycle = True
            self._generation += 1
            gen = self._generation
            outcome.concurrent.append(
                ConcurrentRecord(now, duration, "htm-old-compaction", self.name)
            )
            outcome.schedule.append(
                (duration, lambda t, g=gen: self._finish(t, g, "old"))
            )
        return outcome
