"""SerialGC: single-threaded copying young + single-threaded mark-compact old.

The simplest collector: no synchronization anywhere (paper §2, Table 1).
Its only advantage is the absence of parallel coordination overhead, which
the paper found to matter less than expected (it won only 4 of 18
no-pause experiments, §3.3).
"""

from __future__ import annotations

from .base import Collector


class SerialGC(Collector):
    """``-XX:+UseSerialGC``."""

    name = "SerialGC"
    parallel_young = False
    parallel_full = False
    tenuring_threshold = 15
    survivor_target_fraction = 1.0
    card_scan_weight = 1.0
    #: Minimal bookkeeping, but the single thread still walks the
    #: same per-collection metadata as ParNew's coordinator.
    young_fixed_cost = 0.002
    full_fixed_cost = 0.008
