"""ParallelGC (Parallel Scavenge): parallel young, **serial** full GC.

The throughput collector *without* ``-XX:+UseParallelOldGC``: young
collections are parallel, but a full collection is a single-threaded
mark-sweep-compact of the entire heap. The paper observes exactly this
(Figure 2(a)): with a forced ``System.gc()`` per iteration, Parallel is
the second-worst collector "since its full collections are serial".
"""

from __future__ import annotations

from .base import Collector


class ParallelGC(Collector):
    """``-XX:+UseParallelGC`` (serial old phase)."""

    name = "ParallelGC"
    parallel_young = True
    parallel_full = False
    #: Adaptive size policy keeps survivors resident up to 15 ages.
    tenuring_threshold = 15
    survivor_target_fraction = 1.0
    card_scan_weight = 1.0
    #: Parallel Scavenge promotion serializes on the expand lock as the
    #: old generation fills (DESIGN.md §6.5).
    promotion_degrades = True
    #: Parallel Scavenge's fallback full GC is not the tuned SerialGC
    #: mark-sweep-compact: it single-threadedly walks the scavenger's side
    #: metadata (the paper singles Parallel out as second-worst with
    #: forced full GCs for exactly this reason).
    full_overhead_factor = 1.5
    young_fixed_cost = 0.004
    full_fixed_cost = 0.010
