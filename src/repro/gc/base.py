"""Collector base class and the JVM<->collector interaction protocol.

The JVM drives collectors through two entry points:

* :meth:`Collector.allocation_failure` — eden could not satisfy an
  allocation; the collector performs a young collection (and whatever
  follow-up its policy dictates) and returns an :class:`Outcome`;
* :meth:`Collector.explicit_gc` — ``System.gc()`` was called (the DaCapo
  harness does this between iterations when system GC is enabled).

An :class:`Outcome` carries the STW pauses to execute *now* (the JVM stops
the world for their total duration and logs them) plus optional scheduled
continuations (``delay``, ``fn(now) -> Outcome``) used by the concurrent
collectors for mark/sweep completion events.

Pause durations are **derived from work actually performed on the heap**
(bytes copied / marked / compacted / card-scanned, as returned by the heap
mechanics) through the machine cost model — collectors contain policy and
structure, not magic numbers for whole pauses.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..heap.heap import CollectionVolumes, GenerationalHeap
from ..machine.costs import CostModel
from ..seeding import rng_for
from ..telemetry.tracer import NULL_TRACER
from .stats import ConcurrentRecord


@dataclass
class STWPause:
    """A stop-the-world pause the JVM must execute."""

    kind: str                 #: young | full | initial-mark | remark | mixed
    cause: str                #: HotSpot-style GC cause
    duration: float           #: seconds, excluding time-to-safepoint
    volumes: Optional[CollectionVolumes] = None


@dataclass
class Outcome:
    """Result of a collector interaction (see module docstring)."""

    pauses: List[STWPause] = field(default_factory=list)
    #: (delay_seconds, continuation) pairs; the continuation is invoked by
    #: the JVM at ``now + delay`` and returns a further Outcome.
    schedule: List[Tuple[float, Callable[[float], "Outcome"]]] = field(default_factory=list)
    concurrent: List[ConcurrentRecord] = field(default_factory=list)
    #: Allocation-stall seconds the *triggering mutator* must wait after
    #: the (tiny) pauses complete — the fully-concurrent collectors' way
    #: of making allocators pay when relocation cannot keep up, instead
    #: of a long STW pause. Zero for the stock collectors.
    stall_seconds: float = 0.0

    def merge(self, other: "Outcome") -> "Outcome":
        """Append *other*'s content to this outcome (returns self)."""
        self.pauses.extend(other.pauses)
        self.schedule.extend(other.schedule)
        self.concurrent.extend(other.concurrent)
        self.stall_seconds += other.stall_seconds
        return self


class Collector(ABC):
    """Common mechanics shared by the six collectors.

    Subclasses configure the class attributes below (matching paper
    Table 1) and may override :meth:`after_minor` (concurrent-cycle
    policy) and :meth:`explicit_gc` (System.gc() behaviour).
    """

    #: Collector name as it appears in the paper's figures.
    name: str = "abstract"
    #: GC threads used in young STW pauses (None = HotSpot ergonomics).
    parallel_young: bool = True
    #: GC threads used in full STW pauses (False => serial full GC).
    parallel_full: bool = False
    #: Collections an object must survive before promotion.
    tenuring_threshold: int = 15
    #: Fraction of the survivor space the young GC is willing to fill
    #: before tenuring overflow (CMS tenures early: lower value).
    survivor_target_fraction: float = 1.0
    #: Weight of dirty-card scanning in young pauses (free-list old
    #: generations are more expensive to scan).
    card_scan_weight: float = 1.0
    #: Multiplier applied to full-GC durations (structural overheads,
    #: e.g. G1's region bookkeeping in its serial full GC).
    full_overhead_factor: float = 1.0
    #: Fixed bookkeeping per young pause (adaptive-size policy etc.).
    young_fixed_cost: float = 0.004
    #: Fixed bookkeeping per full pause.
    full_fixed_cost: float = 0.010
    #: Does promotion bandwidth degrade as the old gen fills (Parallel
    #: Scavenge's shared expand lock)? See DESIGN.md §6.5.
    promotion_degrades: bool = False
    #: Relative promotion bandwidth (free-list promotion is slower).
    promotion_bw_scale: float = 1.0
    #: Penalty factor on promotion bandwidth when a young collection
    #: overflows the survivor space (premature tenuring). Free-list old
    #: generations (CMS/ParNew) pay dearly here: bulk promotion of
    #: young-aged objects forces best-fit searches through fragmented free
    #: lists. This is the mechanism behind the paper's young-generation
    #: anomaly (§3.3, Table 3): a *smaller* young generation promotes
    #: prematurely and ends up with *longer* average pauses.
    overflow_promotion_penalty: float = 1.0
    #: HotSpot's adaptive tenuring: the effective threshold drops when the
    #: survivor space runs past TargetSurvivorRatio (50 %) and creeps back
    #: toward :attr:`tenuring_threshold` when there is room. This bounds
    #: survivor re-copying while keeping the structural difference between
    #: the PS family (threshold 15) and the CMS family (early tenuring).
    target_survivor_ratio: float = 0.5

    def __init__(
        self,
        heap: GenerationalHeap,
        costs: CostModel,
        *,
        gc_threads: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        noise: float = 0.03,
        remset_fidelity: bool = False,
    ):
        self.heap = heap
        self.costs = costs
        #: Card/remset fidelity: when enabled the heap reports real
        #: card-quantised scan volumes (CMS/ParNew scan actual dirty
        #: cards; G1 prices remark off remset cardinality). Off by
        #: default so the paper's six collectors stay byte-identical to
        #: the committed baselines; the fully-concurrent collectors
        #: force it on.
        self.remset_fidelity = bool(remset_fidelity)
        if self.remset_fidelity:
            heap.card_fidelity = True
        default = costs.default_gc_threads()
        self.gc_threads = int(gc_threads) if gc_threads is not None else default
        if self.gc_threads < 1:
            raise ConfigError("gc_threads must be >= 1")
        # The JVM injects a per-run stream; when a collector is built
        # directly (benchmarks, tests) derive one from the collector name
        # so different collectors never share a jitter stream.
        self.rng = rng if rng is not None else rng_for(self.name, "collector-default")
        self.noise = float(noise)
        self._tenuring = self.tenuring_threshold
        #: Telemetry sink (the JVM swaps in a live tracer when requested).
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # JVM-facing protocol
    # ------------------------------------------------------------------

    def allocation_failure(self, now: float) -> Outcome:
        """Handle an eden allocation failure: young GC + policy follow-ups."""
        outcome = Outcome()
        pause, vol = self._minor(now, "Allocation Failure")
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            # The fallback full GC already collected everything; defer any
            # concurrent-cycle policy to the next young collection.
            outcome.pauses.append(self._promotion_failure_full(now))
        else:
            self.after_minor(now, vol, outcome)
        return outcome

    def explicit_gc(self, now: float) -> Outcome:
        """Handle ``System.gc()`` — a compacting full collection by default."""
        pause = self._full(now, "System.gc()")
        return Outcome(pauses=[pause])

    def after_minor(self, now: float, vol: CollectionVolumes, outcome: Outcome) -> None:
        """Policy hook after a young collection (default: none)."""

    @property
    def concurrent_threads_active(self) -> int:
        """GC threads currently running concurrently with mutators."""
        return 0

    def humongous_threshold(self) -> float:
        """Allocation size routed straight to the old generation.

        Stock generational collectors only bypass eden for objects that
        could never fit it comfortably; G1 overrides this with its
        half-region humongous rule.
        """
        return 0.8 * self.heap.eden.capacity

    @property
    def mutator_overhead(self) -> float:
        """Fractional mutator slowdown imposed by the collector's barriers
        (0 for the stock collectors; the HTM collector taxes every heap
        access while a concurrent evacuation is in flight)."""
        return 0.0

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------

    def _young_threads(self) -> int:
        return self.gc_threads if self.parallel_young else 1

    def _locality(self) -> float:
        """NUMA locality bandwidth factor for this heap on this machine."""
        return self.costs.locality(self.heap.config.heap_bytes)

    def _full_threads(self) -> int:
        return self.gc_threads if self.parallel_full else 1

    def _jitter(self) -> float:
        """Small multiplicative noise for pause durations."""
        if self.noise <= 0:
            return 1.0
        return float(np.exp(self.rng.normal(0.0, self.noise)))

    def _minor(self, now: float, cause: str) -> Tuple[STWPause, CollectionVolumes]:
        """Perform the young collection and price it."""
        used_before = self.heap.used
        vol = self.heap.minor_collection(
            now,
            self._tenuring,
            survivor_target_fraction=self.survivor_target_fraction,
        )
        # Adaptive tenuring (TargetSurvivorRatio): tenure earlier when the
        # survivor space runs hot, relax back toward the configured
        # threshold when it has room.
        tenuring_before = self._tenuring
        target = self.target_survivor_ratio * self.heap.survivor.capacity
        if vol.copied_to_survivor > target:
            self._tenuring = max(1, self._tenuring - 2)
        elif self._tenuring < self.tenuring_threshold:
            self._tenuring += 1
        if self._tenuring != tenuring_before:
            self.tracer.tenuring_adapt(now, tenuring_before, self._tenuring)
        if vol.promoted > 0:
            self.tracer.promotion(now, vol.promoted, vol.promoted_small)
        duration = self.young_pause_duration(vol) * self._jitter()
        pause = STWPause("young", cause, duration, vol)
        vol_after = self.heap.used
        pause.volumes = vol
        _ = used_before, vol_after  # recorded by the JVM in the log
        return pause, vol

    def young_pause_duration(self, vol: CollectionVolumes) -> float:
        """Price a young collection from its work volumes."""
        threads = self._young_threads()
        promo_factor = self.promotion_bw_scale
        if self.promotion_degrades:
            promo_factor *= self.costs.promotion_bw_factor(vol.old_occupancy_before)
        else:
            # Free-list promotion degrades mildly with fragmentation.
            promo_factor *= max(0.4, 1.0 - self.heap.fragmentation)
        if threads > 1:
            eff = self.costs.effective_threads(threads)
        else:
            # Serial young copying is latency-bound (sparse survivors).
            eff = self.costs.serial_young_bonus
        eff *= self._locality()
        # Placement rate for the class running young GC (1.0 when the
        # GC threads sit on baseline cores; exact no-op then).
        eff *= self.costs.young_gc_rate
        copy_t = vol.copied_to_survivor / (self.costs.copy_bw * eff)
        # Promotion of *small objects* beyond what a healthy survivor
        # space would tenure is premature: it pays the overflow penalty
        # (free-list best-fit searches). Bulk arena blocks (memtable
        # chunks, commit-log segments) promote as single free-list
        # insertions and are exempt.
        overflow_threshold = 0.2 * self.heap.survivor.capacity
        overflow = max(vol.promoted_small - overflow_threshold, 0.0)
        regular = vol.promoted - overflow
        promo_bw = self.costs.copy_bw * eff * max(promo_factor, 1e-3)
        promo_t = regular / promo_bw + overflow / (
            promo_bw * self.overflow_promotion_penalty
        )
        cards_t = (
            vol.cards_scanned * self.card_scan_weight / (self.costs.card_scan_bw * eff)
        )
        return copy_t + promo_t + cards_t + self.young_fixed_cost + self.costs.reference_processing

    def _full(
        self,
        now: float,
        cause: str,
        *,
        compacting: bool = True,
        kind: str = "full",
    ) -> STWPause:
        """Perform a full collection and price it."""
        vol = self.heap.full_collection(now, compacting=compacting)
        duration = self.full_pause_duration(vol, compacting=compacting) * self._jitter()
        return STWPause(kind, cause, duration, vol)

    def full_pause_duration(self, vol: CollectionVolumes, *, compacting: bool = True) -> float:
        """Price a full collection from its work volumes."""
        threads = self._full_threads()
        t = self.costs.stw_duration(
            n_threads=threads,
            marked=vol.marked,
            compacted=vol.compacted if compacting else 0.0,
            swept=vol.swept if not compacting else 0.0,
            fixed=self.full_fixed_cost,
            overhead_factor=self.full_overhead_factor,
            rate_factor=self._locality(),
        )
        return t + self.costs.reference_processing

    def _promotion_failure_full(self, now: float) -> STWPause:
        """Fallback full GC after a promotion failure (serial for all but
        ParallelOld, which compacts in parallel)."""
        return self._full(now, "Promotion Failure")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} threads={self.gc_threads}>"
