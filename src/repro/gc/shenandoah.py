"""Shenandoah-style fully-concurrent copying collector.

The second modern collector of the "Distilling the Real Cost of
Production Garbage Collectors" study. Structurally close to
:class:`~repro.gc.zgc.ZGC` — concurrent marking and concurrent
evacuation bracketed by tiny STW synchronisation points — with the
differences the Distilling paper highlights:

* **Brooks forwarding pointers.** Every object carries an indirection
  word; reads and writes go through it whether or not a collection is
  running, so the always-on barrier tax is *higher* than ZGC's colored
  pointers (:attr:`base_tax`), the LBO floor the paper measures.
* **Degenerated GC instead of allocation stalls.** When allocation
  outruns an in-flight evacuation, Shenandoah does not stall the
  allocator indefinitely — it *degenerates*: the world stops and the
  remaining evacuation work finishes at STW speed (a ``degenerated``
  pause, typically tens of milliseconds), then the cycle's budget
  resets. Repeated degeneration escalates to a serial STW full GC.
* STW points use Shenandoah's names: ``initial-mark`` / ``remark`` for
  the old cycle (shared with CMS/G1 vocabulary) and a ``young`` flip
  for evacuation candidate selection.

Runs with full card/remset fidelity like ZGC (explicit card table +
per-region remembered set).
"""

from __future__ import annotations

from ..heap.cards import RememberedSet
from ..heap.heap import CollectionVolumes
from ..heap.regions import RegionTable
from .base import Collector, Outcome, STWPause
from .stats import ConcurrentRecord, RELOCATION_PHASE


class ShenandoahGC(Collector):
    """``-XX:+UseShenandoahGC``-style concurrent copying collector."""

    name = "ShenandoahGC"
    parallel_young = True
    parallel_full = False          # full-GC fallback is (mostly) serial
    tenuring_threshold = 4
    survivor_target_fraction = 0.5
    card_scan_weight = 1.0
    young_fixed_cost = 0.002
    full_fixed_cost = 0.015
    full_overhead_factor = 1.3     # fallback chases Brooks pointers

    #: STW synchronisation points (seconds, before jitter).
    flip_pause: float = 0.0015
    initial_mark_pause: float = 0.0012
    remark_pause: float = 0.0018
    #: Always-on Brooks-pointer indirection tax (higher than ZGC's
    #: colored-pointer load barrier — the Distilling paper's headline
    #: Shenandoah finding).
    base_tax: float = 0.08
    #: Additional write-barrier/SATB traffic while evacuating.
    evacuation_tax: float = 0.05
    #: Concurrent copying bandwidth relative to STW copying.
    conc_copy_factor: float = 0.7
    #: Degenerated work finishes at STW speed: remaining concurrent
    #: seconds convert at the concurrent/STW bandwidth ratio.
    degen_speedup: float = 0.7
    #: Old-gen occupancy triggering a concurrent mark + evacuation.
    old_trigger: float = 0.6

    def __init__(self, *args, **kwargs):
        # Forced, not defaulted: the JVM passes the config flag
        # explicitly, and Brooks-pointer Shenandoah has no coarse mode.
        kwargs["remset_fidelity"] = True
        super().__init__(*args, **kwargs)
        self.regions = RegionTable.for_heap(self.heap.config.heap_bytes)
        if self.heap.remset is None:
            self.heap.attach_remset(RememberedSet(self.regions))
        self.conc_threads = max(1, self.costs.default_gc_threads() // 2)
        self._evacuating = False
        self._old_cycle = False
        self._evac_end = 0.0
        self._young_gen = 0
        self._old_gen = 0
        self.degenerated_count = 0

    # ------------------------------------------------------------------

    @property
    def concurrent_threads_active(self) -> int:
        return self.conc_threads if (self._evacuating or self._old_cycle) else 0

    @property
    def mutator_overhead(self) -> float:
        if self._evacuating or self._old_cycle:
            return self.base_tax + self.evacuation_tax
        return self.base_tax

    # ------------------------------------------------------------------

    def allocation_failure(self, now: float) -> Outcome:
        outcome = Outcome()
        if self._evacuating and now < self._evac_end:
            # Allocation outran evacuation: degenerate — stop the world
            # and finish the remaining copying at STW speed.
            outcome.pauses.append(self._degenerate(now))
        pause, vol = self._flip_collection(now, "Allocation Failure")
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            return outcome
        self._schedule_evacuation(now, vol, outcome)
        self._maybe_old_cycle(now, outcome)
        return outcome

    def _degenerate(self, now: float) -> STWPause:
        """Finish the in-flight evacuation stop-the-world."""
        remaining = max(self._evac_end - now, 0.0)
        self._evacuating = False
        self._evac_end = 0.0
        self._young_gen += 1  # invalidate the scheduled concurrent finish
        self.degenerated_count += 1
        duration = max(remaining * self.degen_speedup, 0.001) * self._jitter()
        return STWPause("degenerated", "Shenandoah Degenerated GC", duration)

    def _flip_collection(self, now: float, cause: str):
        """Young collection decided at the final-mark flip; copying time
        is paid concurrently by :meth:`_schedule_evacuation`."""
        vol = self.heap.minor_collection(
            now,
            self._tenuring,
            survivor_target_fraction=self.survivor_target_fraction,
        )
        target = self.target_survivor_ratio * self.heap.survivor.capacity
        if vol.copied_to_survivor > target:
            self._tenuring = max(1, self._tenuring - 2)
        elif self._tenuring < self.tenuring_threshold:
            self._tenuring += 1
        duration = self.flip_pause * self._jitter()
        return STWPause("young", cause, duration, vol), vol

    def _schedule_evacuation(self, now: float, vol: CollectionVolumes,
                             outcome: Outcome) -> None:
        copy_work = vol.copied_to_survivor + vol.promoted
        if copy_work <= 0:
            self._evacuating = False
            return
        duration = max(
            self.costs.concurrent_duration(
                marked=copy_work / self.conc_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.002,
        )
        self._evacuating = True
        self._evac_end = now + duration
        self._young_gen += 1
        gen = self._young_gen
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, RELOCATION_PHASE, self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish_young(t, g)))

    def _maybe_old_cycle(self, now: float, outcome: Outcome) -> None:
        if self._old_cycle or self.heap.old.occupancy < self.old_trigger:
            return
        self._old_cycle = True
        self._old_gen += 1
        gen = self._old_gen
        outcome.pauses.append(
            STWPause("initial-mark", "Shenandoah Cycle",
                     self.initial_mark_pause * self._jitter())
        )
        mark_work = self.heap.old_live_bytes(now)
        duration = max(
            self.costs.concurrent_duration(
                marked=mark_work,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.005,
        )
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, "concurrent-mark", self.name)
        )
        outcome.schedule.append((duration, lambda t, g=gen: self._finish_mark(t, g)))

    def _finish_mark(self, now: float, gen: int) -> Outcome:
        """Marking terminated: remark pause, then evacuate the old
        generation concurrently."""
        if gen != self._old_gen or not self._old_cycle:
            return Outcome()
        outcome = Outcome()
        outcome.pauses.append(
            STWPause("remark", "Shenandoah Cycle",
                     self.remark_pause * self._jitter())
        )
        live = self.heap.old_live_bytes(now)
        self.heap.sweep_old(now, fragmentation_increment=0.0)
        remset = self.heap.remset
        if remset is not None and remset.regions.total_regions > 1:
            remset.evacuate_region(0, remset.regions.total_regions - 1)
        duration = max(
            self.costs.concurrent_duration(
                marked=live / self.conc_copy_factor,
                n_threads=self.conc_threads,
                rate_factor=self._locality(),
            ),
            0.005,
        )
        self._old_gen += 1
        g2 = self._old_gen
        outcome.concurrent.append(
            ConcurrentRecord(now, duration, RELOCATION_PHASE, self.name)
        )
        outcome.schedule.append((duration, lambda t, g=g2: self._finish_old(t, g)))
        return outcome

    def _finish_young(self, now: float, gen: int) -> Outcome:
        if gen == self._young_gen:
            self._evacuating = False
        return Outcome()

    def _finish_old(self, now: float, gen: int) -> Outcome:
        if gen == self._old_gen:
            self._old_cycle = False
            self.heap.fragmentation = 0.0  # evacuation compacts
        return Outcome()

    # ------------------------------------------------------------------

    def _exhaustion_fallback(self, now: float) -> STWPause:
        """Repeated degeneration's end state: serial STW full GC."""
        self._evacuating = False
        self._old_cycle = False
        self._evac_end = 0.0
        self._young_gen += 1
        self._old_gen += 1
        return self._full(now, "Shenandoah Full GC")

    def explicit_gc(self, now: float) -> Outcome:
        """``System.gc()``: run a full concurrent cycle."""
        outcome = Outcome()
        if self._evacuating and now < self._evac_end:
            outcome.pauses.append(self._degenerate(now))
        pause, vol = self._flip_collection(now, "System.gc()")
        outcome.pauses.append(pause)
        if vol.promotion_failed:
            outcome.pauses.append(self._exhaustion_fallback(now))
            return outcome
        self._schedule_evacuation(now, vol, outcome)
        if not self._old_cycle:
            self._old_cycle = True
            self._old_gen += 1
            gen = self._old_gen
            outcome.pauses.append(
                STWPause("initial-mark", "System.gc()",
                         self.initial_mark_pause * self._jitter())
            )
            mark_work = self.heap.old_live_bytes(now)
            duration = max(
                self.costs.concurrent_duration(
                    marked=mark_work,
                    n_threads=self.conc_threads,
                    rate_factor=self._locality(),
                ),
                0.005,
            )
            outcome.concurrent.append(
                ConcurrentRecord(now, duration, "concurrent-mark", self.name)
            )
            outcome.schedule.append(
                (duration, lambda t, g=gen: self._finish_mark(t, g))
            )
        return outcome
