"""GC event records and the pause log.

The :class:`GCLog` is the simulator's equivalent of a parsed HotSpot GC
log: one :class:`PauseRecord` per stop-the-world pause plus one
:class:`ConcurrentRecord` per concurrent phase. All of the paper's pause
statistics (Figures 1 & 4, Table 3) are computed from these records by
:mod:`repro.analysis.pauses`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..telemetry.hist import LogHistogram


@dataclass(frozen=True)
class PauseRecord:
    """One stop-the-world pause.

    ``kind`` is one of ``young``, ``full``, ``initial-mark``, ``remark``,
    ``mixed``; ``cause`` mirrors HotSpot causes (``Allocation Failure``,
    ``System.gc()``, ``Promotion Failure``, ``Ergonomics``, ...).
    """

    start: float
    duration: float
    kind: str
    cause: str
    collector: str
    heap_used_before: float = 0.0
    heap_used_after: float = 0.0
    promoted: float = 0.0

    @property
    def end(self) -> float:
        """Pause end time."""
        return self.start + self.duration

    @property
    def is_full(self) -> bool:
        """True for full (major) collections."""
        return self.kind == "full"


#: Phase name of a concurrent *relocation* (ZGC/Shenandoah copying while
#: mutators run). The World routes these to the dedicated
#: ``concurrent_relocation`` tracer event; every other phase name keeps
#: the generic ``concurrent_phase`` event.
RELOCATION_PHASE = "concurrent-relocation"


@dataclass(frozen=True)
class ConcurrentRecord:
    """One concurrent GC phase (CMS mark/sweep, G1 marking, ZGC/Shenandoah
    relocation)."""

    start: float
    duration: float
    phase: str
    collector: str


@dataclass
class GCLog:
    """Accumulated GC activity of one JVM run."""

    pauses: List[PauseRecord] = field(default_factory=list)
    concurrent: List[ConcurrentRecord] = field(default_factory=list)
    #: Fixed-precision duration histogram, maintained incrementally —
    #: the audited source of every pause percentile (Tables 5-7, the
    #: pause reports). Derived state: rebuilt when a log is constructed
    #: from an existing pause list (codec round-trips, sub-logs).
    pause_hist: LogHistogram = field(default_factory=LogHistogram)

    def __post_init__(self):
        if self.pauses and self.pause_hist.total_count == 0:
            for p in self.pauses:
                self.pause_hist.record(p.duration)

    def record(self, pause: PauseRecord) -> None:
        """Append a pause record."""
        self.pauses.append(pause)
        self.pause_hist.record(pause.duration)

    def record_concurrent(self, rec: ConcurrentRecord) -> None:
        """Append a concurrent-phase record."""
        self.concurrent.append(rec)

    # -- aggregate statistics -------------------------------------------

    @property
    def count(self) -> int:
        """Number of STW pauses."""
        return len(self.pauses)

    @property
    def full_count(self) -> int:
        """Number of full collections."""
        return sum(1 for p in self.pauses if p.is_full)

    @property
    def total_pause(self) -> float:
        """Sum of all pause durations (seconds)."""
        return float(sum(p.duration for p in self.pauses))

    @property
    def max_pause(self) -> float:
        """Longest single pause (0 when none occurred)."""
        return max((p.duration for p in self.pauses), default=0.0)

    @property
    def avg_pause(self) -> float:
        """Mean pause duration (0 when none occurred)."""
        return self.total_pause / self.count if self.count else 0.0

    def durations(self) -> np.ndarray:
        """Pause durations as an array (for vectorized analysis)."""
        return np.array([p.duration for p in self.pauses], dtype=float)

    def starts(self) -> np.ndarray:
        """Pause start times as an array."""
        return np.array([p.start for p in self.pauses], dtype=float)

    def intervals(self) -> np.ndarray:
        """(start, end) pairs as an (n, 2) array, for overlap queries."""
        return np.array([[p.start, p.end] for p in self.pauses], dtype=float).reshape(-1, 2)

    def between(self, t0: float, t1: float) -> "GCLog":
        """Sub-log of pauses starting within [t0, t1)."""
        return GCLog(
            pauses=[p for p in self.pauses if t0 <= p.start < t1],
            concurrent=[c for c in self.concurrent if t0 <= c.start < t1],
        )

    def of_kind(self, *kinds: str) -> "GCLog":
        """Sub-log restricted to the given pause kinds."""
        return GCLog(
            pauses=[p for p in self.pauses if p.kind in kinds],
            concurrent=list(self.concurrent),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.count} pauses ({self.full_count} full), "
            f"avg {self.avg_pause:.3f}s, max {self.max_pause:.3f}s, "
            f"total {self.total_pause:.2f}s"
        )
