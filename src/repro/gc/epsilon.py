"""Epsilon-style no-op collector — the LBO ideal baseline.

"Distilling the Real Cost of Production Garbage Collectors" distills
each collector's total cost as overhead relative to an *ideal* run in
which memory reclamation is free. OpenJDK's Epsilon GC (JEP 318) is the
practical stand-in: it never collects and crashes on heap exhaustion.
The simulator can do one better — :class:`EpsilonGC` reclaims dead
bytes with the ordinary full-collection *mechanics* (so runs complete
instead of exhausting the address space) but reports **zero pauses and
zero concurrent work**: reclamation is instantaneous and free.

What remains in an Epsilon run is therefore exactly the LBO
denominator: pure application time plus the unavoidable safepoint
epsilon (time-to-safepoint is still paid at each would-be collection, a
sub-percent effect documented in DESIGN.md §17). A run whose live set
genuinely exceeds the heap still crashes, as the real Epsilon would.
"""

from __future__ import annotations

from .base import Collector, Outcome


class EpsilonGC(Collector):
    """``-XX:+UseEpsilonGC``-style ideal no-GC-cost baseline."""

    name = "EpsilonGC"
    parallel_young = False
    parallel_full = False
    #: SL006 opt-out: producing zero pauses is this collector's design
    #: (it is the LBO denominator), not an accounting leak.
    pauseless = True

    def allocation_failure(self, now: float) -> Outcome:
        """Reclaim dead bytes for free (ideal-baseline semantics).

        Runs the full-collection mechanics so the heap's accounting stays
        truthful — and so a genuinely over-committed live set raises
        :class:`~repro.errors.HeapError` (crash), like real Epsilon — but
        reports no pauses: the run's only GC cost is time-to-safepoint.
        """
        self.heap.full_collection(now, compacting=True)
        return Outcome()

    def explicit_gc(self, now: float) -> Outcome:
        """``System.gc()`` is a no-op (Epsilon ignores it)."""
        return Outcome()
