"""Per-benchmark allocation profiles for the synthetic DaCapo suite.

Each profile encodes what the paper (and the DaCapo documentation)
reports about the benchmark: threading mode (§2.1), allocation volume,
live-set size and run-to-run variance. Variance parameters are calibrated
so the stability-selection experiment reproduces Table 2's relative
standard deviations when measured over seeds 0-9 (calibrated against the
simulator's own GC-time dampening; see EXPERIMENTS.md, E1).

The three lifetime-mixture knobs deserve a note: ``short_tau`` governs
transient garbage, the heavy-tailed *medium* component governs nursery
survival as a function of young-generation size (larger young => more
time to die => fewer survivors), and the pinned live set plus churn
governs old-generation pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...errors import ConfigError
from ...units import GB, KB, MB
from ..base import AllocationProfile


@dataclass(frozen=True)
class DaCapoProfile:
    """Static description of one DaCapo benchmark."""

    name: str
    description: str           #: threading mode, quoting paper §2.1
    threads: Optional[int]     #: None = one client thread per hardware thread
    iteration_wall_seconds: float  #: GC-free iteration time on the 48-core box
    alloc: AllocationProfile
    sigma_iteration: float     #: per-iteration compute noise (lognormal sd)
    sigma_run: float           #: per-run multiplier noise
    sigma_warmup: float = 0.0  #: extra noise applied to warm-up rounds only
    crashes: bool = False      #: crashes on OpenJDK 8 (paper §3.2)

    def threads_for(self, cores: int) -> int:
        """Mutator thread count on a machine with *cores* hardware threads."""
        if self.threads is not None:
            return self.threads
        if cores < 1:
            raise ConfigError("cores must be >= 1")
        return cores


def _p(**kw) -> AllocationProfile:
    return AllocationProfile(**kw)


#: All 14 DaCapo 9.12 benchmarks.
PROFILES: Dict[str, DaCapoProfile] = {}


def _register(profile: DaCapoProfile) -> None:
    if profile.name in PROFILES:
        raise ConfigError(f"duplicate profile {profile.name}")
    PROFILES[profile.name] = profile


_register(DaCapoProfile(
    name="avrora",
    description="single external thread, but internally multi-threaded",
    threads=None,
    iteration_wall_seconds=1.2,
    alloc=_p(
        alloc_bytes_per_iteration=0.30 * GB,
        mean_object_size=1 * KB,
        short_fraction=0.90, short_tau=0.15,
        medium_fraction=0.08, medium_scale=1.5,
        immortal_fraction=0.01,
        live_set_bytes=40 * MB,
    ),
    sigma_iteration=0.156, sigma_run=0.1192,
))

_register(DaCapoProfile(
    name="batik",
    description="mostly single-threaded both externally and internally",
    threads=1,
    iteration_wall_seconds=0.8,
    alloc=_p(
        alloc_bytes_per_iteration=0.15 * GB,
        mean_object_size=8 * KB,
        short_fraction=0.88, short_tau=0.25,
        medium_fraction=0.10, medium_scale=2.0,
        immortal_fraction=0.01,
        live_set_bytes=30 * MB,
    ),
    sigma_iteration=0.1328, sigma_run=0.0157,
))

_register(DaCapoProfile(
    name="eclipse",
    description="single external thread, internally multi-threaded",
    threads=None,
    iteration_wall_seconds=4.0,
    alloc=_p(
        alloc_bytes_per_iteration=2.5 * GB,
        live_set_bytes=400 * MB,
    ),
    sigma_iteration=0.05, sigma_run=0.04,
    crashes=True,
))

_register(DaCapoProfile(
    name="fop",
    description="single-threaded",
    threads=1,
    iteration_wall_seconds=0.4,
    alloc=_p(
        alloc_bytes_per_iteration=0.20 * GB,
        mean_object_size=2 * KB,
        short_fraction=0.92, short_tau=0.10,
        medium_fraction=0.06, medium_scale=1.0,
        immortal_fraction=0.01,
        live_set_bytes=20 * MB,
    ),
    sigma_iteration=0.1198, sigma_run=0.1636,
))

_register(DaCapoProfile(
    name="h2",
    description="multi-threaded (one client thread per hardware thread)",
    threads=None,
    iteration_wall_seconds=1.8,
    alloc=_p(
        alloc_bytes_per_iteration=2.4 * GB,
        mean_object_size=2 * KB,
        short_fraction=0.84, short_tau=0.4,
        medium_fraction=0.12, medium_shape=0.42, medium_scale=2.5,
        immortal_fraction=0.004,
        live_set_bytes=150 * MB,
        live_churn_fraction=0.10,
        old_mutation_fraction=0.25,
    ),
    sigma_iteration=0.003, sigma_run=0.1437,
))

_register(DaCapoProfile(
    name="jython",
    description="single external thread, internally one thread per hardware thread",
    threads=None,
    iteration_wall_seconds=1.1,
    alloc=_p(
        alloc_bytes_per_iteration=0.90 * GB,
        mean_object_size=1 * KB,
        short_fraction=0.90, short_tau=0.12,
        medium_fraction=0.08, medium_scale=1.5,
        immortal_fraction=0.01,
        live_set_bytes=60 * MB,
    ),
    sigma_iteration=0.0356, sigma_run=0.0708,
))

_register(DaCapoProfile(
    name="luindex",
    description="single external thread with a few helper threads",
    threads=2,
    iteration_wall_seconds=0.9,
    alloc=_p(
        alloc_bytes_per_iteration=0.25 * GB,
        mean_object_size=4 * KB,
        short_fraction=0.85, short_tau=0.3,
        medium_fraction=0.12, medium_scale=2.5,
        immortal_fraction=0.02,
        live_set_bytes=40 * MB,
    ),
    sigma_iteration=0.0143, sigma_run=0.02, sigma_warmup=0.1143,
))

_register(DaCapoProfile(
    name="lusearch",
    description="multi-threaded, one client thread per hardware thread",
    threads=None,
    iteration_wall_seconds=0.7,
    alloc=_p(
        alloc_bytes_per_iteration=1.5 * GB,
        mean_object_size=2 * KB,
        short_fraction=0.94, short_tau=0.05,
        medium_fraction=0.04, medium_scale=0.8,
        immortal_fraction=0.005,
        live_set_bytes=25 * MB,
    ),
    sigma_iteration=0.1293, sigma_run=0.3324,
))

_register(DaCapoProfile(
    name="pmd",
    description="single client thread, internally one worker per hardware thread",
    threads=None,
    iteration_wall_seconds=1.0,
    alloc=_p(
        alloc_bytes_per_iteration=0.50 * GB,
        mean_object_size=1 * KB,
        short_fraction=0.86, short_tau=0.25,
        medium_fraction=0.11, medium_scale=2.0,
        immortal_fraction=0.02,
        live_set_bytes=70 * MB,
    ),
    sigma_iteration=0.0013, sigma_run=0.0158,
))

_register(DaCapoProfile(
    name="sunflow",
    description="multi-threaded, driven by a client thread per hardware thread",
    threads=None,
    iteration_wall_seconds=1.0,
    alloc=_p(
        alloc_bytes_per_iteration=1.8 * GB,
        mean_object_size=512,
        short_fraction=0.96, short_tau=0.04,
        medium_fraction=0.03, medium_scale=0.5,
        immortal_fraction=0.003,
        live_set_bytes=15 * MB,
    ),
    sigma_iteration=0.0596, sigma_run=0.146,
))

_register(DaCapoProfile(
    name="tomcat",
    description="multi-threaded, driven by a client thread per hardware thread",
    threads=None,
    iteration_wall_seconds=1.3,
    alloc=_p(
        alloc_bytes_per_iteration=0.80 * GB,
        mean_object_size=4 * KB,
        short_fraction=0.85, short_tau=0.3,
        medium_fraction=0.12, medium_scale=2.0,
        immortal_fraction=0.01,
        live_set_bytes=120 * MB,
        live_churn_fraction=0.05,
        old_mutation_fraction=0.15,
    ),
    sigma_iteration=0.012, sigma_run=0.0302,
))

_register(DaCapoProfile(
    name="tradebeans",
    description="multi-threaded, driven by a client thread per hardware thread",
    threads=None,
    iteration_wall_seconds=3.0,
    alloc=_p(
        alloc_bytes_per_iteration=2.0 * GB,
        live_set_bytes=300 * MB,
    ),
    sigma_iteration=0.05, sigma_run=0.04,
    crashes=True,
))

_register(DaCapoProfile(
    name="tradesoap",
    description="same as tradebeans",
    threads=None,
    iteration_wall_seconds=3.5,
    alloc=_p(
        alloc_bytes_per_iteration=2.5 * GB,
        live_set_bytes=300 * MB,
    ),
    sigma_iteration=0.05, sigma_run=0.04,
    crashes=True,
))

_register(DaCapoProfile(
    name="xalan",
    description="multi-threaded, driven by a client thread per hardware thread",
    threads=None,
    iteration_wall_seconds=1.5,
    alloc=_p(
        alloc_bytes_per_iteration=6.0 * GB,
        mean_object_size=2 * KB,
        short_fraction=0.93, short_tau=0.02,
        medium_fraction=0.055, medium_shape=0.55, medium_scale=0.5,
        immortal_fraction=0.0008,
        live_set_bytes=80 * MB,
        live_churn_fraction=0.02,
        old_mutation_fraction=0.10,
    ),
    sigma_iteration=0.0594, sigma_run=0.0964,
))
