"""Suite registry and the paper's stable-subset selection (§3.2).

The paper runs every benchmark 10 times under the baseline configuration
and keeps those whose final-iteration or total-execution-time relative
standard deviation stays under 5 % — plus batik, accepted because one of
its two metrics is stable. :func:`select_stable_subset` re-runs that
methodology on the synthetic suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...errors import BenchmarkCrash
from .harness import DaCapoBenchmark
from .profiles import PROFILES

#: All 14 benchmark names, alphabetical (paper §2.1).
ALL_BENCHMARKS: List[str] = sorted(PROFILES)

#: Benchmarks that crash on OpenJDK 8 (paper §3.2).
CRASHING_BENCHMARKS: List[str] = sorted(
    name for name, p in PROFILES.items() if p.crashes
)

#: The paper's selected stable subset (Table 2).
STABLE_SUBSET: List[str] = ["h2", "tomcat", "xalan", "jython", "pmd", "luindex", "batik"]


def get_benchmark(name: str) -> DaCapoBenchmark:
    """Construct the benchmark workload for *name*."""
    from .harness import get_benchmark as _get

    return _get(name)


def select_stable_subset(
    run_fn,
    *,
    runs: int = 10,
    iterations: int = 10,
    threshold: float = 0.05,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, dict]:
    """Re-run the paper's benchmark-selection methodology.

    ``run_fn(benchmark_name, seed) -> RunResult`` executes one run (the
    caller chooses the JVM configuration; the paper uses the baseline).
    Returns ``{name: {"rsd_final": .., "rsd_total": .., "crashed": ..,
    "stable": ..}}``. A benchmark is *stable* when at least one of the two
    RSDs is under *threshold* (the paper accepts benchmarks "stable for at
    least one characteristic").
    """
    out: Dict[str, dict] = {}
    names = list(benchmarks) if benchmarks is not None else ALL_BENCHMARKS
    for name in names:
        finals: List[float] = []
        totals: List[float] = []
        crashed = False
        for r in range(runs):
            try:
                result = run_fn(name, r)
            except BenchmarkCrash:
                crashed = True
                break
            if result.crashed:
                crashed = True
                break
            finals.append(result.final_iteration_time)
            totals.append(result.execution_time)
        if crashed:
            out[name] = {
                "rsd_final": float("nan"),
                "rsd_total": float("nan"),
                "crashed": True,
                "stable": False,
            }
            continue
        rsd_final = _rsd(finals)
        rsd_total = _rsd(totals)
        out[name] = {
            "rsd_final": rsd_final,
            "rsd_total": rsd_total,
            "crashed": False,
            "stable": (rsd_final < threshold) or (rsd_total < threshold),
        }
    return out


def _rsd(values: Sequence[float]) -> float:
    """Relative standard deviation (sample std / mean)."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2 or arr.mean() == 0:
        return float("nan")
    return float(arr.std(ddof=1) / arr.mean())
