"""The DaCapo harness: iterations, warm-up rounds and System.gc().

Mirrors the real harness's behaviour as used by the paper (§2.1, §3.1):

* ``iterations`` runs per invocation (the paper uses 10); all but the
  last are warm-up rounds, the last is the measured run;
* with ``system_gc=True`` (DaCapo's default) a full collection is forced
  between every two iterations;
* by default one client thread per hardware thread (the ``-t`` option can
  override it).

For speed, up to ``sim_thread_cap`` DES processes simulate the logical
threads ("thread groups"); CPU sharing, TLAB waste and allocation-lock
contention are computed against the *logical* thread count.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import BenchmarkCrash
from ...seeding import rng_for
from ...units import GB
from ..base import LiveSet, Workload
from .profiles import DaCapoProfile, PROFILES


class DaCapoBenchmark(Workload):
    """One synthetic DaCapo benchmark, runnable on a :class:`~repro.jvm.JVM`."""

    def __init__(self, profile: DaCapoProfile):
        self.profile = profile
        self.name = profile.name

    # ------------------------------------------------------------------

    def drive(
        self,
        jvm,
        result,
        iterations: int = 10,
        system_gc: bool = True,
        threads: Optional[int] = None,
        sim_thread_cap: int = 8,
        quanta_per_iteration: int = 6,
        on_iteration=None,
    ):
        """Driver generator (see :class:`~repro.workloads.base.Workload`)."""
        p = self.profile
        if p.crashes:
            raise BenchmarkCrash(p.name)
        # Every distinct JVM invocation gets an independent noise stream
        # (the paper's TLAB comparison runs the JVM twice per cell).
        rng_parts = [jvm.config.seed, p.name, jvm.config.gc.value]
        if not jvm.config.tlab.enabled:
            rng_parts.append("no-tlab")
        rng = rng_for(*rng_parts)
        cores = jvm.config.topology.cores
        n_threads = threads if threads is not None else p.threads_for(cores)
        groups = max(1, min(n_threads, sim_thread_cap))
        jvm.world.thread_multiplier = n_threads / groups
        dist = p.alloc.lifetime()
        run_mult = float(np.exp(rng.normal(0.0, p.sigma_run)))
        warm_mult = float(np.exp(rng.normal(0.0, p.sigma_warmup))) if p.sigma_warmup else 1.0

        # -- setup: page-touch the nursery and build the live set --------
        live = LiveSet(p.alloc.live_set_bytes, label=f"{p.name}-live")
        touch = jvm.costs.heap_touch_time(
            jvm.heap.config.young_bytes + 2 * p.alloc.live_set_bytes
        )
        if jvm.collector.parallel_young:
            touch /= min(jvm.costs.effective_threads(jvm.collector.gc_threads), 4.0)

        def setup_body(ctx):
            yield from ctx.work(touch)
            if live.total_bytes > 0:
                yield from live.allocate_body(ctx, p.alloc.mean_object_size)

        yield from jvm.join([jvm.spawn_mutator(setup_body, "setup")])

        # -- iterations ---------------------------------------------------
        per_thread_alloc = p.alloc.alloc_bytes_per_iteration / n_threads
        for it in range(iterations):
            t_start = jvm.now
            if system_gc and it > 0:
                yield from jvm.system_gc()
            is_final = it == iterations - 1
            iter_mult = run_mult * float(np.exp(rng.normal(0.0, p.sigma_iteration)))
            if not is_final:
                iter_mult *= warm_mult

            def worker_body(ctx, mult=iter_mult):
                quanta = quanta_per_iteration
                cpu = p.iteration_wall_seconds * mult / quanta
                batch = per_thread_alloc * jvm.world.thread_multiplier / quanta
                # Keep single allocations small relative to eden so tiny
                # heaps (Table 3's 250 MB rows) see realistic granularity.
                max_piece = max(jvm.heap.config.eden_bytes / 8.0, 64 * 1024)
                for _q in range(quanta):
                    yield from ctx.work(cpu)
                    yield from ctx.allocate_all(
                        batch, dist,
                        mean_object_size=p.alloc.mean_object_size,
                        max_piece=max_piece, window=cpu, label=p.name,
                    )

            procs = [
                jvm.spawn_mutator(worker_body, f"{p.name}-w{g}") for g in range(groups)
            ]
            yield from jvm.join(procs)

            # Live-set churn + old-generation mutation.
            if p.alloc.live_churn_fraction > 0 and live.chunks:
                def churn_body(ctx):
                    yield from live.churn_body(
                        ctx, p.alloc.live_churn_fraction, p.alloc.mean_object_size, rng
                    )
                yield from jvm.join([jvm.spawn_mutator(churn_body, "churn")])
            if p.alloc.old_mutation_fraction > 0:
                yield from jvm.world.dirty_cards(
                    p.alloc.old_mutation_fraction * live.resident_bytes
                )

            result.iteration_times.append(jvm.now - t_start)
            # Observational hook (e.g. repro-dacapo --progress); called
            # outside any pause, with the iteration index and duration.
            if on_iteration is not None:
                on_iteration(it, result.iteration_times[-1])

        result.extras["n_threads"] = n_threads
        result.extras["groups"] = groups
        result.extras["live_set_bytes"] = live.resident_bytes


def get_benchmark(name: str) -> DaCapoBenchmark:
    """Look up a benchmark by name (raises ConfigError for unknown names)."""
    from ...errors import ConfigError

    try:
        return DaCapoBenchmark(PROFILES[name])
    except KeyError:
        raise ConfigError(
            f"unknown DaCapo benchmark {name!r}; available: {sorted(PROFILES)}"
        ) from None
