"""Synthetic DaCapo 9.12 benchmark suite (paper §2.1, §3).

Fourteen allocation profiles mirror the published threading modes and
memory behaviour of the 2009 DaCapo benchmarks; three of them
(*eclipse*, *tradebeans*, *tradesoap*) crash on OpenJDK 8 exactly as the
paper reports, and the rest carry the run-to-run variance that drives the
paper's stable-subset selection (Table 2).
"""

from .harness import DaCapoBenchmark
from .profiles import DaCapoProfile, PROFILES
from .suite import (
    ALL_BENCHMARKS,
    CRASHING_BENCHMARKS,
    STABLE_SUBSET,
    get_benchmark,
    select_stable_subset,
)

__all__ = [
    "DaCapoBenchmark",
    "DaCapoProfile",
    "PROFILES",
    "ALL_BENCHMARKS",
    "CRASHING_BENCHMARKS",
    "STABLE_SUBSET",
    "get_benchmark",
    "select_stable_subset",
]
