"""Synthetic phase-structured workloads: model your own application.

The DaCapo profiles and the Cassandra server are fixed workloads; this
module is the general-purpose builder. A workload is a sequence of
:class:`AllocationPhase` objects — e.g. a *build* phase that grows a live
set, followed by a *serve* phase of transient request garbage — run by a
configurable number of threads. This is the tool for reproducing the
paper's methodology on an application of your own.

Example::

    workload = SyntheticWorkload([
        AllocationPhase("build", duration=5.0, alloc_rate=200 * MB,
                        lifetime=Immortal(), pinned_growth=500 * MB),
        AllocationPhase("serve", duration=30.0, alloc_rate=800 * MB,
                        lifetime=Exponential(0.1)),
    ], threads=16)
    result = JVM(config).run(workload)
    print(result.extras["phase_stats"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..heap.lifetime import Exponential, LifetimeDistribution
from ..units import KB, MB
from .base import LiveSet, Workload


@dataclass(frozen=True)
class AllocationPhase:
    """One phase of a synthetic workload.

    ``alloc_rate`` is bytes/second *per thread* while the phase's CPU work
    progresses (GC stalls stretch the wall time, not the volume).
    """

    name: str
    duration: float                    #: CPU seconds per thread
    alloc_rate: float                  #: bytes/s/thread
    lifetime: Optional[LifetimeDistribution] = None  #: default: short-lived
    mean_object_size: float = 4 * KB
    #: Pinned live-set growth over the phase (total, bytes). Negative
    #: values release previously-grown live data.
    pinned_growth: float = 0.0
    #: Old-generation bytes dirtied per second (card-table pressure).
    dirty_rate: float = 0.0
    quanta: int = 8

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(f"phase {self.name!r}: duration must be positive")
        if self.alloc_rate < 0 or self.dirty_rate < 0:
            raise ConfigError(f"phase {self.name!r}: rates must be >= 0")
        if self.quanta < 1:
            raise ConfigError(f"phase {self.name!r}: quanta must be >= 1")

    def dist(self) -> LifetimeDistribution:
        """Lifetime distribution (short-lived garbage by default)."""
        return self.lifetime if self.lifetime is not None else Exponential(0.05)


@dataclass
class PhaseStats:
    """Measured outcome of one phase."""

    name: str
    wall_seconds: float
    allocated_bytes: float
    gc_pauses: int
    gc_pause_seconds: float


class SyntheticWorkload(Workload):
    """Run a list of phases on a configurable thread count."""

    def __init__(self, phases: Sequence[AllocationPhase], *,
                 threads: Optional[int] = None, name: str = "synthetic"):
        if not phases:
            raise ConfigError("a synthetic workload needs at least one phase")
        self.phases = list(phases)
        self.threads = threads
        self.name = name

    def drive(self, jvm, result, sim_thread_cap: int = 8):
        """Driver generator: execute the phases in order."""
        n_threads = self.threads if self.threads else jvm.config.topology.cores
        groups = max(1, min(n_threads, sim_thread_cap))
        jvm.world.thread_multiplier = n_threads / groups
        live = LiveSet(0.0, chunk_bytes=8 * MB, label=f"{self.name}-live")
        stats: List[PhaseStats] = []

        for phase in self.phases:
            t0 = jvm.now
            pauses0 = jvm.gc_log.count
            stw0 = jvm.world.total_stw_time
            dist = phase.dist()
            allocated = [0.0]

            # Live-set changes happen at phase entry.
            if phase.pinned_growth > 0:
                grower = LiveSet(phase.pinned_growth, chunk_bytes=8 * MB,
                                 label=f"{self.name}-live")

                def grow_body(ctx, g=grower):
                    yield from g.allocate_body(ctx, phase.mean_object_size)

                yield from jvm.join([jvm.spawn_mutator(grow_body, "grow")])
                live.chunks.extend(grower.chunks)
            elif phase.pinned_growth < 0:
                to_release = -phase.pinned_growth
                while live.chunks and to_release > 0:
                    chunk = live.chunks.pop(0)
                    to_release -= chunk.release()

            def worker_body(ctx, p=phase, d=dist, acc=allocated):
                cpu = p.duration / p.quanta
                batch = p.alloc_rate * cpu * jvm.world.thread_multiplier
                max_piece = max(jvm.heap.config.eden_bytes / 8.0, 64 * KB)
                for _q in range(p.quanta):
                    yield from ctx.work(cpu)
                    yield from ctx.allocate_all(
                        batch, d,
                        mean_object_size=p.mean_object_size,
                        max_piece=max_piece, window=cpu, label=p.name,
                        accumulate=acc,
                    )
                    if p.dirty_rate > 0:
                        yield from jvm.world.dirty_cards(p.dirty_rate * cpu)

            procs = [jvm.spawn_mutator(worker_body, f"{phase.name}-w{g}")
                     for g in range(groups)]
            yield from jvm.join(procs)
            stats.append(PhaseStats(
                name=phase.name,
                wall_seconds=jvm.now - t0,
                allocated_bytes=allocated[0],
                gc_pauses=jvm.gc_log.count - pauses0,
                gc_pause_seconds=jvm.world.total_stw_time - stw0,
            ))

        result.extras["phase_stats"] = stats
        result.extras["live_set_bytes"] = live.resident_bytes
