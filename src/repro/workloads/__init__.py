"""Synthetic workloads: the Workload protocol and allocation profiles."""

from .base import AllocationProfile, Workload

__all__ = ["Workload", "AllocationProfile"]
