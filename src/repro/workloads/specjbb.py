"""SPECjbb2005-style throughput workload.

A second workload family alongside DaCapo: SPECjbb models a wholesale
company — one *warehouse* per thread running business transactions in a
closed loop, with throughput (business operations per second, "BOPS")
measured per warehouse count as the count ramps up to and beyond the
machine's core count.

Memory behaviour per the benchmark's published profile:

* every transaction allocates transient order/line-item objects
  (``alloc_bytes_per_tx``), almost all of which die young;
* each warehouse owns a resident district/stock/item working set
  (``warehouse_resident_bytes``), live for the whole run;
* completed orders accumulate in per-warehouse history and are trimmed
  periodically — a churning, medium-lived component that exercises the
  old generation.

Because the loop is *closed* (CPU-bound), every GC pause, concurrent CPU
steal and allocation-path overhead translates directly into lost
transactions: the measured BOPS curve is the throughput lens on the same
collector behaviour the DaCapo experiments observe through time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..heap.lifetime import Exponential, Immortal, Mixture, Weibull
from ..seeding import rng_for
from ..units import KB, MB
from .base import Workload


@dataclass(frozen=True)
class SPECjbbConfig:
    """Tunables of the SPECjbb-style workload."""

    alloc_bytes_per_tx: float = 16 * KB      #: transient allocation per tx
    cpu_seconds_per_tx: float = 0.00035      #: business logic per tx
    warehouse_resident_bytes: float = 25 * MB  #: district/stock/item data
    #: Fraction of per-tx allocation that is order history (medium-lived).
    history_fraction: float = 0.04
    #: Mean lifetime of order-history data before trimming (seconds).
    history_lifetime: float = 20.0
    mean_object_size: float = 512.0
    #: Per-run throughput noise (lognormal sd).
    sigma_run: float = 0.01

    def __post_init__(self) -> None:
        if self.alloc_bytes_per_tx <= 0 or self.cpu_seconds_per_tx <= 0:
            raise ConfigError("per-tx volumes must be positive")
        if not (0 <= self.history_fraction < 1):
            raise ConfigError("history_fraction must be in [0, 1)")


@dataclass
class SPECjbbPoint:
    """Measured throughput at one warehouse count."""

    warehouses: int
    bops: float                 #: business operations per second
    elapsed: float
    transactions: float
    gc_pause_seconds: float


class SPECjbbWorkload(Workload):
    """SPECjbb-style ramp: measure BOPS at each warehouse count.

    ``jvm.run(SPECjbbWorkload(), warehouses=[...], measurement_seconds=N)``
    leaves a list of :class:`SPECjbbPoint` in ``result.extras["points"]``
    plus the SPECjbb-style score (mean BOPS from ``cores`` to
    ``2 * cores`` warehouses) in ``result.extras["score"]``.
    """

    name = "specjbb"

    def __init__(self, config: Optional[SPECjbbConfig] = None):
        self.config = config if config is not None else SPECjbbConfig()

    def _lifetime(self):
        cfg = self.config
        return Mixture(
            [
                (1.0 - cfg.history_fraction - 0.002, Exponential(0.03)),
                (cfg.history_fraction, Weibull(0.8, cfg.history_lifetime)),
                (0.002, Immortal()),
            ]
        )

    def drive(
        self,
        jvm,
        result,
        warehouses: Optional[Sequence[int]] = None,
        measurement_seconds: float = 30.0,
        sim_thread_cap: int = 8,
        tx_batch: int = 200,
    ):
        """Driver generator: ramp warehouses, measure BOPS at each step."""
        cfg = self.config
        cores = jvm.config.topology.cores
        if warehouses is None:
            warehouses = sorted({1, 2, cores // 2, cores, 2 * cores} - {0})
        rng = rng_for(jvm.config.seed, "specjbb", jvm.config.gc.value)
        run_mult = float(np.exp(rng.normal(0.0, cfg.sigma_run)))
        dist = self._lifetime()
        points: List[SPECjbbPoint] = []
        resident_cohorts: Dict[int, object] = {}

        for n_wh in warehouses:
            groups = max(1, min(n_wh, sim_thread_cap))
            jvm.world.thread_multiplier = n_wh / groups

            # Grow the resident working set to n_wh warehouses.
            def grow_body(ctx, target=n_wh):
                for w in range(len(resident_cohorts), target):
                    cohort = yield from ctx.allocate(
                        cfg.warehouse_resident_bytes, None,
                        n_objects=cfg.warehouse_resident_bytes / (4 * KB),
                        pinned=True, label=f"warehouse-{w}",
                    )
                    resident_cohorts[w] = cohort

            yield from jvm.join([jvm.spawn_mutator(grow_body, "jbb-setup")])

            pause_before = jvm.world.total_stw_time
            t0 = jvm.now
            deadline = t0 + measurement_seconds
            counters = [0.0] * groups

            def warehouse_body(ctx, gi):
                per_loop_tx = tx_batch
                cpu = per_loop_tx * cfg.cpu_seconds_per_tx * run_mult
                alloc = per_loop_tx * cfg.alloc_bytes_per_tx * jvm.world.thread_multiplier
                n_obj = alloc / cfg.mean_object_size
                while jvm.now < deadline:
                    yield from ctx.work(cpu)
                    yield from ctx.allocate(
                        alloc, dist, n_objects=n_obj, window=cpu, label="jbb-tx",
                    )
                    counters[gi] += per_loop_tx * jvm.world.thread_multiplier

            procs = [
                jvm.spawn_mutator(
                    (lambda g: lambda ctx: warehouse_body(ctx, g))(g),
                    f"warehouse-{g}",
                )
                for g in range(groups)
            ]
            yield from jvm.join(procs)
            elapsed = jvm.now - t0
            tx = sum(counters)
            points.append(SPECjbbPoint(
                warehouses=n_wh,
                bops=tx / elapsed if elapsed > 0 else 0.0,
                elapsed=elapsed,
                transactions=tx,
                gc_pause_seconds=jvm.world.total_stw_time - pause_before,
            ))

        result.extras["points"] = points
        scoring = [p.bops for p in points if cores <= p.warehouses <= 2 * cores]
        result.extras["score"] = float(np.mean(scoring)) if scoring else (
            points[-1].bops if points else 0.0
        )
