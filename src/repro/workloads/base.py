"""The Workload protocol and common allocation-profile machinery.

A workload is anything a :class:`~repro.jvm.jvm.JVM` can run: it exposes a
``drive(jvm, result, **kwargs)`` generator that becomes the driver process
of the simulation. Drivers spawn mutator threads (via
``jvm.spawn_mutator``), wait for them, call ``jvm.system_gc()`` where the
real harness would, and record timings into the
:class:`~repro.jvm.jvm.RunResult`.

:class:`AllocationProfile` captures the memory behaviour of one
application: allocation volume, object sizes, lifetime mixture, pinned
live set, old-generation mutation — everything a GC can observe about the
program it serves (DESIGN.md §2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError
from ..heap.lifetime import (
    Exponential,
    LifetimeDistribution,
    Mixture,
    Weibull,
)
from ..units import KB, MB


@dataclass(frozen=True)
class AllocationProfile:
    """Memory behaviour of an application, as seen by the GC.

    ``short``/``medium``/``immortal`` fractions must sum to <= 1 (the
    remainder is treated as short-lived). The *medium* component uses a
    heavy-tailed Weibull, which is what produces realistic nursery
    survival curves (and, with CMS/ParNew tenuring, the paper's
    young-generation-size anomaly).
    """

    alloc_bytes_per_iteration: float
    mean_object_size: float = 4 * KB
    short_fraction: float = 0.85
    short_tau: float = 0.3            #: mean lifetime of transient data (s)
    medium_fraction: float = 0.13
    medium_shape: float = 0.45        #: Weibull shape (<1 = heavy tail)
    medium_scale: float = 2.0         #: Weibull scale (s)
    immortal_fraction: float = 0.02
    live_set_bytes: float = 0.0       #: pinned data established at setup
    live_churn_fraction: float = 0.0  #: live set replaced per iteration
    old_mutation_fraction: float = 0.1  #: of live set dirtied per iteration

    def __post_init__(self) -> None:
        if self.alloc_bytes_per_iteration < 0:
            raise ConfigError("alloc_bytes_per_iteration must be >= 0")
        total = self.short_fraction + self.medium_fraction + self.immortal_fraction
        if total > 1.0 + 1e-9:
            raise ConfigError(f"lifetime fractions sum to {total} > 1")
        if not (0 <= self.live_churn_fraction <= 1):
            raise ConfigError("live_churn_fraction must be in [0, 1]")

    def lifetime(self) -> LifetimeDistribution:
        """Lifetime mixture for transient allocations (immortal share is
        modelled through the pinned live set plus an Immortal component)."""
        from ..heap.lifetime import Immortal

        comps = [
            (max(self.short_fraction, 1e-9), Exponential(self.short_tau)),
        ]
        if self.medium_fraction > 0:
            comps.append(
                (self.medium_fraction, Weibull(self.medium_shape, self.medium_scale))
            )
        if self.immortal_fraction > 0:
            comps.append((self.immortal_fraction, Immortal()))
        return Mixture(comps)


class Workload(ABC):
    """Anything a JVM can run."""

    name: str = "workload"

    @abstractmethod
    def drive(self, jvm, result, **kwargs):
        """Return the driver generator for this workload.

        The driver runs as a DES process; it must terminate for
        :meth:`repro.jvm.jvm.JVM.run` to return.
        """


class LiveSet:
    """A pinned, heap-resident working set with churn.

    Allocated in chunks so that releases create old-generation garbage at
    cohort granularity (as a real application's data-structure turnover
    does).
    """

    def __init__(self, total_bytes: float, chunk_bytes: Optional[float] = None,
                 label: str = "live-set"):
        if total_bytes < 0:
            raise ConfigError("total_bytes must be >= 0")
        self.total_bytes = float(total_bytes)
        self.chunk_bytes = float(chunk_bytes) if chunk_bytes else max(
            total_bytes / 16.0, 1 * MB
        )
        self.label = label
        self.chunks: List = []

    def allocate_body(self, ctx, mean_object_size: float):
        """Generator (mutator body): allocate the whole live set in chunks."""
        remaining = self.total_bytes
        while remaining > 0:
            size = min(self.chunk_bytes, remaining)
            cohort = yield from ctx.allocate(
                size,
                None,
                n_objects=max(1.0, size / mean_object_size),
                pinned=True,
                label=self.label,
            )
            self.chunks.append(cohort)
            remaining -= size

    def churn_body(self, ctx, fraction: float, mean_object_size: float, rng):
        """Generator: release *fraction* of the chunks and allocate fresh ones."""
        if fraction <= 0 or not self.chunks:
            return
        n = max(1, int(round(len(self.chunks) * fraction)))
        n = min(n, len(self.chunks))
        idx = rng.choice(len(self.chunks), size=n, replace=False)
        for i in sorted(idx, reverse=True):
            chunk = self.chunks.pop(int(i))
            chunk.release()
        for _ in range(n):
            cohort = yield from ctx.allocate(
                self.chunk_bytes,
                None,
                n_objects=max(1.0, self.chunk_bytes / mean_object_size),
                pinned=True,
                label=self.label,
            )
            self.chunks.append(cohort)

    @property
    def resident_bytes(self) -> float:
        """Bytes currently held by unreleased chunks."""
        return sum(c.resident for c in self.chunks)
