"""Pluggable cell executors: serial in-process, or a process-pool fan-out.

Executors only decide *where* cells run; they never affect *what* a cell
computes. Every cell seeds its own RNG streams from its coordinates
(:func:`repro.seeding.rng_for`), so the process executor with any worker
count yields bit-identical results to the serial one — asserted by
``tests/test_campaign.py``.

Failures are data, not control flow: an executor yields either a
:class:`~repro.jvm.RunResult` or a :class:`CellFailure` per cell, always
in submission order, and leaves the retry/quarantine policy to the
:mod:`~repro.campaign.runner`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..jvm import RunResult
from .cells import CellSpec


@dataclass
class CellFailure:
    """One cell's infrastructure failure (the *worker* broke, not the
    simulated JVM — simulated crashes are ``RunResult.crashed``).

    A failure routinely crosses process and protocol boundaries (pickled
    back from a worker, recorded in the store, sent to a ``repro-serve``
    client), and the live exception object must never travel with it:
    exceptions are frequently unpicklable and never JSON-encodable. The
    ``exc`` field is therefore local-process-only — :meth:`__getstate__`
    folds it into ``error`` before pickling, and :meth:`to_json` /
    :meth:`from_json` (the round trip both the campaign quarantine
    report and the serve failure responses use) carry strings only.
    """

    cell: CellSpec
    kind: str                   #: "exception" | "timeout" | "broken-pool"
    error: str                  #: human-readable description
    exc: Optional[BaseException] = None

    def format(self) -> str:
        """One-line description for logs and quarantine reports."""
        return f"[{self.kind}] {self.cell.benchmark}/{self.cell.gc}/seed={self.cell.seed}: {self.error}"

    def __getstate__(self):
        """Pickle without the live exception (workers' exceptions may not
        unpickle on the other side); its text is preserved in ``error``."""
        state = dict(self.__dict__)
        exc = state.pop("exc", None)
        if exc is not None and not state.get("error"):
            state["error"] = f"{type(exc).__name__}: {exc}"
        state["exc"] = None
        return state

    def to_json(self) -> dict:
        """JSON-safe projection (strings only; ``exc`` never included)."""
        error = self.error
        if not error and self.exc is not None:
            error = f"{type(self.exc).__name__}: {self.exc}"
        return {"cell": self.cell.to_dict(), "kind": self.kind, "error": error}

    @classmethod
    def from_json(cls, d: dict) -> "CellFailure":
        """Inverse of :meth:`to_json` (``exc`` is gone by design)."""
        return cls(cell=CellSpec.from_dict(d["cell"]), kind=str(d["kind"]),
                   error=str(d["error"]))


Outcome = Union[RunResult, CellFailure]
CellFn = Callable[[CellSpec], RunResult]
SubmitHook = Optional[Callable[[CellSpec], None]]


def default_workers() -> int:
    """Auto-sized worker count: one per available core."""
    return max(1, os.cpu_count() or 1)


class SerialExecutor:
    """Run cells one after another in this process (the reference
    executor: `run_grid`'s historical behaviour)."""

    name = "serial"

    def open(self) -> None:
        """No-op (interface parity with :class:`ProcessExecutor`)."""

    def close(self) -> None:
        """No-op (interface parity with :class:`ProcessExecutor`)."""

    def run_one(self, cell: CellSpec, fn: CellFn, *,
                timeout: Optional[float] = None) -> Outcome:
        """Run a single cell in this process (``timeout`` unenforced, as
        in :meth:`run_cells` — there is no second process to keep it)."""
        try:
            return fn(cell)
        except Exception as exc:
            return CellFailure(cell=cell, kind="exception",
                               error=f"{type(exc).__name__}: {exc}", exc=exc)

    def run_cells(self, cells: Sequence[CellSpec], fn: CellFn, *,
                  timeout: Optional[float] = None,
                  on_submit: SubmitHook = None) -> Iterator[Tuple[CellSpec, Outcome]]:
        """Yield ``(cell, RunResult | CellFailure)`` in order.

        ``timeout`` is accepted for interface parity but not enforced —
        there is no second process to keep the deadline.
        """
        for cell in cells:
            if on_submit is not None:
                on_submit(cell)
            try:
                yield cell, fn(cell)
            except Exception as exc:
                yield cell, CellFailure(cell=cell, kind="exception",
                                        error=f"{type(exc).__name__}: {exc}",
                                        exc=exc)


class ProcessExecutor:
    """Fan cells out across worker processes.

    Cells are submitted eagerly and collected in submission order, so
    downstream consumers assemble identical result dicts regardless of
    which worker finished first. ``timeout`` bounds the wall-clock wait
    per cell *from the moment its turn to be collected comes*; a timed-out
    cell is reported as a :class:`CellFailure` (kind ``timeout``) and its
    future cancelled if it never started.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ConfigError("workers must be >= 1")
        self.workers = workers or default_workers()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        #: Pools discarded after a crash/timeout (supervision metric).
        self.pools_recycled = 0

    # -- persistent-pool lifecycle (service mode) -----------------------
    #
    # `run_cells` owns a transient pool per sweep; a long-lived service
    # instead calls `open()` once and `run_one()` per job, and the
    # executor *supervises* its pool: a worker death (BrokenProcessPool)
    # or a timed-out job poisons the pool, so it is discarded and lazily
    # rebuilt — one bad cell never takes the service down with it.

    def open(self) -> None:
        """Create the persistent pool (idempotent)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ProcessExecutor":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _checkout_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _recycle_pool(self, pool: ProcessPoolExecutor) -> None:
        """Discard *pool* (broken or hosting a stuck job); the next
        :meth:`run_one` builds a fresh one."""
        with self._pool_lock:
            if self._pool is not pool:
                return          # someone already swapped it out
            self._pool = None
            self.pools_recycled += 1
        pool.shutdown(wait=False, cancel_futures=True)

    def run_one(self, cell: CellSpec, fn: CellFn, *,
                timeout: Optional[float] = None) -> Outcome:
        """Run a single cell on the persistent pool (thread-safe).

        Worker death comes back as a ``broken-pool`` :class:`CellFailure`
        and the pool is replaced, so the caller can simply retry; a
        timeout likewise recycles the pool (the stuck worker is abandoned
        rather than joined — the deadline is the contract).
        """
        pool = self._checkout_pool()
        try:
            future = pool.submit(fn, cell)
        except RuntimeError as exc:    # pool torn down under us
            self._recycle_pool(pool)
            return CellFailure(cell=cell, kind="broken-pool",
                               error=str(exc) or "pool shut down", exc=exc)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            self._recycle_pool(pool)
            return CellFailure(
                cell=cell, kind="timeout",
                error=f"cell exceeded {timeout}s wall-clock budget",
            )
        except BrokenProcessPool as exc:
            self._recycle_pool(pool)
            return CellFailure(cell=cell, kind="broken-pool",
                               error=str(exc) or "worker process died",
                               exc=exc)
        except Exception as exc:
            return CellFailure(cell=cell, kind="exception",
                               error=f"{type(exc).__name__}: {exc}", exc=exc)

    def run_cells(self, cells: Sequence[CellSpec], fn: CellFn, *,
                  timeout: Optional[float] = None,
                  on_submit: SubmitHook = None) -> Iterator[Tuple[CellSpec, Outcome]]:
        """Yield ``(cell, RunResult | CellFailure)`` in submission order."""
        if not cells:
            return
        max_workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = []
            for cell in cells:
                if on_submit is not None:
                    on_submit(cell)
                futures.append(pool.submit(fn, cell))
            for cell, future in zip(cells, futures):
                try:
                    yield cell, future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    yield cell, CellFailure(
                        cell=cell, kind="timeout",
                        error=f"cell exceeded {timeout}s wall-clock budget",
                    )
                except BrokenProcessPool as exc:
                    # The pool is dead; report this and every remaining
                    # cell as broken (their futures would raise the same).
                    yield cell, CellFailure(cell=cell, kind="broken-pool",
                                            error=str(exc) or "worker process died",
                                            exc=exc)
                except Exception as exc:
                    yield cell, CellFailure(cell=cell, kind="exception",
                                            error=f"{type(exc).__name__}: {exc}",
                                            exc=exc)


_EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
}


def get_executor(name: str, workers: Optional[int] = None):
    """Resolve an executor by name (``serial`` | ``process``)."""
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown executor {name!r}; choose from {sorted(_EXECUTORS)}"
        ) from None
    if factory is ProcessExecutor:
        return ProcessExecutor(workers=workers)
    return factory()
