"""Pluggable cell executors: serial in-process, or a process-pool fan-out.

Executors only decide *where* cells run; they never affect *what* a cell
computes. Every cell seeds its own RNG streams from its coordinates
(:func:`repro.seeding.rng_for`), so the process executor with any worker
count yields bit-identical results to the serial one — asserted by
``tests/test_campaign.py``.

Failures are data, not control flow: an executor yields either a
:class:`~repro.jvm.RunResult` or a :class:`CellFailure` per cell, always
in submission order, and leaves the retry/quarantine policy to the
:mod:`~repro.campaign.runner`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..jvm import RunResult
from .cells import CellSpec


@dataclass
class CellFailure:
    """One cell's infrastructure failure (the *worker* broke, not the
    simulated JVM — simulated crashes are ``RunResult.crashed``)."""

    cell: CellSpec
    kind: str                   #: "exception" | "timeout" | "broken-pool"
    error: str                  #: human-readable description
    exc: Optional[BaseException] = None

    def format(self) -> str:
        """One-line description for logs and quarantine reports."""
        return f"[{self.kind}] {self.cell.benchmark}/{self.cell.gc}/seed={self.cell.seed}: {self.error}"


Outcome = Union[RunResult, CellFailure]
CellFn = Callable[[CellSpec], RunResult]
SubmitHook = Optional[Callable[[CellSpec], None]]


def default_workers() -> int:
    """Auto-sized worker count: one per available core."""
    return max(1, os.cpu_count() or 1)


class SerialExecutor:
    """Run cells one after another in this process (the reference
    executor: `run_grid`'s historical behaviour)."""

    name = "serial"

    def run_cells(self, cells: Sequence[CellSpec], fn: CellFn, *,
                  timeout: Optional[float] = None,
                  on_submit: SubmitHook = None) -> Iterator[Tuple[CellSpec, Outcome]]:
        """Yield ``(cell, RunResult | CellFailure)`` in order.

        ``timeout`` is accepted for interface parity but not enforced —
        there is no second process to keep the deadline.
        """
        for cell in cells:
            if on_submit is not None:
                on_submit(cell)
            try:
                yield cell, fn(cell)
            except Exception as exc:
                yield cell, CellFailure(cell=cell, kind="exception",
                                        error=f"{type(exc).__name__}: {exc}",
                                        exc=exc)


class ProcessExecutor:
    """Fan cells out across worker processes.

    Cells are submitted eagerly and collected in submission order, so
    downstream consumers assemble identical result dicts regardless of
    which worker finished first. ``timeout`` bounds the wall-clock wait
    per cell *from the moment its turn to be collected comes*; a timed-out
    cell is reported as a :class:`CellFailure` (kind ``timeout``) and its
    future cancelled if it never started.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ConfigError("workers must be >= 1")
        self.workers = workers or default_workers()

    def run_cells(self, cells: Sequence[CellSpec], fn: CellFn, *,
                  timeout: Optional[float] = None,
                  on_submit: SubmitHook = None) -> Iterator[Tuple[CellSpec, Outcome]]:
        """Yield ``(cell, RunResult | CellFailure)`` in submission order."""
        if not cells:
            return
        max_workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = []
            for cell in cells:
                if on_submit is not None:
                    on_submit(cell)
                futures.append(pool.submit(fn, cell))
            for cell, future in zip(cells, futures):
                try:
                    yield cell, future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    yield cell, CellFailure(
                        cell=cell, kind="timeout",
                        error=f"cell exceeded {timeout}s wall-clock budget",
                    )
                except BrokenProcessPool as exc:
                    # The pool is dead; report this and every remaining
                    # cell as broken (their futures would raise the same).
                    yield cell, CellFailure(cell=cell, kind="broken-pool",
                                            error=str(exc) or "worker process died",
                                            exc=exc)
                except Exception as exc:
                    yield cell, CellFailure(cell=cell, kind="exception",
                                            error=f"{type(exc).__name__}: {exc}",
                                            exc=exc)


_EXECUTORS = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
}


def get_executor(name: str, workers: Optional[int] = None):
    """Resolve an executor by name (``serial`` | ``process``)."""
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown executor {name!r}; choose from {sorted(_EXECUTORS)}"
        ) from None
    if factory is ProcessExecutor:
        return ProcessExecutor(workers=workers)
    return factory()
