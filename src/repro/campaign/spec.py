"""Campaign specifications: a named set of grids plus config overrides.

A :class:`CampaignSpec` is the durable description of a sweep — what the
manifest records and what ``repro-campaign resume`` reloads. It is
deliberately value-like (frozen, hashable, JSON round-trippable): the
campaign *digest* identifies "the same sweep" across processes and
machines, while individual cell caching is finer-grained (per-cell
content digests), so two campaigns sharing cells share their cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..gc.registry import resolve_gc
from ..studies import GridSpec
from .cells import CellSpec, _jsonable


@dataclass(frozen=True)
class CampaignSpec:
    """One named sweep: one or more grids, plus shared config overrides."""

    name: str
    grids: Tuple[GridSpec, ...]
    #: Extra ``JVMConfig`` kwargs applied to every cell (sorted items).
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __init__(self, name: str, grids: Sequence[GridSpec],
                 overrides: Optional[Mapping[str, object]] = None):
        if not name or not str(name).strip():
            raise ConfigError("campaign name must be non-empty")
        grids = tuple(grids)
        if not grids:
            raise ConfigError("a campaign needs at least one grid")
        for g in grids:
            if not isinstance(g, GridSpec):
                raise ConfigError(f"grids must be GridSpec instances, got {type(g).__name__}")
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "grids", grids)
        object.__setattr__(self, "overrides",
                           tuple(sorted((overrides or {}).items())))

    # -- cells ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of cells across all grids."""
        return sum(g.size for g in self.grids)

    def cell_specs(self) -> List[List[CellSpec]]:
        """Per-grid lists of canonical :class:`CellSpec`s, in grid order."""
        out: List[List[CellSpec]] = []
        overrides = dict(self.overrides)
        for grid in self.grids:
            cells = [
                CellSpec.from_axes(
                    benchmark, gc, heap, young, seed,
                    iterations=grid.iterations, system_gc=grid.system_gc,
                    tlab_enabled=grid.tlab_enabled, overrides=overrides,
                )
                for benchmark, gc, heap, young, seed in grid.cells()
            ]
            out.append(cells)
        return out

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (stored in the manifest)."""
        return {
            "name": self.name,
            "grids": [grid_to_dict(g) for g in self.grids],
            "overrides": [[k, _jsonable(v)] for k, v in self.overrides],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict` (used by ``resume``/``status``)."""
        return cls(
            name=d["name"],
            grids=[grid_from_dict(g) for g in d["grids"]],
            overrides={k: v for k, v in d.get("overrides", [])},
        )

    def digest(self) -> str:
        """Identity of the sweep: sha256 over the canonical spec JSON."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def grid_to_dict(grid: GridSpec) -> Dict[str, object]:
    """JSON-safe form of a :class:`~repro.studies.GridSpec`.

    GC axis values are canonicalized (``"g1"`` → ``"G1GC"``); size axes
    keep their original spelling ("16g" stays "16g") so the round trip
    preserves what the user wrote.
    """
    return {
        "benchmarks": [str(b) for b in grid.benchmarks],
        "gcs": [resolve_gc(g).value for g in grid.gcs],
        "heaps": list(grid.heaps),
        "youngs": list(grid.youngs),
        "seeds": [int(s) for s in grid.seeds],
        "iterations": grid.iterations,
        "system_gc": grid.system_gc,
        "tlab_enabled": grid.tlab_enabled,
    }


def grid_from_dict(d: Dict[str, object]) -> GridSpec:
    """Inverse of :func:`grid_to_dict`."""
    return GridSpec(
        benchmarks=list(d["benchmarks"]),
        gcs=list(d["gcs"]),
        heaps=list(d["heaps"]),
        youngs=list(d["youngs"]),
        seeds=list(d["seeds"]),
        iterations=d["iterations"],
        system_gc=d["system_gc"],
        tlab_enabled=d["tlab_enabled"],
    )
