"""The ``repro-campaign`` command: run / status / resume / clean.

``run`` executes a grid campaign (and is implicitly resumable: cells
already in the store are cache hits); ``resume`` re-runs the spec
recorded in a store's manifest without re-typing the axes; ``status``
inspects a store; ``clean`` clears records.

Examples::

    repro-campaign run --name smoke --store /tmp/camp \\
        --benchmarks lusearch batik --gcs Serial ParallelOld \\
        --heaps 1g --youngs 256m --seeds 0 1 --iterations 3 \\
        --executor process --workers 4 --progress
    repro-campaign status --store /tmp/camp
    repro-campaign resume --store /tmp/camp --workers 2
    repro-campaign clean --store /tmp/camp --failures-only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..analysis.report import render_campaign_summary, render_table
from ..errors import ReproError
from ..studies import GridSpec
from .progress import ProgressReporter
from .runner import CampaignResult, run_campaign
from .spec import CampaignSpec
from .store import ResultStore, store_status


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    grid = parser.add_argument_group("grid axes")
    grid.add_argument("--benchmarks", nargs="+", required=True,
                      help="DaCapo benchmark names")
    grid.add_argument("--gcs", nargs="+", default=["ParallelOld"],
                      help="collectors (Serial|ParNew|Parallel|ParallelOld|CMS|G1)")
    grid.add_argument("--heaps", nargs="+", default=["16g"],
                      help="heap sizes (-Xmx), e.g. 16g 64g")
    grid.add_argument("--youngs", nargs="+", default=None,
                      help="young sizes (-Xmn); omit for the default fraction")
    grid.add_argument("--seeds", nargs="+", type=int, default=[0],
                      help="simulation seeds")
    grid.add_argument("--iterations", type=int, default=10,
                      help="DaCapo iterations per cell")
    grid.add_argument("--no-system-gc", action="store_true",
                      help="disable the forced full GC between iterations")
    grid.add_argument("--no-tlab", action="store_true", help="disable TLABs")


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    ex = parser.add_argument_group("execution")
    ex.add_argument("--executor", choices=["serial", "process"], default="process",
                    help="where cells run (default: process fan-out)")
    ex.add_argument("--workers", type=int, default=None,
                    help="process-pool size (default: one per core)")
    ex.add_argument("--timeout", type=float, default=None,
                    help="per-cell wall-clock budget in seconds")
    ex.add_argument("--retries", type=int, default=2,
                    help="retries before a failing cell is quarantined")
    ex.add_argument("--progress", action="store_true",
                    help="live progress (done/cached/failed, ETA) on stderr")
    ex.add_argument("--csv", default=None, help="export all cells to a CSV file")
    ex.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="write one telemetry trace per simulated cell to "
                         "DIR/<digest>.trace.jsonl (compare cells with "
                         "`repro-trace diff`)")


def _spec_from_args(args) -> CampaignSpec:
    grid = GridSpec(
        benchmarks=args.benchmarks,
        gcs=args.gcs,
        heaps=args.heaps,
        youngs=args.youngs if args.youngs is not None else [None],
        seeds=args.seeds,
        iterations=args.iterations,
        system_gc=not args.no_system_gc,
        tlab_enabled=not args.no_tlab,
    )
    return CampaignSpec(name=args.name, grids=[grid])


def _execute(spec: CampaignSpec, args, store: Optional[ResultStore]) -> int:
    reporter = ProgressReporter(spec.size) if args.progress else None
    result = run_campaign(
        spec, store=store, executor=args.executor, workers=args.workers,
        timeout=args.timeout, retries=args.retries, reporter=reporter,
        trace_dir=args.trace_dir,
    )
    _report(result, csv_path=args.csv)
    return 1 if result.stats.quarantined else 0


def _report(result: CampaignResult, csv_path: Optional[str] = None) -> None:
    print(render_campaign_summary(result))
    for failure in result.quarantined:
        print(f"quarantined: {failure.format()}")
    if csv_path:
        result.to_csv(csv_path)
        print(f"results exported to {csv_path}")


def run_cmd(args) -> int:
    """``repro-campaign run``: execute (or resume) a campaign."""
    spec = _spec_from_args(args)
    store = ResultStore(args.store) if args.store else None
    return _execute(spec, args, store)


def resume_cmd(args) -> int:
    """``repro-campaign resume``: re-run the spec recorded in the store."""
    store = ResultStore(args.store)
    campaigns = store.read_manifest().get("campaigns", [])
    if not campaigns:
        print(f"no campaign recorded in {store.root}; run `repro-campaign run` first",
              file=sys.stderr)
        return 2
    entry = campaigns[-1]
    if args.name is not None:
        matches = [c for c in campaigns if c["name"] == args.name]
        if not matches:
            known = ", ".join(sorted({c["name"] for c in campaigns}))
            print(f"no campaign named {args.name!r} in {store.root} (known: {known})",
                  file=sys.stderr)
            return 2
        entry = matches[-1]
    spec = CampaignSpec.from_dict(entry["spec"])
    print(f"resuming campaign {spec.name!r} ({spec.size} cells) from {store.root}")
    return _execute(spec, args, store)


def status_cmd(args) -> int:
    """``repro-campaign status``: inspect a store.

    Text by default; ``--json`` emits the :func:`store_status` schema the
    ``repro-serve`` status endpoint shares, so CI and service tooling
    parse one format.
    """
    status = store_status(ResultStore(args.store))
    if getattr(args, "json", False):
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"store {status['root']}: {status['records']} records "
          f"({status['ok']} ok, {status['failed']} failed)")
    if status["quarantined_lines"]:
        print(f"quarantined {status['quarantined_lines']} corrupt record line(s)")
    if status["campaigns"]:
        rows = [[c["name"], c["cells"], c["ok"], c["failed"], c["missing"]]
                for c in status["campaigns"]]
        print(render_table(["campaign", "cells", "ok", "failed", "missing"], rows))
    else:
        print("no campaigns recorded in the manifest")
    return 0


def clean_cmd(args) -> int:
    """``repro-campaign clean``: drop failure records, or everything."""
    store = ResultStore(args.store)
    if args.failures_only:
        n = store.drop_failures()
        print(f"dropped {n} failure record(s) from {store.root}")
    else:
        n = store.clear()
        print(f"dropped all {n} record(s) from {store.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-campaign``."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel, cached, resumable experiment-campaign runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run (or resume) a campaign")
    p_run.add_argument("--name", default="campaign", help="campaign name")
    p_run.add_argument("--store", default=None,
                       help="result-store directory (omit for an uncached run)")
    _add_grid_args(p_run)
    _add_exec_args(p_run)
    p_run.set_defaults(fn=run_cmd)

    p_resume = sub.add_parser("resume",
                              help="re-run the campaign recorded in a store")
    p_resume.add_argument("--store", required=True)
    p_resume.add_argument("--name", default=None,
                          help="campaign name (default: most recent entry)")
    _add_exec_args(p_resume)
    p_resume.set_defaults(fn=resume_cmd)

    p_status = sub.add_parser("status", help="inspect a result store")
    p_status.add_argument("--store", required=True)
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable store/campaign stats "
                               "(same schema as the repro-serve status "
                               "endpoint's `store` section)")
    p_status.set_defaults(fn=status_cmd)

    p_clean = sub.add_parser("clean", help="drop records from a store")
    p_clean.add_argument("--store", required=True)
    p_clean.add_argument("--failures-only", action="store_true",
                         help="only drop failure records (so they retry)")
    p_clean.set_defaults(fn=clean_cmd)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer went away (e.g. `... | head`); not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
