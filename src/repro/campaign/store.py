"""Content-addressed on-disk result store for campaigns.

Layout (one directory per store)::

    <root>/
      manifest.json      # campaign registry: specs that wrote here
      records.jsonl      # one JSON record per completed/failed cell

Each record line is ``{"digest", "status", "cell", "run"|"error", ...}``
keyed by the cell's content digest (:meth:`CellSpec.digest`), so a cache
lookup is independent of which campaign, executor or worker produced the
record. Records are appended and **fsynced one line at a time** — a
``kill -9`` can at worst truncate the final line, never lose a completed
cell; the loader quarantines undecodable lines (keeping a count) and
compacts the file instead of failing, so an interrupted write costs one
re-simulated cell, not the sweep.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

try:                            # POSIX only; the store degrades to
    import fcntl                # lock-free appends elsewhere.
except ImportError:             # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..errors import ConfigError
from ..jvm import RunResult
from .cells import CellSpec, decode_run, encode_run

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"
LOCK_NAME = ".lock"

#: Store format version; readers reject newer majors.
STORE_VERSION = 1


class ResultStore:
    """Append-only, content-addressed store of cell results."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._records: Dict[str, dict] = {}
        #: Digests deliberately removed here (``drop_failures``) — kept so
        #: a merging :meth:`compact` does not resurrect them from disk.
        self._dropped: set = set()
        self.quarantined_lines = 0
        self._load()

    # -- paths ----------------------------------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        """Path of the campaign-registry manifest."""
        return self.root / MANIFEST_NAME

    @property
    def records_path(self) -> pathlib.Path:
        """Path of the JSONL record file."""
        return self.root / RECORDS_NAME

    @property
    def lock_path(self) -> pathlib.Path:
        """Path of the sidecar advisory-lock file."""
        return self.root / LOCK_NAME

    # -- cross-process locking ------------------------------------------

    @contextlib.contextmanager
    def locked(self):
        """Hold the store's advisory lock (``flock`` on a sidecar file).

        Every mutation — record appends, compaction, manifest rewrites —
        runs under this lock, so a long-lived ``repro-serve`` service and
        a concurrent ``repro-campaign`` invocation sharing one store
        serialize their writes instead of interleaving partial JSONL
        lines. Advisory and re-entrant-free by design: keep critical
        sections short. No-op where ``fcntl`` is unavailable.
        """
        if fcntl is None:       # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.lock_path, "a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- loading --------------------------------------------------------

    @staticmethod
    def _scan_records(path: pathlib.Path) -> Tuple[Dict[str, dict], int]:
        """Parse *path* into ``(records-by-digest, corrupt-line-count)``;
        duplicates resolve last-write-wins, undecodable lines are counted
        instead of raising."""
        records: Dict[str, dict] = {}
        corrupt = 0
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    digest = rec["digest"]
                    status = rec["status"]
                except (ValueError, KeyError, TypeError):
                    corrupt += 1
                    continue
                if status == "ok" and "run" not in rec:
                    corrupt += 1
                    continue
                records[digest] = rec
        return records, corrupt

    def _load(self) -> None:
        if not self.records_path.exists():
            return
        # Read under the lock so a concurrent appender's half-written
        # final line cannot be mistaken for corruption.
        with self.locked():
            self._records, corrupt = self._scan_records(self.records_path)
        self.quarantined_lines = corrupt
        if corrupt:
            # Drop the undecodable lines on disk so they are quarantined
            # exactly once, not re-reported by every later open.
            self.compact()

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def get(self, digest: str) -> Optional[dict]:
        """The raw record for *digest*, or None."""
        return self._records.get(digest)

    def get_run(self, digest: str) -> Optional[RunResult]:
        """The decoded :class:`RunResult` for an ``ok`` record, else None."""
        rec = self._records.get(digest)
        if rec is None or rec["status"] != "ok":
            return None
        return decode_run(rec["run"])

    def ok_digests(self) -> List[str]:
        """Digests with a completed run (sorted for determinism)."""
        return sorted(d for d, r in self._records.items() if r["status"] == "ok")

    def failed_digests(self) -> List[str]:
        """Digests whose last record is a failure (sorted)."""
        return sorted(d for d, r in self._records.items() if r["status"] != "ok")

    def iter_ok(self) -> Iterator[Tuple[CellSpec, RunResult]]:
        """Iterate ``(cell, run)`` over completed records, sorted by cell."""
        for digest in self.ok_digests():
            rec = self._records[digest]
            yield CellSpec.from_dict(rec["cell"]), decode_run(rec["run"])

    # -- writes ---------------------------------------------------------

    def _append(self, rec: dict) -> None:
        with self.locked():
            with open(self.records_path, "a") as fh:
                fh.write(json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        self._records[rec["digest"]] = rec

    def record_ok(self, cell: CellSpec, result: RunResult) -> None:
        """Persist a completed cell (flushed + fsynced immediately)."""
        self._append({
            "v": STORE_VERSION,
            "digest": cell.digest(),
            "status": "ok",
            "cell": cell.to_dict(),
            "run": encode_run(result),
        })

    def record_failure(self, cell: CellSpec, kind: str, error: str,
                       attempts: int) -> None:
        """Persist a quarantined cell (worker crash/timeout, retries spent)."""
        self._append({
            "v": STORE_VERSION,
            "digest": cell.digest(),
            "status": "failed",
            "cell": cell.to_dict(),
            "kind": kind,
            "error": error,
            "attempts": attempts,
        })

    def record_cell_failure(self, failure, attempts: int) -> None:
        """Persist a :class:`~repro.campaign.executors.CellFailure` via
        its JSON projection (the ``exc`` field never reaches disk)."""
        d = failure.to_json()
        self.record_failure(failure.cell, d["kind"], d["error"],
                            attempts=attempts)

    def compact(self) -> None:
        """Rewrite the record file: drops corrupt lines, superseded
        duplicates and locally-dropped digests. Atomic (write + rename)
        and concurrency-safe: the on-disk state is re-read and merged
        under the store lock first, so records appended by another
        process (a running service, a parallel campaign) since our load
        survive the rewrite instead of being silently discarded.
        """
        tmp = self.records_path.with_suffix(".jsonl.tmp")
        with self.locked():
            merged: Dict[str, dict] = {}
            if self.records_path.exists():
                merged, _ = self._scan_records(self.records_path)
            for digest in self._dropped:
                merged.pop(digest, None)
            merged.update(self._records)
            self._records = merged
            self._dropped = set()
            with open(tmp, "w") as fh:
                for digest in sorted(self._records):
                    fh.write(json.dumps(self._records[digest], sort_keys=True,
                                        separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(self.records_path)

    def drop_failures(self) -> int:
        """Remove failure records (so the next run retries them)."""
        failed = self.failed_digests()
        for digest in failed:
            del self._records[digest]
            self._dropped.add(digest)
        if failed:
            self.compact()
        return len(failed)

    def clear(self) -> int:
        """Remove every record (the manifest is kept)."""
        n = len(self._records)
        self._records.clear()
        self._dropped = set()
        with self.locked():
            if self.records_path.exists():
                self.records_path.unlink()
        return n

    # -- manifest -------------------------------------------------------

    def read_manifest(self) -> dict:
        """The manifest dict (empty registry when absent)."""
        if not self.manifest_path.exists():
            return {"version": STORE_VERSION, "campaigns": []}
        try:
            with open(self.manifest_path) as fh:
                manifest = json.load(fh)
        except ValueError as exc:
            raise ConfigError(f"corrupt manifest {self.manifest_path}: {exc}") from None
        if manifest.get("version", 0) > STORE_VERSION:
            raise ConfigError(
                f"store {self.root} written by a newer repro (manifest v{manifest['version']})"
            )
        return manifest

    def register_campaign(self, entry: dict) -> None:
        """Idempotently add a campaign entry (keyed by its spec digest).

        The read-modify-write runs under the store lock so concurrent
        registrants (service + campaign CLI) cannot lose each other's
        entries.
        """
        with self.locked():
            manifest = self.read_manifest()
            campaigns = [c for c in manifest.get("campaigns", [])
                         if c.get("digest") != entry.get("digest")]
            campaigns.append(entry)
            manifest["campaigns"] = campaigns
            manifest["version"] = STORE_VERSION
            tmp = self.manifest_path.with_suffix(".json.tmp")
            with open(tmp, "w") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.write("\n")
            tmp.replace(self.manifest_path)

    # -- export ---------------------------------------------------------

    def to_rows(self) -> List[List]:
        """Flat rows over completed records, in
        :data:`repro.studies.GRID_CSV_COLUMNS` order and the same sort
        order as :meth:`repro.studies.GridResult.to_rows`."""
        cells_runs = list(self.iter_ok())
        cells_runs.sort(key=lambda cr: (cr[0].benchmark, cr[0].gc, cr[0].heap,
                                        cr[0].young or 0.0, cr[0].seed))
        rows = []
        for cell, run in cells_runs:
            rows.append([
                cell.benchmark, cell.gc, cell.heap, cell.young, cell.seed,
                run.execution_time, run.final_iteration_time, run.crashed,
                run.gc_log.count, run.gc_log.full_count,
                run.gc_log.total_pause, run.gc_log.max_pause,
            ])
        return rows

    def to_csv(self, path) -> None:
        """Export completed records as CSV, byte-compatible with
        :meth:`repro.studies.GridResult.to_csv` for the same cells."""
        import csv

        from ..studies import GRID_CSV_COLUMNS

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(GRID_CSV_COLUMNS)
            writer.writerows(self.to_rows())


@dataclass
class MergeStats:
    """Bookkeeping for one :func:`merge_stores` call."""

    sources: int = 0            #: shard stores read
    records: int = 0            #: records in the merged store
    ok: int = 0                 #: completed cells after the merge
    failed: int = 0             #: quarantined cells after the merge
    superseded: int = 0         #: failure records replaced by an ok twin
    duplicates: int = 0         #: identical records seen on >1 shard
    quarantined_lines: int = 0  #: corrupt lines dropped across all shards

    def summary(self) -> str:
        """One-line, grep-stable summary (CI asserts on this format)."""
        return (f"merged {self.sources} stores: {self.records} records "
                f"({self.ok} ok, {self.failed} failed), "
                f"{self.duplicates} duplicates, "
                f"{self.superseded} failures superseded, "
                f"{self.quarantined_lines} corrupt lines dropped")


def merge_stores(sources: Sequence[Union[ResultStore, str]],
                 dest: Union[ResultStore, str]) -> MergeStats:
    """Merge shard stores into *dest* — the scatter-gather inverse.

    Built on the same merge-based compaction that makes concurrent
    writers safe: every source's records are folded into *dest*'s
    in-memory view, then a single :meth:`ResultStore.compact` writes the
    canonical file (sorted by digest, one canonical-JSON line each).
    Because records are content-addressed and cell execution is
    deterministic, a store merged from N shards is **byte-identical** to
    the compacted store of a serial run over the same cells — the
    property the CI ``cluster-smoke`` job pins with ``cmp``.

    Conflict policy (deterministic in source order): the first record
    for a digest wins, except that an ``ok`` record always supersedes a
    ``failed`` one — a cell that crashed on one shard but completed on
    another (a re-routed straggler) counts as completed. Manifests merge
    through :meth:`ResultStore.register_campaign`, which is idempotent
    per campaign digest.
    """
    if not isinstance(dest, ResultStore):
        dest = ResultStore(dest)
    stats = MergeStats()
    for root in sources:
        src = root if isinstance(root, ResultStore) else ResultStore(root)
        stats.sources += 1
        stats.quarantined_lines += src.quarantined_lines
        for digest, rec in src._records.items():
            have = dest._records.get(digest)
            if have is None:
                dest._records[digest] = rec
                continue
            if have == rec:
                stats.duplicates += 1
                continue
            if have["status"] != "ok" and rec["status"] == "ok":
                dest._records[digest] = rec
                stats.superseded += 1
            elif have["status"] == "ok" and rec["status"] != "ok":
                stats.superseded += 1      # kept the ok twin
            else:
                stats.duplicates += 1      # first record wins
        for entry in src.read_manifest().get("campaigns", []):
            dest.register_campaign(entry)
    dest.compact()
    stats.records = len(dest)
    stats.ok = len(dest.ok_digests())
    stats.failed = len(dest.failed_digests())
    return stats


def store_status(store: ResultStore) -> Dict[str, object]:
    """Machine-readable store/campaign statistics.

    The one code path behind ``repro-campaign status`` (text and
    ``--json``) and the ``repro-serve`` ``status`` endpoint's ``store``
    section, so CI and service clients consume an identical schema::

        {"version", "root", "records", "ok", "failed",
         "quarantined_lines",
         "campaigns": [{"name", "digest", "cells", "ok", "failed",
                        "missing"}, ...]}
    """
    from .spec import CampaignSpec

    campaigns: List[Dict[str, object]] = []
    for entry in store.read_manifest().get("campaigns", []):
        spec = CampaignSpec.from_dict(entry["spec"])
        digests = {c.digest() for cells in spec.cell_specs() for c in cells}
        ok = sum(1 for d in digests if (store.get(d) or {}).get("status") == "ok")
        failed = sum(1 for d in digests if (store.get(d) or {}).get("status") == "failed")
        campaigns.append({
            "name": spec.name,
            "digest": entry.get("digest"),
            "cells": len(digests),
            "ok": ok,
            "failed": failed,
            "missing": len(digests) - ok - failed,
        })
    return {
        "version": STORE_VERSION,
        "root": str(store.root),
        "records": len(store),
        "ok": len(store.ok_digests()),
        "failed": len(store.failed_digests()),
        "quarantined_lines": store.quarantined_lines,
        "campaigns": campaigns,
    }
