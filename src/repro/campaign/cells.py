"""The unit of campaign work: one grid cell, pure and picklable.

A :class:`CellSpec` is the *canonical* identity of one JVM run — axis
values are normalized at construction (GC aliases resolved, sizes parsed
to bytes) so that ``GridSpec(gcs=["g1"])`` and ``GridSpec(gcs=["G1GC"])``
address the same cached result. :func:`run_cell` executes one cell from
scratch; it closes over nothing, so ``ProcessPoolExecutor`` can ship it
to workers by reference, and its output depends only on the cell's own
coordinates (all RNG streams derive from ``(seed, gc, ...)`` via
:mod:`repro.seeding`), never on which worker ran it or in what order.

:func:`encode_run`/:func:`decode_run` are the JSON codecs the
:class:`~repro.campaign.store.ResultStore` uses; they round-trip a
:class:`~repro.jvm.RunResult` exactly (Python's shortest-repr float
serialization is lossless), so a grid assembled from cache hits compares
equal to one assembled from fresh runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..gc.registry import resolve_gc
from ..gc.stats import ConcurrentRecord, GCLog, PauseRecord
from ..jvm import JVM, JVMConfig, RunResult
from ..machine.topology import TOPOLOGIES
from ..studies import CellKey
from ..units import parse_size

#: Bump when the cell → result contract changes incompatibly; digests
#: include it, so stale store entries miss instead of poisoning results.
CELL_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CellSpec:
    """Canonical, picklable identity of one grid cell."""

    benchmark: str
    gc: str                     #: canonical ``GCType.value`` ("G1GC", ...)
    heap: float                 #: bytes
    young: Optional[float]      #: bytes, or None for the default fraction
    seed: int
    iterations: int = 10
    system_gc: bool = True
    tlab_enabled: bool = True
    #: Extra ``JVMConfig`` kwargs, as sorted items for hashability.
    overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_axes(cls, benchmark, gc, heap, young, seed, *,
                  iterations: int = 10, system_gc: bool = True,
                  tlab_enabled: bool = True,
                  overrides: Optional[Dict[str, object]] = None) -> "CellSpec":
        """Build a cell from raw grid-axis values, normalizing them."""
        return cls(
            benchmark=str(benchmark),
            gc=resolve_gc(gc).value,
            heap=float(parse_size(heap)),
            young=float(parse_size(young)) if young is not None else None,
            seed=int(seed),
            iterations=int(iterations),
            system_gc=bool(system_gc),
            tlab_enabled=bool(tlab_enabled),
            overrides=tuple(sorted((overrides or {}).items())),
        )

    def key(self) -> CellKey:
        """The :class:`~repro.studies.CellKey` this cell produces."""
        return CellKey(benchmark=self.benchmark, gc=self.gc, heap=self.heap,
                       young=self.young, seed=self.seed)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (used by the store and the digest)."""
        return {
            "benchmark": self.benchmark,
            "gc": self.gc,
            "heap": self.heap,
            "young": self.young,
            "seed": self.seed,
            "iterations": self.iterations,
            "system_gc": self.system_gc,
            "tlab_enabled": self.tlab_enabled,
            "overrides": [[k, _jsonable(v)] for k, v in self.overrides],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CellSpec":
        """Inverse of :meth:`to_dict` (overrides come back JSON-shaped)."""
        return cls(
            benchmark=d["benchmark"], gc=d["gc"], heap=d["heap"],
            young=d["young"], seed=d["seed"], iterations=d["iterations"],
            system_gc=d["system_gc"], tlab_enabled=d["tlab_enabled"],
            overrides=tuple((k, v) for k, v in d.get("overrides", [])),
        )

    def digest(self) -> str:
        """Content address of this cell: sha256 over the canonical JSON.

        Two cells with the same digest are guaranteed to simulate the
        same run, so the store can serve either's result for both.
        """
        payload = {"v": CELL_SCHEMA_VERSION, "cell": self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def run_cell(cell: CellSpec, trace_dir: Optional[str] = None) -> RunResult:
    """Execute one cell from scratch and return its :class:`RunResult`.

    Pure in the campaign sense: no shared state, no ambient
    configuration — everything the run needs is in *cell*. Simulated-JVM
    crashes (OOM, crashing benchmarks) come back as ``crashed`` results;
    any *raised* exception is an infrastructure failure the runner
    retries and eventually quarantines.

    With *trace_dir*, the run is traced and the telemetry trace written
    to ``<trace_dir>/<digest>.trace.jsonl`` — content-addressed by the
    same digest as the result store, so a cell's trace and its cached
    result always refer to the same simulation. The trace does not enter
    the cell's identity: results stay cache-compatible with untraced
    runs (tracing is observation, not configuration).
    """
    import os

    from ..heap.tlab import TLABConfig
    from ..workloads.dacapo import get_benchmark

    config = JVMConfig(
        gc=cell.gc, heap=cell.heap, young=cell.young, seed=cell.seed,
        tlab=TLABConfig(enabled=cell.tlab_enabled),
        **dict(cell.overrides),
    )
    tracer = None
    if trace_dir is not None:
        from ..telemetry import Tracer

        tracer = Tracer(meta={"benchmark": cell.benchmark,
                              "cell_digest": cell.digest()})
    jvm = JVM(config, tracer=tracer)
    result = jvm.run(get_benchmark(cell.benchmark),
                     iterations=cell.iterations, system_gc=cell.system_gc)
    if tracer is not None:
        from ..telemetry import write_trace

        os.makedirs(trace_dir, exist_ok=True)
        write_trace(tracer, os.path.join(
            trace_dir, f"{cell.digest()}.trace.jsonl"))
    return result


# ----------------------------------------------------------------------
# RunResult <-> JSON codecs
# ----------------------------------------------------------------------

# The central machine registry: every named topology (the paper pair
# plus the asymmetric presets) decodes back to its exact instance.
_TOPOLOGIES = TOPOLOGIES


def _jsonable(value):
    """Best-effort JSON-safe projection of *value* (repr as last resort)."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return repr(value)


def _encode_config(config: JVMConfig) -> Dict[str, object]:
    out = {
        "gc": config.gc.value,
        "heap": config.heap_bytes,
        "young": float(config.young) if config.young is not None else None,
        "survivor_ratio": config.survivor_ratio,
        "tlab_enabled": config.tlab.enabled,
        "tlab_size": config.tlab.size,
        "gc_threads": config.gc_threads,
        "pause_target": config.pause_target,
        "n_threads": config.n_threads,
        "seed": config.seed,
        "topology": config.topology.name,
        "misc_safepoints": config.misc_safepoints,
        "misc_safepoint_interval": config.misc_safepoint_interval,
    }
    # Emitted only when set, so every record written before the field
    # existed (and every legacy-collector record) keeps its exact bytes.
    if config.remset_fidelity:
        out["remset_fidelity"] = True
    if config.gc_placement:
        out["gc_placement"] = config.gc_placement
    return out


def _decode_config(d: Dict[str, object]) -> JVMConfig:
    from ..heap.tlab import TLABConfig

    kw = dict(
        gc=d["gc"], heap=d["heap"], young=d["young"],
        survivor_ratio=d["survivor_ratio"],
        tlab=TLABConfig(enabled=d["tlab_enabled"], size=d["tlab_size"]),
        gc_threads=d["gc_threads"], pause_target=d["pause_target"],
        n_threads=d["n_threads"], seed=d["seed"],
        misc_safepoints=d["misc_safepoints"],
        misc_safepoint_interval=d["misc_safepoint_interval"],
        remset_fidelity=d.get("remset_fidelity", False),
        gc_placement=d.get("gc_placement", ""),
    )
    topology = _TOPOLOGIES.get(d["topology"])
    if topology is not None:
        kw["topology"] = topology
    return JVMConfig(**kw)


def encode_run(result: RunResult) -> Dict[str, object]:
    """Serialize a :class:`RunResult` to a JSON-safe dict, losslessly for
    everything :class:`~repro.studies.GridResult` consumes (full pause
    log included; ``extras`` values that are not JSON-representable are
    projected through ``repr``)."""
    return {
        "workload": result.workload,
        "config": _encode_config(result.config),
        "execution_time": result.execution_time,
        "iteration_times": [float(t) for t in result.iteration_times],
        "allocated_bytes": float(result.allocated_bytes),
        "alloc_overhead_time": float(result.alloc_overhead_time),
        "crashed": result.crashed,
        "crash_reason": result.crash_reason,
        "extras": {k: _jsonable(v) for k, v in sorted(result.extras.items())},
        "gc_log": {
            "pauses": [
                [p.start, p.duration, p.kind, p.cause, p.collector,
                 p.heap_used_before, p.heap_used_after, p.promoted]
                for p in result.gc_log.pauses
            ],
            "concurrent": [
                [c.start, c.duration, c.phase, c.collector]
                for c in result.gc_log.concurrent
            ],
        },
    }


def decode_run(d: Dict[str, object]) -> RunResult:
    """Inverse of :func:`encode_run`."""
    log = GCLog(
        pauses=[
            PauseRecord(start=p[0], duration=p[1], kind=p[2], cause=p[3],
                        collector=p[4], heap_used_before=p[5],
                        heap_used_after=p[6], promoted=p[7])
            for p in d["gc_log"]["pauses"]
        ],
        concurrent=[
            ConcurrentRecord(start=c[0], duration=c[1], phase=c[2], collector=c[3])
            for c in d["gc_log"]["concurrent"]
        ],
    )
    return RunResult(
        workload=d["workload"],
        config=_decode_config(d["config"]),
        execution_time=d["execution_time"],
        gc_log=log,
        iteration_times=list(d["iteration_times"]),
        allocated_bytes=d["allocated_bytes"],
        alloc_overhead_time=d["alloc_overhead_time"],
        extras=dict(d["extras"]),
        crashed=d["crashed"],
        crash_reason=d["crash_reason"],
    )
