"""Shared progress reporting for long sweeps (``--progress``).

Used by ``repro-campaign`` (cells done / cached / failed plus ETA) and
``repro-dacapo`` (iterations done), replacing ad-hoc ``progress``
callbacks with one renderer.

Determinism note: the simulator itself never reads wall-clock time
(lint rule SL001). The reporter's ETA is the one place in the tree where
wall time is *useful* — and it is strictly observational, written to
stderr, never into results. The clock is therefore injected:
``time.perf_counter`` is referenced once below as the default, and tests
substitute a fake clock, so no simulation path ever calls it.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

#: Default clock (referenced, not called, at import time; the reporter is
#: the only wall-clock consumer in the tree and sits outside all
#: simulation and result paths).
WALL_CLOCK: Callable[[], float] = time.perf_counter


class ProgressReporter:
    """Counts work units and renders ``done/total`` lines with an ETA.

    One instance per sweep; call :meth:`advance` once per finished unit
    (``cached=True`` for cache hits, ``failed=True`` for quarantined
    cells), then :meth:`finish`. Rendering goes to *stream* (default
    stderr) using carriage-return refresh on TTYs and one line per update
    otherwise.
    """

    def __init__(self, total: int, *, label: str = "cells",
                 stream: Optional[TextIO] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.total = max(0, int(total))
        self.label = label
        self.done = 0
        self.cached = 0
        self.failed = 0
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock if clock is not None else WALL_CLOCK
        self._started_at: Optional[float] = None
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Mark the sweep start (implicit on the first :meth:`advance`)."""
        if self._started_at is None:
            self._started_at = self._clock()
            self._emit()

    def advance(self, *, cached: bool = False, failed: bool = False) -> None:
        """Record one finished unit and refresh the display."""
        self.start()
        self.done += 1
        if cached:
            self.cached += 1
        if failed:
            self.failed += 1
        self._emit()

    def finish(self) -> None:
        """Final refresh plus a newline (leaves the summary visible)."""
        self.start()
        self._emit(final=True)

    # -- rendering ------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Units not yet finished."""
        return max(0, self.total - self.done)

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to completion, or None before any unit
        finished (cached units count: they are genuinely done)."""
        if self._started_at is None or self.done == 0 or self.remaining == 0:
            return None
        elapsed = self._clock() - self._started_at
        if elapsed <= 0:
            return None
        return self.remaining * (elapsed / self.done)

    def line(self) -> str:
        """The current progress line."""
        parts = [f"{self.label} {self.done}/{self.total}"]
        detail = []
        if self.cached:
            detail.append(f"{self.cached} cached")
        if self.failed:
            detail.append(f"{self.failed} failed")
        if detail:
            parts.append(f"({', '.join(detail)})")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {eta:.1f}s")
        return " ".join(parts)

    def _emit(self, final: bool = False) -> None:
        if self._tty:
            self._stream.write("\r" + self.line() + ("\n" if final else ""))
        else:
            self._stream.write(self.line() + "\n")
        self._stream.flush()
