"""Experiment-campaign layer: parallel, cached, resumable grid sweeps.

Every artefact in EXPERIMENTS.md is an experiment grid ({benchmark} x
{gc} x {heap} x {young} x {seed}); :mod:`repro.studies` runs one grid
strictly serially and in-process. A *campaign* names one or more grids
and runs their cells through a pluggable executor (serial, or a
``ProcessPoolExecutor`` fan-out across cores) with a content-addressed
on-disk :class:`ResultStore`, so that

* re-running a campaign skips every already-computed cell (cache hits),
* an interrupted sweep (``Ctrl-C``, ``kill``, OOM-killer) loses nothing —
  completed cells are flushed to disk as they finish and ``resume``
  simply runs again,
* results are bit-identical regardless of executor choice or worker
  count: each cell derives its RNG streams from its own coordinates via
  :func:`repro.seeding.rng_for`, never from execution order.

The package splits into focused modules:

========================  ==============================================
:mod:`~repro.campaign.spec`       ``CampaignSpec`` — named set of grids
:mod:`~repro.campaign.cells`      pure picklable ``run_cell`` + codecs
:mod:`~repro.campaign.executors`  serial / process executors
:mod:`~repro.campaign.store`      content-addressed JSONL result store
:mod:`~repro.campaign.runner`     orchestration, retries, quarantine
:mod:`~repro.campaign.progress`   shared progress reporter (done/cached/
                                  failed, ETA)
:mod:`~repro.campaign.cli`        the ``repro-campaign`` command
========================  ==============================================
"""

from .cells import CellSpec, decode_run, encode_run, run_cell
from .executors import (
    CellFailure,
    ProcessExecutor,
    SerialExecutor,
    default_workers,
    get_executor,
)
from .progress import ProgressReporter
from .runner import CampaignResult, CampaignStats, run_campaign
from .spec import CampaignSpec
from .store import MergeStats, ResultStore, merge_stores, store_status

__all__ = [
    "store_status",
    "MergeStats",
    "merge_stores",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "CellFailure",
    "CellSpec",
    "ProcessExecutor",
    "ProgressReporter",
    "ResultStore",
    "SerialExecutor",
    "decode_run",
    "default_workers",
    "encode_run",
    "get_executor",
    "run_campaign",
    "run_cell",
]
