"""``python -m repro.campaign`` — same as the ``repro-campaign`` script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
