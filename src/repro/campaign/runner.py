"""Campaign orchestration: cache, execute, retry, quarantine, assemble.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into per-
grid :class:`~repro.studies.GridResult`s:

1. **Cache pass** — every cell's content digest is looked up in the
   :class:`~repro.campaign.store.ResultStore`; hits are decoded and never
   re-simulated.
2. **Execute** — misses fan out through the chosen executor. Completed
   cells are flushed to the store *as they arrive* (fsync per record), so
   interruption loses at most in-flight cells.
3. **Retry & quarantine** — cells whose *worker* failed (raised, timed
   out, or died — distinct from simulated-JVM crashes, which are ordinary
   ``crashed`` results) are retried up to ``retries`` times, then
   quarantined: recorded as failures in the store, excluded from the
   ``GridResult``, reported in :class:`CampaignStats`.

Determinism: cells are keyed and seeded by their own coordinates, and
results are assembled in spec order, so serial and N-worker campaigns
produce identical ``GridResult``s (asserted in ``tests/test_campaign.py``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..errors import ConfigError
from ..jvm import RunResult
from ..studies import GridResult
from .cells import CellSpec, run_cell
from .executors import CellFailure, get_executor
from .progress import ProgressReporter
from .spec import CampaignSpec
from .store import ResultStore


@dataclass
class CampaignStats:
    """Bookkeeping for one campaign run."""

    total: int = 0          #: cells in the spec (duplicates counted once)
    simulated: int = 0      #: cells actually executed this run
    cached: int = 0         #: cells served from the store
    retried: int = 0        #: retry attempts spent on failing cells
    quarantined: int = 0    #: cells given up on after retries

    @property
    def completed(self) -> int:
        """Cells with a usable result."""
        return self.simulated + self.cached

    def summary(self) -> str:
        """One-line, grep-stable summary (CI asserts on this format)."""
        return (
            f"cells: simulated {self.simulated}, cached {self.cached}/{self.total}, "
            f"retried {self.retried}, quarantined {self.quarantined}"
        )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    grids: List[GridResult]
    stats: CampaignStats
    quarantined: List[CellFailure] = field(default_factory=list)

    def grid(self, index: int = 0) -> GridResult:
        """The *index*-th grid's result."""
        return self.grids[index]

    def to_rows(self) -> List[List]:
        """All grids' rows, concatenated in grid order."""
        rows: List[List] = []
        for grid in self.grids:
            rows.extend(grid.to_rows())
        return rows

    def to_csv(self, path) -> None:
        """Write every grid's rows as one CSV."""
        import csv

        from ..studies import GRID_CSV_COLUMNS

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(GRID_CSV_COLUMNS)
            writer.writerows(self.to_rows())


def run_campaign(spec: CampaignSpec, *,
                 store: Optional[Union[ResultStore, str]] = None,
                 executor: Union[str, object] = "serial",
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 reporter: Optional[ProgressReporter] = None,
                 trace_dir: Optional[str] = None) -> CampaignResult:
    """Run (or resume) *spec* and return its :class:`CampaignResult`.

    *store* may be a :class:`ResultStore`, a directory path, or None for
    a purely in-memory run (no caching, no resumability). *executor* is
    an executor name (``serial``/``process``) or a ready instance;
    *workers* sizes the process pool (default: one per core). With
    *trace_dir*, every simulated cell also writes a telemetry trace to
    ``<trace_dir>/<digest>.trace.jsonl`` (cache hits don't re-trace —
    re-run after ``clean`` to trace everything).
    """
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = ResultStore(store)
    if isinstance(executor, str):
        executor = get_executor(executor, workers=workers)

    per_grid_cells = spec.cell_specs()
    # Unique cells in first-appearance order: duplicated coordinates
    # (across grids, or within one) simulate once and fan back out.
    unique: Dict[str, CellSpec] = {}
    for cells in per_grid_cells:
        for cell in cells:
            unique.setdefault(cell.digest(), cell)

    stats = CampaignStats(total=len(unique))
    if reporter is not None:
        reporter.total = stats.total
        reporter.start()
    if store is not None:
        store.register_campaign({
            "name": spec.name,
            "digest": spec.digest(),
            "spec": spec.to_dict(),
            "cells": stats.total,
        })

    # -- cache pass -----------------------------------------------------
    results: Dict[str, RunResult] = {}
    pending: List[CellSpec] = []
    for digest, cell in unique.items():
        hit = store.get_run(digest) if store is not None else None
        if hit is not None:
            results[digest] = hit
            stats.cached += 1
            if reporter is not None:
                reporter.advance(cached=True)
        else:
            pending.append(cell)

    # -- execute with bounded retries ----------------------------------
    if trace_dir is not None:
        # functools.partial keeps the cell function picklable for the
        # process executor (a lambda would not ship to workers).
        cell_fn = functools.partial(run_cell, trace_dir=trace_dir)
    else:
        cell_fn = run_cell
    quarantined: List[CellFailure] = []
    attempt = 0
    while pending:
        failures: List[CellFailure] = []
        for cell, outcome in executor.run_cells(pending, cell_fn, timeout=timeout):
            if isinstance(outcome, CellFailure):
                failures.append(outcome)
                continue
            digest = cell.digest()
            results[digest] = outcome
            stats.simulated += 1
            if store is not None:
                store.record_ok(cell, outcome)
            if reporter is not None:
                reporter.advance()
        if not failures:
            break
        if attempt >= retries:
            for failure in failures:
                quarantined.append(failure)
                stats.quarantined += 1
                if store is not None:
                    store.record_cell_failure(failure, attempts=attempt + 1)
                if reporter is not None:
                    reporter.advance(failed=True)
            break
        stats.retried += len(failures)
        pending = [f.cell for f in failures]
        attempt += 1
    if reporter is not None:
        reporter.finish()

    # -- assemble per-grid results in spec order ------------------------
    grids: List[GridResult] = []
    for grid_spec, cells in zip(spec.grids, per_grid_cells):
        grid = GridResult(spec=grid_spec)
        for cell in cells:
            run = results.get(cell.digest())
            if run is not None:
                grid.runs[cell.key()] = run
        grids.append(grid)
    return CampaignResult(spec=spec, grids=grids, stats=stats,
                          quarantined=quarantined)
