"""``repro.serve`` — the async GC-experiment service (DESIGN.md §13).

Turns the campaign machinery into a long-running service: simulation
jobs arrive as newline-delimited JSON over a Unix socket or TCP, are
validated into canonical :class:`~repro.campaign.cells.CellSpec` cells,
deduplicated by content digest, served from the shared
:class:`~repro.campaign.store.ResultStore` cache when possible, and
otherwise executed on a supervised worker pool with retry-then-
quarantine :class:`~repro.campaign.executors.CellFailure` semantics.

* :mod:`~repro.serve.protocol` — the wire protocol (one JSON object per
  line) and its validation;
* :mod:`~repro.serve.service` — :class:`ExperimentService`: admission
  control, coalescing, caching, supervision, drain;
* :mod:`~repro.serve.client` — async pipelining client;
* :mod:`~repro.serve.loadgen` — open-loop YCSB-style load generator
  with Fig. 5-style client-latency band reporting;
* :mod:`~repro.serve.cli` — the ``repro-serve`` command.
"""

from .client import ServiceClient
from .loadgen import LoadConfig, LoadReport, run_load
from .protocol import MAX_LINE_BYTES, PROTOCOL_VERSION
from .service import ExperimentService, ServiceConfig

__all__ = [
    "ExperimentService", "ServiceConfig", "ServiceClient",
    "LoadConfig", "LoadReport", "run_load",
    "MAX_LINE_BYTES", "PROTOCOL_VERSION",
]
