"""``repro-serve`` — run, query and load-test the experiment service.

Subcommands::

    repro-serve serve  --socket /tmp/repro.sock --store results/
    repro-serve submit --socket /tmp/repro.sock xalan --gc G1 --heap 16g
    repro-serve status --socket /tmp/repro.sock [--json]
    repro-serve load   --socket /tmp/repro.sock --clients 4 --rps 50 --ops 100
    repro-serve events --socket /tmp/repro.sock
    repro-serve drain  --socket /tmp/repro.sock

The service listens on a Unix socket (``--socket``) or TCP
(``--host``/``--port``); every client subcommand takes the same
connection flags.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..analysis.report import render_table
from ..errors import ConfigError, ProtocolError
from .client import ServiceClient
from .loadgen import LoadConfig, run_load
from .service import ExperimentService, ServiceConfig


def _conn_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="Unix socket path (preferred locally)")
    parser.add_argument("--host", default="127.0.0.1", help="TCP host")
    parser.add_argument("--port", type=int, default=0, help="TCP port")


def _check_conn(args) -> None:
    if not args.socket and not args.port:
        raise ConfigError("need --socket PATH or --port N to reach a service")


def _job_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gc", default="ParallelOld",
                        help="collector: Serial|ParNew|Parallel|ParallelOld|CMS|G1")
    parser.add_argument("--heap", default="1g", help="heap size (-Xmx/-Xms)")
    parser.add_argument("--young", default=None, help="young size (-Xmn)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("-n", "--iterations", type=int, default=10)
    parser.add_argument("--no-system-gc", action="store_true",
                        help="disable the forced full GC between iterations")
    parser.add_argument("--no-tlab", action="store_true", help="disable TLABs")


def _job_from_args(args, benchmark: str, seed: Optional[int] = None) -> dict:
    job = {
        "benchmark": benchmark,
        "gc": args.gc,
        "heap": args.heap,
        "seed": args.seed if seed is None else seed,
        "iterations": args.iterations,
        "system_gc": not args.no_system_gc,
        "tlab_enabled": not args.no_tlab,
    }
    if args.young:
        job["young"] = args.young
    return job


def _connect(args) -> "ServiceClient":
    return ServiceClient.connect(args.socket, args.host, args.port)


# -- serve ---------------------------------------------------------------


def serve_cmd(args) -> int:
    config = ServiceConfig(
        store=args.store, socket_path=args.socket,
        host=args.host, port=args.port,
        queue_limit=args.queue_limit, workers=args.workers,
        executor=args.executor, pool_workers=args.pool_workers,
        timeout=args.timeout, retries=args.retries,
    )

    async def main() -> int:
        service = ExperimentService(config)
        await service.start()
        print(f"repro-serve listening on {service.address} "
              f"(store: {config.store or 'none'}, "
              f"executor: {config.executor}, workers: {config.workers}, "
              f"queue limit: {config.queue_limit})", flush=True)
        code = await service.run()
        print("repro-serve drained, exiting", flush=True)
        return code

    return asyncio.run(main())


# -- submit --------------------------------------------------------------


def submit_cmd(args) -> int:
    _check_conn(args)
    job = _job_from_args(args, args.benchmark)

    async def main() -> int:
        client = await _connect(args)
        try:
            resp = await client.submit(job, timeout=args.wait)
        finally:
            await client.close()
        kind = resp.get("type")
        if kind == "result":
            run = resp["run"]
            meta = resp.get("meta", {})
            source = "cache" if resp.get("cached") else (
                f"simulated in {meta.get('exec_s', 0.0):.3f}s "
                f"(attempt {meta.get('attempts')}, "
                f"queued {meta.get('queued_s', 0.0):.3f}s)")
            print(f"result {resp['digest'][:12]} [{source}]")
            # encode_run pauses: [start, duration, kind, cause, ...]
            pauses = run.get("gc_log", {}).get("pauses", [])
            full = sum(1 for p in pauses if p[2] == "full")
            print(render_table(
                ["benchmark", "gc", "exec (s)", "#pauses(full)",
                 "total pause (s)", "crashed"],
                [[args.benchmark, args.gc,
                  round(run.get("execution_time", 0.0), 3),
                  f"{len(pauses)}({full})",
                  round(sum(p[1] for p in pauses), 3),
                  bool(run.get("crashed"))]],
            ))
            if args.out:
                with open(args.out, "w") as fh:
                    json.dump(run, fh, sort_keys=True, indent=2)
                print(f"run written to {args.out}")
            return 1 if run.get("crashed") else 0
        if kind == "failed":
            failure = resp.get("failure", {})
            print(f"failed {resp.get('digest', '')[:12]}: "
                  f"[{failure.get('kind')}] {failure.get('error')} "
                  f"({failure.get('attempts')} attempts)", file=sys.stderr)
            return 1
        print(f"{kind} ({resp.get('code')}): {resp.get('reason')}",
              file=sys.stderr)
        return 1

    return asyncio.run(main())


# -- status --------------------------------------------------------------


def status_cmd(args) -> int:
    _check_conn(args)

    async def main() -> dict:
        client = await _connect(args)
        try:
            return await client.status(timeout=30.0)
        finally:
            await client.close()

    stats = asyncio.run(main())
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    queue = stats.get("queue", {})
    workers = stats.get("workers", {})
    cache = stats.get("cache", {})
    pauses = stats.get("pauses", {})
    hit_rate = cache.get("hit_rate")
    rows = [
        ("draining", stats.get("draining")),
        ("uptime (s)", round(stats.get("uptime_s", 0.0), 1)),
        ("queue depth / limit", f"{queue.get('depth')} / {queue.get('limit')}"),
        ("in flight", queue.get("inflight")),
        ("workers alive / configured",
         f"{workers.get('alive')} / {workers.get('configured')} "
         f"({workers.get('executor')})"),
        ("pools recycled", workers.get("pools_recycled")),
        ("cache hits / misses", f"{cache.get('hits')} / {cache.get('misses')}"),
        ("cache hit rate",
         "n/a" if hit_rate is None else f"{100 * hit_rate:.1f}%"),
        ("pauses observed", pauses.get("count")),
        ("subscribers", stats.get("subscribers")),
    ]
    if pauses.get("count"):
        rows.append(("pause p50 / p99 / max (s)",
                     f"{pauses.get('p50', 0.0):.4f} / "
                     f"{pauses.get('p99', 0.0):.4f} / "
                     f"{pauses.get('max', 0.0):.4f}"))
    store = stats.get("store")
    if store:
        rows.append(("store records (ok/failed)",
                     f"{store.get('records')} "
                     f"({store.get('ok')}/{store.get('failed')})"))
    print(render_table(["metric", "value"], rows, title="repro-serve status"))
    return 0


# -- drain ---------------------------------------------------------------


def drain_cmd(args) -> int:
    _check_conn(args)

    async def main() -> dict:
        client = await _connect(args)
        try:
            return await client.drain(timeout=args.wait)
        finally:
            await client.close()

    msg = asyncio.run(main())
    stats = msg.get("stats", {})
    cache = stats.get("cache", {})
    quarantined = stats.get("metrics", {}).get(
        "counters", {}).get("jobs.quarantined", 0)
    print(f"drained: {cache.get('misses', 0)} simulated, "
          f"{cache.get('hits', 0)} cache hits, {quarantined} quarantined")
    return 0


# -- events --------------------------------------------------------------


def events_cmd(args) -> int:
    _check_conn(args)

    async def main() -> int:
        client = await _connect(args)
        try:
            await client.subscribe()
            count = 0
            async for event in client.events():
                print(json.dumps(event, sort_keys=True), flush=True)
                count += 1
                if args.count and count >= args.count:
                    break
                if event.get("kind") == "drained":
                    break
            return 0
        finally:
            await client.close()

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


# -- load ----------------------------------------------------------------


def load_cmd(args) -> int:
    _check_conn(args)
    templates = [
        _job_from_args(args, benchmark, seed=args.seed + d)
        for benchmark in args.benchmark
        for d in range(args.distinct)
    ]
    config = LoadConfig(
        templates=templates, clients=args.clients, rps=args.rps,
        ops=args.ops, seed=args.seed, socket_path=args.socket,
        host=args.host, port=args.port, timeout=args.wait,
    )
    report = asyncio.run(run_load(config))
    print(report.render())
    return 1 if (report.errors or report.failed) else 0


# -- parser --------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Async GC-experiment service: admission control, "
                    "content-addressed result caching, live telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the experiment service")
    _conn_args(p)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="ResultStore directory (shared with repro-campaign)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="admission bound; submits beyond it get a 429")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job slots")
    p.add_argument("--executor", choices=["serial", "process"],
                   default="serial", help="execution backend")
    p.add_argument("--pool-workers", type=int, default=None,
                   help="process-pool size (process executor)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock budget (seconds)")
    p.add_argument("--retries", type=int, default=1,
                   help="retries before a cell is quarantined")
    p.set_defaults(fn=serve_cmd)

    p = sub.add_parser("submit", help="submit one job and wait")
    _conn_args(p)
    p.add_argument("benchmark")
    _job_args(p)
    p.add_argument("--wait", type=float, default=600.0,
                   help="client-side response timeout (seconds)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the RunResult JSON to a file")
    p.set_defaults(fn=submit_cmd)

    p = sub.add_parser("status", help="show service stats")
    _conn_args(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable stats snapshot")
    p.set_defaults(fn=status_cmd)

    p = sub.add_parser("drain", help="drain the service and wait")
    _conn_args(p)
    p.add_argument("--wait", type=float, default=600.0,
                   help="how long to wait for the drain (seconds)")
    p.set_defaults(fn=drain_cmd)

    p = sub.add_parser("events", help="stream live service events")
    _conn_args(p)
    p.add_argument("--count", type=int, default=0,
                   help="stop after N events (0 = until drained/^C)")
    p.set_defaults(fn=events_cmd)

    p = sub.add_parser("load", help="synthetic open-loop load generator")
    _conn_args(p)
    p.add_argument("--benchmark", action="append", default=None,
                   help="benchmark(s) in the mix (repeatable; "
                        "default: xalan lusearch)")
    _job_args(p)
    p.add_argument("--clients", type=int, default=4,
                   help="persistent client connections")
    p.add_argument("--rps", type=float, default=50.0,
                   help="open-loop arrival rate (req/s)")
    p.add_argument("--ops", type=int, default=100, help="total requests")
    p.add_argument("--distinct", type=int, default=4,
                   help="distinct seeds per benchmark in the mix")
    p.add_argument("--wait", type=float, default=600.0,
                   help="per-request client timeout (seconds)")
    p.set_defaults(fn=load_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "load" and not args.benchmark:
        args.benchmark = ["xalan", "lusearch"]
    try:
        return args.fn(args)
    except (ConfigError, ProtocolError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`); not a
        # service failure — mirror the conventional silent exit.
        return 0
    except (ConnectionError, FileNotFoundError) as exc:
        print(f"repro-serve: cannot reach service: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
