"""The asyncio GC-experiment service behind ``repro-serve``.

Architecture (DESIGN.md §13)::

    client ──ndjson──▶ connection handler ──▶ admission ──▶ queue
                                              │   │             │
                                  cache hit ◀─┘   └─ reject      ▼
                                 (ResultStore)    (429/503)   worker tasks
                                                              │  offload
                                                              ▼  thread
                                                     executor.run_one
                                                     (serial | supervised
                                                      process pool)

* **Admission** is explicit: a submit is answered with ``queued``,
  a cache-served ``result``, or a ``rejected`` (429 when the bounded
  queue is full, 503 while draining) — never silence, never a hang.
* **Dedup/coalescing**: submissions whose cell digest matches an
  in-flight job attach to it instead of re-queueing; identical requests
  cost one simulation no matter how many clients ask.
* **Caching**: results are read from and written to the same
  content-addressed :class:`~repro.campaign.store.ResultStore` the
  campaign runner uses (appends run under the store's advisory file
  lock), so the service and ``repro-campaign`` share one cache.
* **Supervision**: worker failures (:class:`CellFailure` — crash,
  timeout, broken pool) are retried up to ``retries`` times, then the
  cell is quarantined exactly as the campaign runner would; a dead
  process pool is recycled by the executor, never fatal to the service.
* **Drain**: SIGTERM (or a ``drain`` request) stops admission, lets
  queued and in-flight jobs finish, then exits cleanly.

Determinism: simulation happens in :func:`repro.campaign.cells.run_cell`
exactly as on the campaign path; the service adds *no* configuration of
its own to a cell, so a served ``run`` payload is byte-identical (under
canonical JSON dumping) to the campaign's for the same job. Wall-clock
readings exist only in service metadata (``meta``, stats, events) and
come from an injected clock, keeping simulation paths SL001-clean.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..campaign.cells import CellSpec, encode_run, run_cell
from ..campaign.executors import CellFailure, get_executor
from ..campaign.store import ResultStore, store_status
from ..energy.model import ENERGY_COUNTERS, energy_section
from ..errors import ConfigError, ProtocolError
from ..telemetry.metrics import MetricsRegistry
from . import protocol
from .protocol import PROTOCOL_VERSION

#: Default clock (referenced, not called, at import time — the service is
#: observational infrastructure; simulated results never see it).
WALL_CLOCK: Callable[[], float] = time.monotonic


@dataclass
class ServiceConfig:
    """Everything one :class:`ExperimentService` instance needs."""

    store: Optional[str] = None         #: ResultStore directory (None = no cache)
    socket_path: Optional[str] = None   #: Unix socket (preferred for local use)
    host: str = "127.0.0.1"             #: TCP bind host (when no socket_path)
    port: int = 0                       #: TCP port (0 = ephemeral)
    queue_limit: int = 64               #: admission bound (429 beyond it)
    workers: int = 2                    #: concurrent in-service job slots
    executor: str = "serial"            #: "serial" | "process"
    pool_workers: Optional[int] = None  #: process-pool size (process executor)
    timeout: Optional[float] = None     #: per-job wall-clock budget (seconds)
    retries: int = 1                    #: retries before quarantine
    max_line_bytes: int = protocol.MAX_LINE_BYTES

    def __post_init__(self):
        if self.queue_limit < 1:
            raise ConfigError("queue_limit must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")


class _Connection:
    """One client connection: serialized writes, tolerant of disconnects."""

    __slots__ = ("writer", "_lock", "closed")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self._lock = asyncio.Lock()
        self.closed = False

    async def send(self, msg: Dict[str, object]) -> bool:
        """Write one message; False (never an exception) if the client
        has gone away — a subscriber hanging up mid-stream must not take
        a worker or the server loop down with it."""
        if self.closed:
            return False
        async with self._lock:
            if self.closed:
                return False
            try:
                self.writer.write(protocol.encode(msg))
                await self.writer.drain()
                return True
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True
                return False

    def close(self) -> None:
        self.closed = True
        with contextlib.suppress(Exception):
            self.writer.close()


class _Job:
    """One admitted cell: its waiters and its service-side bookkeeping."""

    __slots__ = ("cell", "digest", "attempts", "futures", "enqueued",
                 "started", "cancelled")

    def __init__(self, cell: CellSpec, digest: str, enqueued: float):
        self.cell = cell
        self.digest = digest
        self.attempts = 0
        self.futures: List[asyncio.Future] = []
        self.enqueued = enqueued
        self.started: Optional[float] = None
        self.cancelled = False


class ExperimentService:
    """Async experiment service: admission, dedup, cache, supervision.

    *cell_fn* defaults to the campaign's :func:`run_cell`; tests inject
    doctored functions (slow, crashing, worker-killing) to exercise the
    robustness paths without faking simulator behaviour.
    """

    def __init__(self, config: ServiceConfig, *,
                 cell_fn: Callable[[CellSpec], object] = run_cell,
                 clock: Optional[Callable[[], float]] = None):
        self.config = config
        self._cell_fn = cell_fn
        self._clock = clock if clock is not None else WALL_CLOCK
        self.store = ResultStore(config.store) if config.store else None
        self.executor = get_executor(config.executor,
                                     workers=config.pool_workers)
        self.metrics = MetricsRegistry()
        self.address: Optional[object] = None

        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        self._inflight: Dict[str, _Job] = {}
        self._conns: Set[_Connection] = set()
        self._subscribers: Set[_Connection] = set()
        self._workers: List[asyncio.Task] = []
        self._tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._offload: Optional[ThreadPoolExecutor] = None
        self._draining = False
        self._idle = asyncio.Event()
        self._stopped = asyncio.Event()
        self._t0 = self._clock()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and spawn the worker tasks."""
        loop = asyncio.get_running_loop()
        if hasattr(self.executor, "open"):
            self.executor.open()
        self._offload = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-exec")
        self._workers = [loop.create_task(self._worker_loop())
                         for _ in range(self.config.workers)]
        limit = self.config.max_line_bytes + 1024
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path, limit=limit)
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port, limit=limit)
            self.address = self._server.sockets[0].getsockname()[:2]
        self._t0 = self._clock()

    async def run(self, *, handle_signals: bool = True) -> int:
        """Serve until drained (SIGTERM/SIGINT or a ``drain`` request).

        Returns a process exit code: 0 for a clean drain, 1 when any
        cell was quarantined while serving.
        """
        await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig, lambda: self._spawn(self.drain()))
        await self._stopped.wait()
        await self.close()
        return 1 if self.metrics.counter("jobs.quarantined").value else 0

    async def drain(self) -> Dict[str, object]:
        """Stop admission, wait for queued + in-flight jobs, then stop.

        Idempotent; returns the final stats snapshot.
        """
        if not self._draining:
            self._draining = True
            self._publish("draining")
            self._check_idle()
        await self._idle.wait()
        stats = await self.stats_async()
        self._publish("drained")
        self._stopped.set()
        return stats

    async def close(self) -> None:
        """Tear everything down (no draining — see :meth:`drain`)."""
        for task in self._workers + list(self._tasks):
            task.cancel()
        for task in self._workers + list(self._tasks):
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._workers, self._tasks = [], set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()
        self._subscribers.clear()
        if self._offload is not None:
            self._offload.shutdown(wait=False)
            self._offload = None
        if hasattr(self.executor, "close"):
            self.executor.close()
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
        self._stopped.set()

    # -- stats / events ----------------------------------------------------

    async def stats_async(self) -> Dict[str, object]:
        """The status endpoint's snapshot (also the drain report).

        The store section reads the manifest under the advisory flock —
        a blocking syscall — so it is gathered on the offload pool, not
        the event-loop thread.
        """
        store = None
        if self.store is not None:
            loop = asyncio.get_running_loop()
            if self._offload is not None:
                store = await loop.run_in_executor(
                    self._offload, store_status, self.store)
            else:       # not started yet (direct API use): borrow a thread
                store = await asyncio.to_thread(store_status, self.store)
        return self.stats(store=store)

    def stats(self, *, store: Optional[Dict[str, object]] = None,
              ) -> Dict[str, object]:
        """Synchronous snapshot; *store* is the pre-gathered store
        section (:func:`~repro.campaign.store.store_status` output) —
        pass it explicitly, since gathering it here would block."""
        m = self.metrics
        hits = m.counter("cache.hits").value
        simulated = m.counter("jobs.simulated").value
        served = hits + simulated
        pauses = m.histogram("gc.pause_seconds")
        pause_summary: Dict[str, object] = {"count": pauses.total_count}
        if pauses.total_count:
            pause_summary.update(pauses.percentiles((50.0, 99.0, 99.9)))
            pause_summary["max"] = pauses.max_raw or 0.0
        # Full histogram encoding rides along so an aggregator (the
        # cluster coordinator's scatter-gather status) can exactly-merge
        # per-node percentiles instead of averaging summaries.
        pause_summary["hist"] = pauses.to_dict()
        energy = energy_section(
            {name: m.counter(name).value for name in ENERGY_COUNTERS})
        return {
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "uptime_s": round(self._clock() - self._t0, 6),
            "queue": {
                "depth": self._queue.qsize(),
                "limit": self.config.queue_limit,
                "inflight": len(self._inflight),
            },
            "workers": {
                "configured": self.config.workers,
                "alive": sum(1 for t in self._workers if not t.done()),
                "executor": self.executor.name,
                "pools_recycled": getattr(self.executor, "pools_recycled", 0),
            },
            "cache": {
                "hits": hits,
                "misses": simulated,
                "hit_rate": round(hits / served, 6) if served else None,
            },
            "pauses": pause_summary,
            "energy": energy,
            "subscribers": len(self._subscribers),
            "metrics": m.to_dict(),
            "store": store,
        }

    def _publish(self, kind: str, **fields) -> None:
        """Fan one lifecycle/GC event out to every subscriber."""
        if not self._subscribers:
            return
        event: Dict[str, object] = {
            "kind": kind, "t": round(self._clock() - self._t0, 6)}
        event.update(fields)
        msg = protocol.event_msg(event)
        for conn in list(self._subscribers):
            if conn.closed:
                self._subscribers.discard(conn)
            else:
                self._spawn(conn.send(msg))

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        self.metrics.counter("connections.opened").inc()
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError:
                    break           # client hung up (possibly mid-line)
                except asyncio.LimitOverrunError:
                    self.metrics.counter("protocol.errors").inc()
                    await conn.send(protocol.error_msg(
                        None, 413,
                        f"line exceeds the {self.config.max_line_bytes}-byte "
                        "limit"))
                    break           # framing is lost; drop the connection
                except (ConnectionError, OSError):
                    break
                if not line.strip():
                    continue
                await self._dispatch(conn, line)
        finally:
            self._conns.discard(conn)
            self._subscribers.discard(conn)
            conn.close()
            self.metrics.counter("connections.closed").inc()

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        rid: Optional[object] = None
        try:
            msg = protocol.decode(line,
                                  max_bytes=self.config.max_line_bytes)
            rid = msg.get("id")
            op, rid = protocol.parse_request(msg)
        except ProtocolError as exc:
            self.metrics.counter("protocol.errors").inc()
            await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
            return
        if op == "ping":
            await conn.send(protocol.pong_msg(rid))
        elif op == "status":
            await conn.send(protocol.stats_msg(rid, await self.stats_async()))
        elif op == "subscribe":
            self._subscribers.add(conn)
            await conn.send(protocol.subscribed_msg(rid))
        elif op == "drain":
            await conn.send(protocol.draining_msg(rid))
            self._spawn(self._drain_and_report(conn, rid))
        elif op == "cancel":
            try:
                digest = protocol.parse_cancel(msg)
            except ProtocolError as exc:
                self.metrics.counter("protocol.errors").inc()
                await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
                return
            await conn.send(protocol.cancelled_msg(
                rid, digest, self._cancel(digest)))
        elif op == "submit":
            await self._handle_submit(conn, rid, msg.get("job"))

    async def _drain_and_report(self, conn: _Connection, rid) -> None:
        stats = await self.drain()
        await conn.send(protocol.drained_msg(rid, stats))

    # -- admission ----------------------------------------------------------

    async def _handle_submit(self, conn: _Connection, rid, job: object) -> None:
        m = self.metrics
        m.counter("jobs.submitted").inc()
        if self._draining:
            m.counter("jobs.rejected").inc()
            await conn.send(protocol.rejected_msg(
                rid, 503, "service is draining"))
            return
        try:
            cell = protocol.job_to_cell(job)
        except ProtocolError as exc:
            m.counter("protocol.errors").inc()
            await conn.send(protocol.error_msg(rid, exc.code, str(exc)))
            return
        digest = cell.digest()

        hit = self.store.get_run(digest) if self.store is not None else None
        if hit is not None:
            m.counter("cache.hits").inc()
            self._observe_pauses(hit)
            meta = {"cached": True, "attempts": 0, "queued_s": 0.0,
                    "exec_s": 0.0, "exec_interval": None}
            self._publish("cache-hit", digest=digest[:12],
                          benchmark=cell.benchmark, gc=cell.gc)
            await conn.send(protocol.result_msg(
                rid, digest, encode_run(hit), cached=True, meta=meta))
            return

        existing = self._inflight.get(digest)
        if existing is not None:
            # Coalesce: one simulation answers every identical submit.
            m.counter("jobs.coalesced").inc()
            future = asyncio.get_running_loop().create_future()
            existing.futures.append(future)
            await conn.send(protocol.queued_msg(
                rid, digest, position=self._queue.qsize()))
            self._spawn(self._await_result(conn, rid, future))
            return

        if self._queue.qsize() >= self.config.queue_limit:
            m.counter("jobs.rejected").inc()
            await conn.send(protocol.rejected_msg(
                rid, 429,
                f"admission queue full ({self.config.queue_limit} jobs)"))
            return

        jobrec = _Job(cell, digest, self._clock())
        future = asyncio.get_running_loop().create_future()
        jobrec.futures.append(future)
        self._inflight[digest] = jobrec
        self._queue.put_nowait(jobrec)
        m.counter("jobs.accepted").inc()
        m.gauge("queue.depth").set(self._queue.qsize())
        self._publish("queued", digest=digest[:12],
                      benchmark=cell.benchmark, gc=cell.gc, seed=cell.seed)
        await conn.send(protocol.queued_msg(
            rid, digest, position=self._queue.qsize()))
        self._spawn(self._await_result(conn, rid, future))

    async def _await_result(self, conn: _Connection, rid,
                            future: asyncio.Future) -> None:
        kind, digest, payload, meta = await future
        if kind == "result":
            await conn.send(protocol.result_msg(
                rid, digest, payload, cached=False, meta=meta))
        elif kind == "cancelled":
            # Every waiter coalesced onto the digest learns the job was
            # withdrawn (cluster steal): resubmitting is the caller's call.
            await conn.send(protocol.cancelled_msg(rid, digest, "cancelled"))
        else:
            await conn.send(protocol.failed_msg(rid, digest, payload,
                                                meta=meta))

    # -- cancellation (the coordinator's steal primitive) -------------------

    def _cancel(self, digest: str) -> str:
        """Withdraw a queued-but-unstarted job; returns the at-most-once
        verdict for :func:`protocol.cancelled_msg` (``cancelled`` only
        when the job never started here and never will)."""
        job = self._inflight.get(digest)
        if job is None:
            return "unknown"
        if job.started is not None or job.cancelled:
            # Started (possibly retried) or already withdrawn: the caller
            # must not schedule it elsewhere.
            return "busy"
        job.cancelled = True           # the worker loop discards it
        self._inflight.pop(digest, None)
        self.metrics.counter("jobs.cancelled").inc()
        self._publish("cancelled", digest=digest[:12],
                      benchmark=job.cell.benchmark, gc=job.cell.gc)
        for future in job.futures:
            if not future.done():
                future.set_result(("cancelled", digest, None, None))
        self._check_idle()
        return "cancelled"

    # -- execution ----------------------------------------------------------

    def _run_one(self, cell: CellSpec):
        """Thread-offloaded: run one cell on the supervised executor."""
        return self.executor.run_one(cell, self._cell_fn,
                                     timeout=self.config.timeout)

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        m = self.metrics
        while True:
            job = await self._queue.get()
            m.gauge("queue.depth").set(self._queue.qsize())
            if job.cancelled:           # withdrawn while queued (steal)
                self._check_idle()
                continue
            job.started = self._clock()
            job.attempts += 1
            self._publish("started", digest=job.digest[:12],
                          benchmark=job.cell.benchmark, gc=job.cell.gc,
                          attempt=job.attempts)
            try:
                outcome = await loop.run_in_executor(
                    self._offload, self._run_one, job.cell)
            except Exception as exc:   # offload infrastructure itself broke
                outcome = CellFailure(cell=job.cell, kind="exception",
                                      error=f"{type(exc).__name__}: {exc}",
                                      exc=exc)
            finished = self._clock()
            if isinstance(outcome, CellFailure):
                if job.attempts <= self.config.retries:
                    m.counter("jobs.retried").inc()
                    self._publish("retrying", digest=job.digest[:12],
                                  failure_kind=outcome.kind,
                                  error=outcome.error, attempt=job.attempts)
                    self._queue.put_nowait(job)
                    continue
                # Store writes take the flock and fsync — off the loop
                # thread; futures/metrics/events stay loop-side.
                if self.store is not None:
                    await loop.run_in_executor(
                        self._offload,
                        functools.partial(self.store.record_cell_failure,
                                          outcome, attempts=job.attempts))
                self._quarantine(job, outcome, finished)
            else:
                if self.store is not None:
                    await loop.run_in_executor(
                        self._offload, self.store.record_ok,
                        job.cell, outcome)
                self._complete(job, outcome, finished)
            self._check_idle()

    def _job_meta(self, job: _Job, finished: float) -> Dict[str, object]:
        started = job.started if job.started is not None else finished
        return {
            "cached": False,
            "attempts": job.attempts,
            "queued_s": round(started - job.enqueued, 6),
            "exec_s": round(finished - started, 6),
            "exec_interval": [round(started - self._t0, 6),
                              round(finished - self._t0, 6)],
        }

    def _complete(self, job: _Job, result, finished: float) -> None:
        """Loop-side completion (the store write already happened on the
        offload thread in :meth:`_worker_loop`)."""
        m = self.metrics
        self._observe_pauses(result)
        meta = self._job_meta(job, finished)
        m.counter("jobs.simulated").inc()
        m.histogram("service.exec_s", unit=1e-6).record(meta["exec_s"])
        m.histogram("service.queued_s", unit=1e-6).record(meta["queued_s"])
        self._inflight.pop(job.digest, None)
        log = result.gc_log
        self._publish("completed", digest=job.digest[:12],
                      benchmark=job.cell.benchmark, gc=job.cell.gc,
                      exec_s=meta["exec_s"], pauses=log.count,
                      full_pauses=log.full_count,
                      max_pause_s=round(log.max_pause, 6),
                      total_pause_s=round(log.total_pause, 6),
                      crashed=result.crashed)
        encoded = encode_run(result)
        for future in job.futures:
            if not future.done():
                future.set_result(("result", job.digest, encoded, meta))

    def _quarantine(self, job: _Job, failure: CellFailure,
                    finished: float) -> None:
        m = self.metrics
        m.counter("jobs.quarantined").inc()
        meta = self._job_meta(job, finished)
        self._inflight.pop(job.digest, None)
        self._publish("quarantined", digest=job.digest[:12],
                      failure_kind=failure.kind, error=failure.error,
                      attempts=job.attempts)
        payload = failure.to_json()
        payload["attempts"] = job.attempts
        for future in job.futures:
            if not future.done():
                future.set_result(("failed", job.digest, payload, meta))

    def _observe_pauses(self, result) -> None:
        """Merge a served run's pause durations into the service-wide
        pause histogram (the status endpoint's P50/P99/P99.9 source)."""
        hist = self.metrics.histogram("gc.pause_seconds")
        for pause in result.gc_log.pauses:
            hist.record(pause.duration)
        self._observe_energy(result)

    def _observe_energy(self, result) -> None:
        """Fold a served run's energy account into the service counters.

        Integer microjoules per phase — counters sum exactly, so the
        cluster coordinator's scatter-gather totals (which add per-node
        counters) fold service energy with the same bit-exactness as
        the pause histograms.
        """
        from ..energy.model import EnergyModel

        account = EnergyModel.for_config(result.config).account_run(result)
        for phase, _core_class, uj in account.items():
            self.metrics.counter(f"energy.{phase}_uj").inc(uj)

    def _check_idle(self) -> None:
        if (self._draining and not self._inflight
                and self._queue.qsize() == 0):
            self._idle.set()
