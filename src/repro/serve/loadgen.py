"""Synthetic open-loop load generator for the experiment service.

Replays a YCSB-style request mix against a running ``repro-serve``
instance: *ops* requests arrive on a fixed open-loop schedule (op *i* at
``i / rps`` seconds, regardless of how previous requests fare — the
paper's client-side methodology, where stalled requests pile up behind a
GC pause instead of politely waiting), spread round-robin over *clients*
persistent connections. The job mix is drawn deterministically from the
template list via :func:`repro.seeding.rng_for`, so two runs with one
seed submit the identical job sequence.

The report closes the loop with the paper's Fig. 5 / Tables 5-7 client
analysis: per-request latencies feed
:func:`repro.analysis.latency.latency_band_stats`, with the service's
reported execution intervals standing in for GC pauses — the service's
"stop-the-world" moments are the cache-miss simulations, and the bands
show how completely the high-latency tail is explained by them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.latency import LatencyBandStats, gc_overlap_fraction, latency_band_stats
from ..analysis.report import render_table
from ..errors import ConfigError
from ..seeding import rng_for
from .client import ServiceClient
from .service import WALL_CLOCK


@dataclass
class LoadConfig:
    """One load run: how many requests, how fast, over what mix."""

    templates: List[dict]               #: job payloads to draw from
    clients: int = 4                    #: persistent connections
    rps: float = 50.0                   #: open-loop arrival rate (req/s)
    ops: int = 100                      #: total requests
    seed: int = 0                       #: mix-selection seed
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    timeout: Optional[float] = 120.0    #: per-request client-side budget

    def __post_init__(self):
        if not self.templates:
            raise ConfigError("load mix needs at least one job template")
        if self.clients < 1:
            raise ConfigError("clients must be >= 1")
        if self.ops < 1:
            raise ConfigError("ops must be >= 1")
        if not self.rps > 0:
            raise ConfigError("rps must be > 0")


@dataclass
class LoadReport:
    """Client-side observations of one load run."""

    ops: int
    completed: int = 0
    cached: int = 0
    rejected: int = 0
    failed: int = 0
    errors: int = 0
    #: Send time (s since run start) per completed request.
    op_times: List[float] = field(default_factory=list)
    #: Client-observed latency (ms) per completed request.
    latencies_ms: List[float] = field(default_factory=list)
    #: Service execution intervals (s since run start) of cache misses —
    #: the service's GC-pause analogue for the band correlation.
    exec_intervals: List[Tuple[float, float]] = field(default_factory=list)

    def band_stats(self) -> Optional[LatencyBandStats]:
        """Tables 5-7-style latency bands (None without completions)."""
        if not self.latencies_ms:
            return None
        op_times = np.asarray(self.op_times, dtype=float)
        lat = np.asarray(self.latencies_ms, dtype=float)
        order = np.argsort(op_times, kind="stable")
        intervals = (np.asarray(sorted(self.exec_intervals), dtype=float)
                     if self.exec_intervals else np.zeros((0, 2)))
        return latency_band_stats(op_times[order], lat[order], intervals)

    def overlap_fraction(self, threshold_factor: float = 2.0) -> float:
        """Fraction of >``threshold_factor``x-AVG latencies overlapping a
        service execution interval (Fig. 5's observation 2)."""
        if not self.latencies_ms:
            return 0.0
        op_times = np.asarray(self.op_times, dtype=float)
        lat = np.asarray(self.latencies_ms, dtype=float)
        order = np.argsort(op_times, kind="stable")
        intervals = (np.asarray(sorted(self.exec_intervals), dtype=float)
                     if self.exec_intervals else np.zeros((0, 2)))
        return gc_overlap_fraction(op_times[order], lat[order], intervals,
                                   threshold_factor=threshold_factor)

    def render(self) -> str:
        """Human-readable report (the ``repro-serve load`` output)."""
        lines = [
            f"load: {self.ops} ops -> {self.completed} completed, "
            f"{self.rejected} rejected, {self.failed} failed, "
            f"{self.errors} errors",
            f"cache hits: {self.cached}/{self.ops}",
        ]
        stats = self.band_stats()
        if stats is not None:
            lines.append(
                f"latency: avg {stats.avg_ms:.3f} ms, "
                f"min {stats.min_ms:.3f} ms, max {stats.max_ms:.3f} ms")
            lines.append(
                "exec-overlap of >2x AVG latencies: "
                f"{100.0 * self.overlap_fraction():.1f}%")
            rows = [[label, value] for label, value in stats.rows()]
            lines.append(render_table(["band", "value"], rows,
                                      title="client latency bands "
                                            "(paper Tables 5-7 style)"))
        return "\n".join(lines)


async def run_load(config: LoadConfig, *, clock=None) -> LoadReport:
    """Drive one open-loop load run and return its report."""
    tick = clock if clock is not None else WALL_CLOCK
    rng = rng_for(config.seed, "serve.loadgen")
    choices = [int(c) for c in
               rng.integers(0, len(config.templates), size=config.ops)]
    clients = []
    for _ in range(min(config.clients, config.ops)):
        clients.append(await ServiceClient.connect(
            config.socket_path, config.host, config.port))
    report = LoadReport(ops=config.ops)
    samples: List[Optional[Tuple[float, float]]] = [None] * config.ops
    t0 = tick()

    async def one(i: int) -> None:
        client = clients[i % len(clients)]
        delay = (t0 + i / config.rps) - tick()
        if delay > 0:
            await asyncio.sleep(delay)
        t_send = tick()
        try:
            resp = await client.submit(config.templates[choices[i]],
                                       timeout=config.timeout)
        except Exception:
            report.errors += 1
            return
        t_resp = tick()
        kind = resp.get("type")
        if kind == "result":
            report.completed += 1
            samples[i] = (t_send - t0, (t_resp - t_send) * 1e3)
            meta = resp.get("meta") or {}
            if resp.get("cached"):
                report.cached += 1
            elif meta.get("exec_s"):
                # Reconstruct the service's execution window on the
                # client clock: no shared epoch needed.
                report.exec_intervals.append(
                    (t_resp - t0 - float(meta["exec_s"]), t_resp - t0))
        elif kind == "rejected":
            report.rejected += 1
        elif kind == "failed":
            report.failed += 1
        else:
            report.errors += 1

    try:
        await asyncio.gather(*[one(i) for i in range(config.ops)])
    finally:
        for client in clients:
            await client.close()
    for sample in samples:
        if sample is not None:
            report.op_times.append(round(sample[0], 6))
            report.latencies_ms.append(round(sample[1], 6))
    return report
