"""Async client for the ``repro-serve`` protocol.

A thin, pipelining-friendly wrapper: a background reader task routes
responses to per-request queues by ``id``, so any number of submits can
be in flight on one connection (the loadgen rides on this), while
``event`` messages stream into their own queue for subscribers.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import AsyncIterator, Dict, Optional

from ..errors import ProtocolError
from . import protocol

#: Response types that end a request/response exchange.
_TERMINAL = {"result", "failed", "rejected", "error", "stats", "pong",
             "subscribed", "drained", "cancelled", "joined", "left"}


class ServiceClient:
    """One connection to a running experiment service."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[object, asyncio.Queue] = {}
        self._events: "asyncio.Queue[dict]" = asyncio.Queue()
        self._closed = False
        self._read_error: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    # -- connecting ------------------------------------------------------

    @classmethod
    async def connect(cls, socket_path: Optional[str] = None,
                      host: str = "127.0.0.1", port: int = 0,
                      *, limit: int = protocol.MAX_LINE_BYTES + 1024
                      ) -> "ServiceClient":
        """Open a connection (Unix socket when *socket_path* is given)."""
        if socket_path:
            reader, writer = await asyncio.open_unix_connection(
                socket_path, limit=limit)
        else:
            reader, writer = await asyncio.open_connection(
                host, port, limit=limit)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass

    # -- plumbing --------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readuntil(b"\n")
                msg = protocol.decode(line)
                if msg.get("type") == "event":
                    self._events.put_nowait(msg)
                    continue
                rid = msg.get("id")
                queue = self._pending.get(rid)
                if queue is not None:
                    queue.put_nowait(msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._read_error = exc
            # Wake every waiter: the connection is gone.
            for queue in self._pending.values():
                queue.put_nowait(None)
            self._events.put_nowait({})

    async def _request(self, msg: dict, rid) -> "asyncio.Queue":
        queue: "asyncio.Queue" = asyncio.Queue()
        self._pending[rid] = queue
        self._writer.write(protocol.encode(msg))
        await self._writer.drain()
        return queue

    async def _next(self, queue: "asyncio.Queue",
                    timeout: Optional[float]) -> dict:
        msg = await asyncio.wait_for(queue.get(), timeout)
        if msg is None:
            raise ProtocolError("connection closed by the service", code=499)
        return msg

    # -- requests --------------------------------------------------------

    async def submit(self, job: dict, *,
                     timeout: Optional[float] = None) -> dict:
        """Submit one job and wait for its terminal response.

        Returns the terminal message: ``result`` (with ``run``/``meta``),
        ``failed``, ``rejected`` or ``error``. The intermediate
        ``queued`` acknowledgement, when any, is attached to the terminal
        message under ``"queued"``.
        """
        rid = next(self._ids)
        queue = await self._request({"op": "submit", "id": rid, "job": job},
                                    rid)
        queued: Optional[dict] = None
        try:
            while True:
                msg = await self._next(queue, timeout)
                if msg.get("type") == "queued":
                    queued = msg
                    continue
                if queued is not None:
                    msg = dict(msg)
                    msg["queued"] = queued
                return msg
        finally:
            self._pending.pop(rid, None)

    async def _simple(self, op: str, *, expect: str,
                      timeout: Optional[float] = None) -> dict:
        rid = next(self._ids)
        queue = await self._request({"op": op, "id": rid}, rid)
        try:
            msg = await self._next(queue, timeout)
            if msg.get("type") not in (expect, "rejected", "error"):
                # drain: a "draining" ack precedes "drained"
                while msg.get("type") not in _TERMINAL:
                    msg = await self._next(queue, timeout)
            return msg
        finally:
            self._pending.pop(rid, None)

    async def ping(self, *, timeout: Optional[float] = None) -> dict:
        """Liveness probe; returns the ``pong`` message."""
        return await self._simple("ping", expect="pong", timeout=timeout)

    async def cancel(self, digest: str, *,
                     timeout: Optional[float] = None) -> dict:
        """Withdraw a queued job by digest (the steal primitive).

        Returns the ``cancelled`` message; its ``outcome`` field is the
        at-most-once verdict (``cancelled``/``busy``/``unknown``).
        """
        rid = next(self._ids)
        queue = await self._request(
            {"op": "cancel", "id": rid, "digest": digest}, rid)
        try:
            return await self._next(queue, timeout)
        finally:
            self._pending.pop(rid, None)

    async def status(self, *, timeout: Optional[float] = None) -> dict:
        """Fetch the service stats snapshot (the ``stats`` field)."""
        msg = await self._simple("status", expect="stats", timeout=timeout)
        return msg.get("stats", msg)

    async def drain(self, *, timeout: Optional[float] = None) -> dict:
        """Ask the service to drain; waits for the ``drained`` message."""
        return await self._simple("drain", expect="drained", timeout=timeout)

    async def subscribe(self) -> None:
        """Start streaming live service events into :meth:`events`."""
        await self._simple("subscribe", expect="subscribed")

    async def events(self) -> AsyncIterator[dict]:
        """Yield streamed events (call :meth:`subscribe` first)."""
        while True:
            msg = await self._events.get()
            if not msg:        # reader loop ended
                return
            yield msg["event"]
