"""The ``repro-serve`` wire protocol: newline-delimited JSON messages.

One experiment job per request, one JSON object per line, over TCP or a
Unix socket. The protocol is deliberately dumb — no framing beyond
``\\n``, no negotiation beyond a version field — so ``nc`` and a shell
loop are valid clients and every edge case is testable with byte
strings.

Requests (client → server) carry ``op`` and an optional client-chosen
``id`` echoed on every response to the request::

    {"op": "submit", "id": 1, "job": {"benchmark": "xalan", "gc": "G1",
     "heap": "16g", "young": "256m", "seed": 0, "iterations": 10}}
    {"op": "status", "id": 2}
    {"op": "ping"} | {"op": "drain"} | {"op": "subscribe"}

Responses (server → client) carry ``type``; a ``submit`` gets a
``queued`` acknowledgement immediately (explicit admission — a rejected
job gets ``rejected`` instead, never silence) and a terminal ``result``
or ``failed`` later. ``event`` messages (no ``id``) flow to subscribed
clients only.

Determinism contract: the ``run`` payload inside a ``result`` is exactly
:func:`repro.campaign.cells.encode_run` of the simulated
:class:`~repro.jvm.RunResult` — byte-identical (under canonical JSON
dumping) to what ``repro-campaign`` writes to the store for the same
cell. Wall-clock service observations (queue wait, execution interval)
live only in the sibling ``meta`` object and never inside ``run``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..campaign.cells import CellSpec
from ..errors import ConfigError, ProtocolError

#: Bump on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: Hard per-line ceiling (1 MiB): an encoded RunResult for a long run is
#: ~100 KiB; anything larger than this is a broken or hostile client.
MAX_LINE_BYTES = 1 << 20

#: Request operations the server accepts. ``cancel`` exists for the
#: cluster coordinator's work stealing: it removes a queued-but-unstarted
#: job by digest, so a straggler shard can hand the cell to a faster node
#: with at-most-once execution (a started job answers ``busy`` instead).
OPS = ("cancel", "drain", "ping", "status", "submit", "subscribe")

#: The coordinator's superset: node membership changes ride on the same
#: wire format (``repro.cluster`` dispatches these; a plain worker node
#: rejects them as unknown ops).
COORDINATOR_OPS = OPS + ("join", "leave")

#: Job fields accepted by ``submit`` (anything else is a protocol error,
#: so typos fail loudly instead of simulating the wrong cell).
JOB_FIELDS = ("benchmark", "gc", "heap", "young", "seed", "iterations",
              "system_gc", "tlab_enabled", "overrides")


def encode(msg: Dict[str, object]) -> bytes:
    """One canonical wire line for *msg* (compact, sorted keys)."""
    return (json.dumps(msg, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode(line: bytes, *, max_bytes: int = MAX_LINE_BYTES) -> Dict[str, object]:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` with an HTTP-flavoured code: 413 for an
    oversized line, 400 for malformed JSON or a non-object payload.
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the {max_bytes}-byte limit",
            code=413)
    try:
        msg = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON line: {exc}", code=400) from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}",
            code=400)
    return msg


def parse_request(msg: Dict[str, object],
                  ops: Tuple[str, ...] = OPS) -> Tuple[str, Optional[object]]:
    """Validate a request message; returns ``(op, id)``.

    *ops* is the accepted operation set — workers pass the default
    :data:`OPS`, the cluster coordinator :data:`COORDINATOR_OPS`.
    """
    op = msg.get("op")
    if op not in ops:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(ops)}", code=400)
    return op, msg.get("id")


def parse_cancel(msg: Dict[str, object]) -> str:
    """Validate a ``cancel`` request; returns the target digest."""
    digest = msg.get("digest")
    if not isinstance(digest, str) or not digest:
        raise ProtocolError("cancel requires a non-empty 'digest' field",
                            code=400)
    return digest


def job_to_cell(job: object) -> CellSpec:
    """Validate a ``submit`` job payload into a canonical :class:`CellSpec`.

    The same normalization as the campaign path (GC aliases resolved,
    sizes parsed), so a job and its grid-swept twin share one content
    digest — and therefore one cache slot.
    """
    if not isinstance(job, dict):
        raise ProtocolError(
            f"job must be a JSON object, got {type(job).__name__}", code=400)
    unknown = sorted(set(job) - set(JOB_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown job field(s) {', '.join(unknown)}; "
            f"expected a subset of {', '.join(JOB_FIELDS)}", code=400)
    if "benchmark" not in job:
        raise ProtocolError("job is missing required field 'benchmark'",
                            code=400)
    overrides = job.get("overrides")
    if overrides is not None and not isinstance(overrides, dict):
        raise ProtocolError("job field 'overrides' must be an object",
                            code=400)
    try:
        return CellSpec.from_axes(
            job["benchmark"],
            job.get("gc", "ParallelOld"),
            job.get("heap", "1g"),
            job.get("young"),
            job.get("seed", 0),
            iterations=job.get("iterations", 10),
            system_gc=job.get("system_gc", True),
            tlab_enabled=job.get("tlab_enabled", True),
            overrides=overrides,
        )
    except (ConfigError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid job: {exc}", code=400) from None


# ----------------------------------------------------------------------
# Response builders (the server's half of the vocabulary)
# ----------------------------------------------------------------------


def _resp(type_: str, rid: Optional[object], **fields) -> Dict[str, object]:
    msg: Dict[str, object] = {"type": type_, "v": PROTOCOL_VERSION}
    if rid is not None:
        msg["id"] = rid
    msg.update(fields)
    return msg


def queued_msg(rid, digest: str, *, position: int) -> Dict[str, object]:
    """Admission acknowledgement for a submit."""
    return _resp("queued", rid, digest=digest, position=position)


def result_msg(rid, digest: str, run: Dict[str, object], *, cached: bool,
               meta: Dict[str, object]) -> Dict[str, object]:
    """Terminal success for a submit; ``run`` is the encoded RunResult."""
    return _resp("result", rid, digest=digest, cached=cached, run=run,
                 meta=meta)


def failed_msg(rid, digest: str, failure: Dict[str, object], *,
               meta: Dict[str, object]) -> Dict[str, object]:
    """Terminal failure for a submit (quarantined after retries);
    ``failure`` is :meth:`CellFailure.to_json` output."""
    return _resp("failed", rid, digest=digest, failure=failure, meta=meta)


def rejected_msg(rid, code: int, reason: str) -> Dict[str, object]:
    """Explicit admission refusal (429 queue full, 503 draining)."""
    return _resp("rejected", rid, code=code, reason=reason)


def error_msg(rid, code: int, reason: str) -> Dict[str, object]:
    """Protocol-level error (bad JSON, bad job, unknown op...)."""
    return _resp("error", rid, code=code, reason=reason)


def stats_msg(rid, stats: Dict[str, object]) -> Dict[str, object]:
    """Status-endpoint payload."""
    return _resp("stats", rid, stats=stats)


def cancelled_msg(rid, digest: str, outcome: str) -> Dict[str, object]:
    """Reply to a ``cancel``. *outcome* is the at-most-once verdict:
    ``cancelled`` (the job was queued and has been removed — it never
    ran and never will here), ``busy`` (already started or finished —
    the caller must NOT re-route it) or ``unknown`` (no such digest)."""
    return _resp("cancelled", rid, digest=digest, outcome=outcome)


def joined_msg(rid, node_id: str, nodes: list) -> Dict[str, object]:
    """Coordinator reply to a ``join``: the node is registered and in the
    ring; ``nodes`` is the resulting live-node id list."""
    return _resp("joined", rid, node_id=node_id, nodes=nodes)


def left_msg(rid, node_id: str, nodes: list) -> Dict[str, object]:
    """Coordinator reply to a ``leave`` (ring membership after removal)."""
    return _resp("left", rid, node_id=node_id, nodes=nodes)


def pong_msg(rid) -> Dict[str, object]:
    """Liveness reply."""
    return _resp("pong", rid)


def subscribed_msg(rid) -> Dict[str, object]:
    """Subscription acknowledgement; ``event`` messages follow."""
    return _resp("subscribed", rid)


def draining_msg(rid) -> Dict[str, object]:
    """Drain acknowledged; in-flight jobs are completing."""
    return _resp("draining", rid)


def drained_msg(rid, stats: Dict[str, object]) -> Dict[str, object]:
    """Drain complete; final service stats attached."""
    return _resp("drained", rid, stats=stats)


def event_msg(event: Dict[str, object]) -> Dict[str, object]:
    """Live telemetry line for subscribers (no request id)."""
    return _resp("event", None, event=event)
