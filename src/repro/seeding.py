"""Deterministic seed derivation.

Seeding ``numpy.random.default_rng`` with a *list* whose trailing entries
are shared across runs (``[seed, salt_a, salt_b]``) produces visibly
correlated first draws across nearby ``seed`` values. We instead mix all
parts into a single 63-bit integer with a splitmix-style hash, which gives
well-dispersed, reproducible streams.

This is also what makes :mod:`repro.campaign` executor-independent: every
RNG stream in a run derives from the run's own coordinates (seed,
collector, purpose salt) through :func:`rng_for`, never from process
identity, scheduling or execution order — so a grid cell computes the
same bits whether it runs serially, on any worker of a process pool, or
is replayed from a cache. ``tests/test_campaign.py`` pins this.
"""

from __future__ import annotations

import zlib

import numpy as np

_MASK = (1 << 64) - 1


def _mix(x: int) -> int:
    """splitmix64 finalizer."""
    x &= _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    return x ^ (x >> 31)


def derive_seed(*parts) -> int:
    """Hash integers and strings into one well-dispersed RNG seed."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        if isinstance(part, str):
            value = zlib.crc32(part.encode())
        else:
            value = int(part)
        acc = _mix(acc ^ _mix(value))
    return acc & ((1 << 63) - 1)


def rng_for(*parts) -> np.random.Generator:
    """A numpy Generator seeded from the mixed *parts*."""
    return np.random.default_rng(derive_seed(*parts))
