"""The commit log: Cassandra's durability mechanism (paper §2.2).

Every modification is appended to the commit log before being applied to
the memtable. The log is divided into fixed-size segments; in the default
configuration old segments are recycled once the log exceeds its cap, in
the stress configuration the cap equals the heap so segments accumulate
in memory for the whole run.

After a crash (or in the paper's stress setup, at startup of a pre-loaded
node) the commit log is *replayed* to rebuild the memtable — the "loading
step" visible at the start of the paper's Figure 4.
"""

from __future__ import annotations

from collections import deque

from .config import CassandraConfig


class CommitLog:
    """Append-only segmented log, heap-resident.

    In the stress configuration the log grows to thousands of segments,
    so :attr:`heap_bytes` keeps a running total instead of summing the
    segment list on every query. Segments are unreleased pinned cohorts
    whose ``resident`` never changes while in the deque (released ones
    are popped immediately), and segment sizes are whole bytes, so the
    incremental total is exact.
    """

    def __init__(self, config: CassandraConfig):
        self.config = config
        self.segments: deque = deque()   # pinned cohorts, oldest first
        self.pending_bytes = 0.0
        self.appended_bytes = 0.0
        self.recycled_segments = 0
        self._segment_bytes = 0.0        # running sum of segment residents

    @property
    def heap_bytes(self) -> float:
        """Heap bytes currently held by live segments."""
        return self._segment_bytes + self.pending_bytes

    def append(self, n_bytes: float) -> None:
        """Record *n_bytes* of mutations (materialized lazily)."""
        self.pending_bytes += n_bytes
        self.appended_bytes += n_bytes

    def materialize(self, allocate_segment):
        """Turn pending bytes into pinned segment cohorts (generator).

        ``allocate_segment(n_bytes) -> Cohort`` comes from the server's
        mutator context. Recycles old segments past the configured cap.
        """
        seg = self.config.commitlog_segment_bytes
        while self.pending_bytes >= seg:
            cohort = yield from allocate_segment(seg)
            self.segments.append(cohort)
            self._segment_bytes += cohort.resident
            self.pending_bytes -= seg
        while self.heap_bytes > self.config.commitlog_cap_bytes and len(self.segments) > 1:
            oldest = self.segments.popleft()
            self._segment_bytes -= oldest.resident
            oldest.release()
            self.recycled_segments += 1

    def replay_bytes(self) -> float:
        """Bytes a startup replay must process to rebuild the memtable."""
        return self.heap_bytes
