"""Cassandra server configuration (the knobs the paper turns, §4.1).

Two named configurations mirror the paper:

* :func:`default_config` — memtable flushes to disk at a conventional
  threshold, the commit log recycles segments;
* :func:`stress_config` — "we set up both the commitlog and the internal
  caching structure of Cassandra (called memtable) to have the same size
  as the heap, which means that everything was always kept in memory",
  plus a pre-loaded database whose commit log is replayed at startup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import GB, KB, MB


@dataclass(frozen=True)
class CassandraConfig:
    """Tunables of the simulated Cassandra node."""

    record_bytes: float = 1 * KB          #: YCSB default record (10 x 100 B fields)
    heap_overhead_factor: float = 1.6     #: Java object overhead per stored record
    memtable_cap_bytes: float = 4 * GB    #: flush threshold
    commitlog_cap_bytes: float = 1 * GB   #: recycle threshold
    commitlog_segment_bytes: float = 32 * MB
    memtable_chunk_bytes: float = 16 * MB  #: cohort granularity of the memtable
    #: Transient allocation per operation (request parsing, serialization,
    #: iterator garbage) — Cassandra's well-known allocation amplification.
    transient_bytes_per_op: float = 96 * KB
    #: CPU time per operation on the server (one thread).
    cpu_seconds_per_op: float = 0.00050
    #: Records pre-loaded into the database (replayed from the commit log
    #: at startup in the stress configuration).
    preload_records: int = 0

    def __post_init__(self) -> None:
        if self.record_bytes <= 0:
            raise ConfigError("record_bytes must be positive")
        if self.heap_overhead_factor < 1.0:
            raise ConfigError("heap_overhead_factor must be >= 1")
        if self.memtable_cap_bytes <= 0 or self.commitlog_cap_bytes <= 0:
            raise ConfigError("caps must be positive")
        if self.commitlog_segment_bytes <= 0:
            raise ConfigError("commitlog_segment_bytes must be positive")

    @property
    def record_heap_bytes(self) -> float:
        """Heap bytes one record occupies in the memtable."""
        return self.record_bytes * self.heap_overhead_factor


def default_config(heap_bytes: float = 64 * GB, **overrides) -> CassandraConfig:
    """The paper's *default* Cassandra configuration (§4.1).

    Cassandra 2.0-era defaults size the memtable space at a third of the
    heap (``memtable_total_space_in_mb``) and cap the commit log at 1 GB.
    """
    kw = dict(
        memtable_cap_bytes=heap_bytes / 3,
        commitlog_cap_bytes=1 * GB,
    )
    kw.update(overrides)
    return CassandraConfig(**kw)


def stress_config(heap_bytes: float, preload_records: int = 8_000_000,
                  **overrides) -> CassandraConfig:
    """The paper's *stress test* configuration: nothing ever flushes.

    Memtable and commit-log caps equal the heap, and the database starts
    pre-loaded (the commit log must be replayed before serving).
    """
    kw = dict(
        memtable_cap_bytes=float(heap_bytes),
        commitlog_cap_bytes=float(heap_bytes),
        preload_records=int(preload_records),
    )
    kw.update(overrides)
    return CassandraConfig(**kw)
