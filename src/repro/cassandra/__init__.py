"""Simulated Apache Cassandra 2.0 server (paper §2.2, §4).

A single-node, in-memory NoSQL store whose data structures live on the
simulated JVM heap: a commit log (append-only segments), a memtable (the
in-memory cache of the database state) and SSTables (flushed, off-heap).
The *stress test* configuration from the paper — memtable and commit log
sized like the heap so nothing is ever flushed — is
:func:`stress_config`.
"""

from .config import CassandraConfig, default_config, stress_config
from .commitlog import CommitLog
from .memtable import Memtable
from .sstable import SSTableSet
from .server import CassandraServer, ServerStats
from .cluster import (
    ClusterConfig,
    ClusterResult,
    DownEvent,
    detect_down_events,
    run_cluster_study,
)

__all__ = [
    "CassandraConfig",
    "default_config",
    "stress_config",
    "CommitLog",
    "Memtable",
    "SSTableSet",
    "CassandraServer",
    "ServerStats",
    "ClusterConfig",
    "ClusterResult",
    "DownEvent",
    "detect_down_events",
    "run_cluster_study",
]
