"""The memtable: Cassandra's in-memory write-back cache.

Writes land in the memtable; when it exceeds its configured cap it is
flushed to an SSTable on disk, releasing its heap space (in the paper's
stress configuration the cap equals the heap and a flush never happens).

Heap representation: the memtable owns *pinned cohorts* of
``memtable_chunk_bytes`` each. Updates supersede previously-written data;
once a chunk's worth of data is obsolete, the oldest chunk is released
(compaction of the skip-list in real Cassandra) — this is what generates
old-generation garbage under an update-heavy YCSB workload.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError
from .config import CassandraConfig


class Memtable:
    """Heap-resident table of recent writes.

    Like the commit log, the chunk list can grow very large under the
    stress configuration, so :attr:`heap_bytes` is a running total
    (chunks are unreleased pinned cohorts of whole-byte sizes — their
    ``resident`` is constant while in the deque, so the total is exact).
    """

    def __init__(self, config: CassandraConfig):
        self.config = config
        self.chunks: deque = deque()    # pinned cohorts (oldest first)
        self.pending_bytes = 0.0        # bytes not yet materialized as a cohort
        self.obsolete_bytes = 0.0       # superseded data awaiting chunk release
        self.record_count = 0
        self.flush_count = 0
        self._chunk_bytes = 0.0         # running sum of chunk residents

    # ------------------------------------------------------------------

    @property
    def heap_bytes(self) -> float:
        """Heap bytes currently held (materialized chunks + pending)."""
        return self._chunk_bytes + self.pending_bytes

    @property
    def needs_flush(self) -> bool:
        """True when the memtable exceeded its cap."""
        return self.heap_bytes >= self.config.memtable_cap_bytes

    def write(self, n_records: float, *, update_fraction: float = 0.0) -> float:
        """Record *n_records* writes; returns heap bytes to be allocated.

        ``update_fraction`` of the writes supersede existing records
        (they add new bytes but mark equal old bytes obsolete).
        """
        if n_records < 0 or not (0.0 <= update_fraction <= 1.0):
            raise ConfigError("bad write() arguments")
        new_bytes = n_records * self.config.record_heap_bytes
        self.pending_bytes += new_bytes
        self.record_count += int(n_records * (1.0 - update_fraction))
        self.obsolete_bytes += new_bytes * update_fraction
        return new_bytes

    def materialize(self, allocate_chunk) -> None:
        """Turn pending bytes into pinned chunk cohorts.

        ``allocate_chunk(n_bytes) -> Cohort`` is supplied by the server's
        mutator context (it may trigger GCs). Called from a generator via
        ``yield from``.
        """
        chunk = self.config.memtable_chunk_bytes
        while self.pending_bytes >= chunk:
            cohort = yield from allocate_chunk(chunk)
            self.chunks.append(cohort)
            self._chunk_bytes += cohort.resident
            self.pending_bytes -= chunk
        self._release_obsolete()

    def _release_obsolete(self) -> None:
        """Release whole chunks once enough data has been superseded."""
        chunk = self.config.memtable_chunk_bytes
        while self.obsolete_bytes >= chunk and self.chunks:
            oldest = self.chunks.popleft()
            self._chunk_bytes -= oldest.resident
            oldest.release()
            self.obsolete_bytes -= chunk

    def flush(self) -> float:
        """Flush to an SSTable: release every chunk; returns bytes freed.

        (The freed heap becomes old-generation garbage collected at the
        next collection, exactly as in the real JVM.)
        """
        freed = 0.0
        for cohort in self.chunks:
            freed += cohort.release()
        self.chunks.clear()
        self._chunk_bytes = 0.0
        freed += self.pending_bytes
        self.pending_bytes = 0.0
        self.obsolete_bytes = 0.0
        self.flush_count += 1
        return freed
