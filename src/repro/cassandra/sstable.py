"""SSTables: flushed, immutable on-disk tables.

Off-heap from the GC's point of view — flushing a memtable moves its data
here and releases the heap. SSTables still matter to the *client*: reads
that miss the memtable touch more and more SSTables as the run
progresses, which is what produces the increasing "steps" in the paper's
read-latency line (Figure 5, observation 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SSTable:
    """One immutable flushed table."""

    created_at: float
    data_bytes: float
    record_count: int


@dataclass
class SSTableSet:
    """The on-disk table set of one Cassandra node."""

    tables: List[SSTable] = field(default_factory=list)

    def add(self, created_at: float, data_bytes: float, record_count: int) -> SSTable:
        """Register a freshly-flushed SSTable."""
        table = SSTable(created_at, data_bytes, record_count)
        self.tables.append(table)
        return table

    @property
    def count(self) -> int:
        """Number of live SSTables."""
        return len(self.tables)

    @property
    def total_bytes(self) -> float:
        """Total on-disk bytes."""
        return sum(t.data_bytes for t in self.tables)

    def read_amplification(self) -> float:
        """How many tables a read may need to consult (>= 1).

        A crude LSM model: bloom filters skip most tables, so the
        amplification grows with the logarithm of the table count.
        """
        import math

        return 1.0 + math.log2(1 + self.count)
