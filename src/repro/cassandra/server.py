"""The Cassandra server workload: request execution on the simulated JVM.

The server processes an operation mix (insert / update / read) at a given
aggregate rate for a fixed amount of *simulated* time, exactly like the
paper's YCSB client driving a single Cassandra node for one or two hours.
Memory behaviour per operation:

* every **insert/update** appends to the commit log and writes the
  memtable (pinned heap data — the GC can never reclaim it until a flush
  or supersession);
* every operation allocates transient request garbage
  (``transient_bytes_per_op``) with a generational lifetime profile;
* the memtable flushes to an SSTable when it exceeds its cap (releasing
  heap to be collected) — never, in the stress configuration;
* in the stress configuration, startup **replays the commit log** of the
  pre-loaded database (the paper's "loading step" before the benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..seeding import rng_for
from ..heap.lifetime import Exponential, Immortal, Mixture, Weibull
from ..units import KB
from ..workloads.base import Workload
from .commitlog import CommitLog
from .config import CassandraConfig
from .memtable import Memtable
from .sstable import SSTableSet


@dataclass
class ServerStats:
    """Server-side counters for one run."""

    ops_executed: float = 0.0
    inserts: float = 0.0
    updates: float = 0.0
    reads: float = 0.0
    replayed_bytes: float = 0.0
    replay_seconds: float = 0.0
    flushes: int = 0
    memtable_bytes_end: float = 0.0
    commitlog_bytes_end: float = 0.0


class CassandraServer(Workload):
    """A single Cassandra node, runnable on a :class:`~repro.jvm.JVM`."""

    name = "cassandra"

    def __init__(self, config: CassandraConfig):
        self.config = config
        self.memtable = Memtable(config)
        self.commitlog = CommitLog(config)
        self.sstables = SSTableSet()
        self.stats = ServerStats()

    # ------------------------------------------------------------------

    def _transient_lifetime(self, insert_fraction: float = 1.0,
                            update_fraction: float = 0.0):
        """Lifetime mixture of per-request garbage.

        The long-lived component (flush/compaction bookkeeping, index
        summaries under construction) scales with the *write* share of the
        mix: a pure-insert load keeps far more medium-term state alive
        than a read/update mix.
        """
        long_w = 0.002 + 0.0295 * (insert_fraction + 0.15 * update_fraction)
        return Mixture(
            [
                (0.9775 - long_w, Exponential(0.05)),  # request/response buffers
                (0.0200, Weibull(0.7, 15.0)),          # per-request iterator state
                (long_w, Weibull(0.6, 2500.0)),        # caches, compaction bookkeeping
                (0.0005, Immortal()),                  # leaked bookkeeping
            ]
        )

    def drive(
        self,
        jvm,
        result,
        duration: float = 3600.0,
        ops_per_second: float = 4000.0,
        read_fraction: float = 0.0,
        update_fraction: float = 0.0,
        n_client_threads: int = 100,
        sim_thread_cap: int = 8,
        quantum: float = 2.0,
    ):
        """Driver generator: serve the mix for *duration* simulated seconds.

        ``read_fraction`` + ``update_fraction`` <= 1; the remainder are
        inserts (the YCSB *load* phase is pure inserts).
        """
        if read_fraction + update_fraction > 1.0 + 1e-9:
            raise ConfigError("read_fraction + update_fraction must be <= 1")
        cfg = self.config
        stats = self.stats
        dist = self._transient_lifetime(
            1.0 - read_fraction - update_fraction, update_fraction
        )
        rng = rng_for(jvm.config.seed, "cassandra", jvm.config.gc.value)
        cores = jvm.config.topology.cores
        service_threads = min(n_client_threads, cores)
        groups = max(1, min(service_threads, sim_thread_cap))
        jvm.world.thread_multiplier = service_threads / groups

        # -- startup: page-touch + commit-log replay ----------------------
        def startup_body(ctx):
            touch = jvm.costs.heap_touch_time(jvm.heap.config.young_bytes)
            if jvm.collector.parallel_young:
                touch /= min(jvm.costs.effective_threads(jvm.collector.gc_threads), 4.0)
            yield from ctx.work(touch)
            if cfg.preload_records > 0:
                replay_t0 = jvm.now
                payload = cfg.preload_records * cfg.record_bytes
                # Replayed commit-log segments come back into memory as
                # bulk buffers (pretenured straight into the old gen)...
                self.commitlog.append(payload)
                yield from self.commitlog.materialize(
                    lambda b: ctx.allocate_old(b, None, n_objects=1, pinned=True, label="commitlog")
                )
                # ...and their mutations rebuild the memtable arenas.
                self.memtable.write(cfg.preload_records)
                yield from self.memtable.materialize(
                    lambda b: ctx.allocate_old(b, None, n_objects=1, pinned=True, label="memtable")
                )
                # Replay costs CPU proportional to the data replayed.
                yield from ctx.work(payload / (200e6))
                stats.replayed_bytes = payload
                stats.replay_seconds = jvm.now - replay_t0

        yield from jvm.join([jvm.spawn_mutator(startup_body, "cassandra-startup")])
        t_serve_start = jvm.now
        result.extras["serve_start"] = t_serve_start

        # -- serving loop ---------------------------------------------------
        ops_per_group_quantum = ops_per_second * quantum / groups
        insert_fraction = 1.0 - read_fraction - update_fraction
        # Reads allocate far less than writes (no commit-log/memtable path).
        transient_per_op = cfg.transient_bytes_per_op * (
            0.35 + 0.65 * (insert_fraction + update_fraction)
        )

        def worker_body(ctx):
            while jvm.now - t_serve_start < duration:
                loop_start = jvm.now
                ops = ops_per_group_quantum
                cpu = ops * cfg.cpu_seconds_per_op / jvm.world.thread_multiplier
                yield from ctx.work(cpu)
                writes = ops * (insert_fraction + update_fraction)
                if writes > 0:
                    upd = (
                        update_fraction / (insert_fraction + update_fraction)
                        if insert_fraction + update_fraction > 0
                        else 0.0
                    )
                    self.commitlog.append(writes * cfg.record_bytes)
                    self.memtable.write(writes, update_fraction=upd)
                    yield from self.commitlog.materialize(
                        lambda b: ctx.allocate(b, None, n_objects=1, pinned=True, label="commitlog")
                    )
                    yield from self.memtable.materialize(
                        lambda b: ctx.allocate(b, None, n_objects=1, pinned=True, label="memtable")
                    )
                # Transient request garbage (all operations).
                transient = ops * transient_per_op
                yield from ctx.allocate(
                    transient, dist,
                    n_objects=max(1.0, transient / (2 * KB)),
                    window=quantum, label="request-garbage",
                )
                # Updates dirty old-generation data (card table).
                yield from jvm.world.dirty_cards(
                    ops * update_fraction * cfg.record_heap_bytes
                )
                # Flush when over the cap (never, in the stress config).
                if self.memtable.needs_flush:
                    freed = self.memtable.flush()
                    self.sstables.add(jvm.now, freed / cfg.heap_overhead_factor,
                                      self.memtable.record_count)
                    stats.flushes += 1
                stats.ops_executed += ops
                stats.inserts += ops * insert_fraction
                stats.updates += ops * update_fraction
                stats.reads += ops * read_fraction
                # Pace to the offered rate: wait out the rest of the
                # quantum for new client requests. Time lost to GC pauses
                # is not caught up (the server saturates instead).
                elapsed = jvm.now - loop_start
                if elapsed < quantum:
                    yield from ctx.idle(quantum - elapsed)

        workers = [
            jvm.spawn_mutator(worker_body, f"cassandra-w{g}") for g in range(groups)
        ]
        yield from jvm.join(workers)

        stats.memtable_bytes_end = self.memtable.heap_bytes
        stats.commitlog_bytes_end = self.commitlog.heap_bytes
        stats.flushes = self.memtable.flush_count
        result.extras["server_stats"] = stats
        result.extras["sstables"] = self.sstables.count
