"""Multi-node cluster study: GC pauses vs. the failure detector.

The paper's closing warning (§4.1, §6): "in a distributed system, even a
lag of a few seconds might result in the current node being considered
down and the initiation of a cumbersome synchronization protocol." This
module quantifies that: it runs one simulated Cassandra JVM per node
(independent seeds, so collections are not synchronized across nodes),
then overlays Cassandra's gossip failure detector on the pause logs:

* each node heartbeats every :attr:`ClusterConfig.heartbeat_interval`;
  a stop-the-world pause silences the node's gossip;
* peers declare the node DOWN once silence exceeds
  :attr:`ClusterConfig.failure_timeout` (the phi-accrual detector's
  effective timeout — a few seconds at Cassandra defaults);
* while a node is down, writes owed to it accumulate as *hinted
  handoffs* that must be replayed when it returns — the "cumbersome
  synchronization protocol".

The overlay is vectorized over the pause logs (no per-heartbeat DES
events), mirroring how the YCSB client synthesis couples to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..jvm import JVM, JVMConfig, RunResult
from ..units import GB
from .config import CassandraConfig, stress_config
from .server import CassandraServer


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-level parameters (Cassandra gossip defaults)."""

    n_nodes: int = 3
    #: None resolves to min(3, n_nodes) — Cassandra's conventional RF.
    replication_factor: Optional[int] = None
    heartbeat_interval: float = 1.0
    #: Effective phi-accrual timeout: silence longer than this marks the
    #: node down (Cassandra's phi_convict_threshold=8 lands in the
    #: few-seconds range under a 1 s gossip interval).
    failure_timeout: float = 3.0
    #: Time for gossip to propagate the node's return once it resumes.
    recovery_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if self.failure_timeout <= 0 or self.heartbeat_interval <= 0:
            raise ConfigError("timeouts must be positive")
        if self.replication_factor is None:
            object.__setattr__(self, "replication_factor", min(3, self.n_nodes))
        if not (1 <= self.replication_factor <= self.n_nodes):
            raise ConfigError("replication_factor must be in [1, n_nodes]")


@dataclass(frozen=True)
class DownEvent:
    """One detector conviction: a node was considered DOWN by its peers."""

    node: int
    declared_at: float     #: when peers convicted the node
    recovered_at: float    #: when peers saw it alive again
    pause_duration: float  #: the GC pause that caused it

    @property
    def unavailable_seconds(self) -> float:
        """Wall time the node spent convicted."""
        return self.recovered_at - self.declared_at


@dataclass
class ClusterResult:
    """Per-collector outcome of a cluster study."""

    gc: str
    config: ClusterConfig
    node_results: List[RunResult] = field(default_factory=list)
    down_events: List[DownEvent] = field(default_factory=list)
    write_rate_per_node: float = 0.0

    @property
    def total_unavailable_seconds(self) -> float:
        """Sum of node-down time across the cluster."""
        return float(sum(e.unavailable_seconds for e in self.down_events))

    @property
    def hinted_handoff_bytes(self) -> float:
        """Writes that had to be stored as hints and replayed.

        While a replica is convicted, its share of the write stream is
        buffered on the coordinators: ``write_rate x down_time``.
        """
        return self.write_rate_per_node * self.total_unavailable_seconds

    def availability(self, duration: float) -> float:
        """Mean fraction of time a node was considered up."""
        if duration <= 0 or not self.node_results:
            return 1.0
        per_node = duration * len(self.node_results)
        return 1.0 - self.total_unavailable_seconds / per_node


def detect_down_events(
    pause_starts: np.ndarray,
    pause_durations: np.ndarray,
    config: ClusterConfig,
    node: int = 0,
) -> List[DownEvent]:
    """Apply the failure detector to one node's pause log (vectorized).

    A pause silences gossip from its start; peers convict once the
    silence exceeds ``failure_timeout`` (plus up to one heartbeat of
    detection latency, taken at its expectation of half an interval) and
    see the node again ``recovery_delay`` after the pause ends.
    """
    starts = np.asarray(pause_starts, dtype=float)
    durations = np.asarray(pause_durations, dtype=float)
    if starts.shape != durations.shape:
        raise ConfigError("pause arrays must align")
    detection_lag = config.failure_timeout + 0.5 * config.heartbeat_interval
    convicting = durations > detection_lag
    events = []
    for start, duration in zip(starts[convicting], durations[convicting]):
        events.append(
            DownEvent(
                node=node,
                declared_at=float(start + detection_lag),
                recovered_at=float(start + duration + config.recovery_delay),
                pause_duration=float(duration),
            )
        )
    return events


def run_cluster_study(
    gc,
    *,
    cluster: Optional[ClusterConfig] = None,
    cassandra: Optional[CassandraConfig] = None,
    jvm_template: Optional[JVMConfig] = None,
    duration: float = 7200.0,
    ops_per_second: float = 1350.0,
    seed: int = 3,
) -> ClusterResult:
    """Run *n_nodes* independent Cassandra JVMs and overlay the detector.

    Nodes get derived seeds (their collections are uncorrelated, like real
    replicas); the returned :class:`ClusterResult` aggregates conviction
    events, unavailability and hinted-handoff volume.
    """
    cluster = cluster if cluster is not None else ClusterConfig()
    result = ClusterResult(gc=str(gc), config=cluster)
    heap = jvm_template.heap_bytes if jvm_template else 64 * GB
    cassandra = cassandra if cassandra is not None else stress_config(heap)
    for node in range(cluster.n_nodes):
        config = (jvm_template or JVMConfig(gc=gc, heap=64 * GB, young=12 * GB)
                  ).with_(gc=gc, seed=seed + 1000 * node)
        server = CassandraServer(cassandra)
        run = JVM(config).run(
            server, duration=duration, ops_per_second=ops_per_second
        )
        result.node_results.append(run)
        result.down_events.extend(
            detect_down_events(
                run.gc_log.starts(), run.gc_log.durations(), cluster, node=node
            )
        )
    # Each node owns replication_factor / n_nodes of the write stream.
    record_rate = ops_per_second * cassandra.record_bytes
    result.write_rate_per_node = (
        record_rate * cluster.replication_factor / cluster.n_nodes
    )
    result.down_events.sort(key=lambda e: e.declared_at)
    return result
