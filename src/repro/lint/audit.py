"""Runtime invariant auditing — the dynamic half of ``repro.lint``.

:class:`InvariantAuditor` is the simulator's analogue of HotSpot's
``-XX:+VerifyBeforeGC``/``-XX:+VerifyAfterGC``: attached to a
:class:`~repro.jvm.jvm.JVM`, it instruments the engine, heap and GC log
and *systematically* asserts what
:meth:`~repro.heap.heap.GenerationalHeap.check_invariants` only
spot-checks:

* **monotonic clock** — the engine's simulated time never runs backwards
  and never goes non-finite;
* **STW exclusivity** — no mutator progress (heap allocation, card
  dirtying) while a stop-the-world pause is in flight, checked both live
  (at the allocation site) and post-hoc (allocation timestamps against
  recorded pause intervals);
* **byte conservation** — for every minor collection,
  ``survived + promoted + freed == pre-collection young used``; for full
  collections and sweeps, bytes leaving the heap equal the reported
  freed volumes;
* **GC-log well-formedness** — every :class:`~repro.gc.stats.PauseRecord`
  validates against :data:`PAUSE_RECORD_SCHEMA` and pauses never overlap.

Violations are collected (``strict=False``, the default) and raised
together by :meth:`InvariantAuditor.assert_clean`, or raised immediately
(``strict=True``). The auditor is pure observation: detaching restores
the instrumented objects bit-for-bit.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import HeapError, ReproError

#: Pause kinds the simulator is allowed to emit (HotSpot-style). The
#: last row is the fully-concurrent collectors' vocabulary: ZGC's three
#: sub-millisecond synchronisation points and Shenandoah's degenerated
#: (finish-evacuation-at-STW-speed) pause.
KNOWN_PAUSE_KINDS = frozenset(
    {"young", "full", "mixed", "initial-mark", "remark", "cleanup", "vm-op",
     "mark-start", "mark-end", "relocate-start", "degenerated"}
)

#: Declarative schema for one GC-log pause record: field -> (predicate,
#: description). Used by :func:`validate_pause_record`.
PAUSE_RECORD_SCHEMA = {
    "start": (lambda r, cap: math.isfinite(r.start) and r.start >= 0.0,
              "start must be a finite, non-negative simulated time"),
    "duration": (lambda r, cap: math.isfinite(r.duration) and r.duration >= 0.0,
                 "duration must be finite and non-negative"),
    "kind": (lambda r, cap: r.kind in KNOWN_PAUSE_KINDS,
             f"kind must be one of {sorted(KNOWN_PAUSE_KINDS)}"),
    "cause": (lambda r, cap: isinstance(r.cause, str) and bool(r.cause),
              "cause must be a non-empty HotSpot-style cause string"),
    "collector": (lambda r, cap: isinstance(r.collector, str) and bool(r.collector),
                  "collector must be a non-empty name"),
    "heap_used_before": (
        lambda r, cap: math.isfinite(r.heap_used_before)
        and r.heap_used_before >= 0.0
        and (cap is None or r.heap_used_before <= cap * (1.0 + 1e-3)),
        "heap_used_before must be finite, >= 0 and within heap capacity",
    ),
    "heap_used_after": (
        lambda r, cap: math.isfinite(r.heap_used_after)
        and r.heap_used_after >= 0.0
        and r.heap_used_after <= r.heap_used_before + 1.0,
        "heap_used_after must be finite, >= 0 and <= heap_used_before "
        "(a collection never creates bytes)",
    ),
    "promoted": (lambda r, cap: math.isfinite(r.promoted) and r.promoted >= 0.0,
                 "promoted must be finite and non-negative"),
}


def validate_pause_record(record, heap_capacity: Optional[float] = None) -> List[str]:
    """Check *record* against :data:`PAUSE_RECORD_SCHEMA`.

    Returns a list of problem descriptions (empty = well-formed).
    """
    problems = []
    for field, (pred, description) in PAUSE_RECORD_SCHEMA.items():
        try:
            ok = pred(record, heap_capacity)
        except (TypeError, AttributeError):
            ok = False
        if not ok:
            problems.append(f"{field}: {description} (got {getattr(record, field, '<missing>')!r})")
    return problems


#: Sentinel distinguishing "attribute was absent" (restore by deletion)
#: from "attribute was None" (restore by assignment — e.g. the engine's
#: ``step_hook``, whose slot must stay readable after detach).
_MISSING = object()


class AuditError(ReproError):
    """One or more runtime invariants were violated during an audited run."""


@dataclass(frozen=True)
class AuditViolation:
    """A single invariant violation observed at a simulated time."""

    check: str   #: clock | stw-exclusivity | byte-conservation | gc-log-schema | heap-invariant | stall-accounting
    time: float  #: simulated time of the observation
    detail: str

    def format(self) -> str:
        """Human-readable one-liner."""
        return f"[{self.check}] t={self.time:.6f}: {self.detail}"


class InvariantAuditor:
    """Attachable runtime auditor for a single JVM run.

    Typical use::

        jvm = JVM(config)
        auditor = InvariantAuditor()
        auditor.attach(jvm)
        result = jvm.run(workload, ...)
        auditor.assert_clean()      # raises AuditError on any violation

    or as a context manager::

        with InvariantAuditor().attached(jvm) as auditor:
            jvm.run(workload, ...)
    """

    def __init__(self, *, strict: bool = False):
        self.strict = strict
        self.violations: List[AuditViolation] = []
        self.counters: Dict[str, int] = {
            "steps": 0, "minor_collections": 0, "full_collections": 0,
            "sweeps": 0, "allocations": 0, "pauses": 0, "alloc_stalls": 0,
        }
        self._jvm = None
        self._originals: List[tuple] = []
        #: Sorted mutator allocation timestamps (STW-exclusivity post-check).
        self._alloc_times: List[float] = []
        self._last_pause_end = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, jvm) -> "InvariantAuditor":
        """Instrument *jvm*'s engine, heap and GC log. Returns self."""
        if self._jvm is not None:
            raise AuditError("auditor is already attached")
        self._jvm = jvm
        self._wrap_engine(jvm.engine)
        self._wrap_heap(jvm.heap, jvm)
        self._wrap_gc_log(jvm.gc_log, jvm)
        self._wrap_world(jvm.world)
        return self

    def detach(self) -> None:
        """Restore every instrumented method."""
        for obj, name, original in reversed(self._originals):
            if original is _MISSING:
                try:
                    delattr(obj, name)
                except AttributeError:  # pragma: no cover - defensive
                    pass
            else:
                setattr(obj, name, original)
        self._originals.clear()
        self._jvm = None

    def attached(self, jvm):
        """Context-manager form of :meth:`attach`/:meth:`detach`."""
        auditor = self

        class _Ctx:
            def __enter__(self):
                auditor.attach(jvm)
                return auditor

            def __exit__(self, exc_type, exc, tb):
                auditor.detach()
                return False

        return _Ctx()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when no violation has been observed."""
        return not self.violations

    def assert_clean(self) -> None:
        """Raise :class:`AuditError` when any invariant was violated."""
        if self.violations:
            lines = "\n".join(v.format() for v in self.violations[:20])
            more = len(self.violations) - 20
            if more > 0:
                lines += f"\n... and {more} more"
            raise AuditError(
                f"{len(self.violations)} invariant violation(s):\n{lines}"
            )

    def summary(self) -> str:
        """One-line audit report."""
        c = self.counters
        verdict = "clean" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"audit {verdict}: {c['steps']} events, "
            f"{c['minor_collections']} minor / {c['full_collections']} full "
            f"collections, {c['sweeps']} sweeps, {c['pauses']} pauses, "
            f"{c['allocations']} allocations checked"
        )

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------

    def _violate(self, check: str, time: float, detail: str) -> None:
        violation = AuditViolation(check, time, detail)
        self.violations.append(violation)
        if self.strict:
            raise AuditError(violation.format())

    @staticmethod
    def _epsilon(magnitude: float) -> float:
        """Absolute tolerance for byte accounting at a given magnitude."""
        return max(1.0, 1e-6 * abs(magnitude))

    def _patch(self, obj, name, replacement) -> None:
        self._originals.append((obj, name, obj.__dict__.get(name, _MISSING)))
        setattr(obj, name, replacement)

    # ------------------------------------------------------------------
    # Engine: monotonic, finite clock
    # ------------------------------------------------------------------

    def _wrap_engine(self, engine) -> None:
        # The engine is slotted and its run loop inlines step(), so the
        # clock check rides the first-class step_hook instead of a patch.
        def audited_step(before: float, after: float) -> None:
            self.counters["steps"] += 1
            if not math.isfinite(after):
                self._violate("clock", before,
                              f"engine clock became non-finite: {after!r}")
            elif after < before:
                self._violate(
                    "clock", before,
                    f"engine clock ran backwards: {before!r} -> {after!r}",
                )

        self._originals.append((engine, "step_hook", engine.step_hook))
        engine.step_hook = audited_step

    # ------------------------------------------------------------------
    # Heap: byte conservation + structural invariants + STW exclusivity
    # ------------------------------------------------------------------

    def _wrap_heap(self, heap, jvm) -> None:
        world = jvm.world

        def check_structure(now: float) -> None:
            try:
                heap.check_invariants(now)
            except HeapError as exc:
                self._violate("heap-invariant", now, str(exc))

        orig_minor = heap.minor_collection

        def audited_minor(now, tenuring_threshold, **kwargs):
            young_before = heap.young_used
            vol = orig_minor(now, tenuring_threshold, **kwargs)
            self.counters["minor_collections"] += 1
            accounted = (
                vol.copied_to_survivor + vol.promoted
                + vol.eden_freed + vol.survivor_freed
            )
            if abs(accounted - young_before) > self._epsilon(young_before):
                self._violate(
                    "byte-conservation", now,
                    "minor collection leaks bytes: survived+promoted+freed="
                    f"{accounted:.1f} but pre-collection young used was "
                    f"{young_before:.1f} (delta {accounted - young_before:+.1f})",
                )
            check_structure(now)
            return vol

        orig_full = heap.full_collection

        def audited_full(now, **kwargs):
            used_before = heap.used
            vol = orig_full(now, **kwargs)
            used_after = heap.used
            self.counters["full_collections"] += 1
            delta = used_before - used_after
            if abs(delta - vol.total_freed) > self._epsilon(used_before):
                self._violate(
                    "byte-conservation", now,
                    f"full collection accounting drift: heap shrank by "
                    f"{delta:.1f} bytes but reported {vol.total_freed:.1f} "
                    "freed",
                )
            check_structure(now)
            return vol

        orig_sweep = heap.sweep_old

        def audited_sweep(now, **kwargs):
            used_before = heap.old.used
            vol = orig_sweep(now, **kwargs)
            used_after = heap.old.used
            self.counters["sweeps"] += 1
            delta = used_before - used_after
            if abs(delta - vol.old_freed) > self._epsilon(used_before):
                self._violate(
                    "byte-conservation", now,
                    f"old-gen sweep drift: old.used shrank by {delta:.1f} "
                    f"bytes but reported {vol.old_freed:.1f} freed",
                )
            check_structure(now)
            return vol

        def record_mutator_allocation(now: float) -> None:
            self.counters["allocations"] += 1
            bisect.insort(self._alloc_times, now)
            if world.stw:
                self._violate(
                    "stw-exclusivity", now,
                    "mutator allocated during a stop-the-world pause",
                )

        orig_alloc = heap.allocate

        def audited_alloc(now, n_bytes, *args, **kwargs):
            record_mutator_allocation(now)
            return orig_alloc(now, n_bytes, *args, **kwargs)

        orig_alloc_old = heap.allocate_old

        def audited_alloc_old(now, n_bytes, *args, **kwargs):
            record_mutator_allocation(now)
            return orig_alloc_old(now, n_bytes, *args, **kwargs)

        orig_alloc_obj = heap.allocate_object

        def audited_alloc_obj(size, *args, **kwargs):
            record_mutator_allocation(jvm.engine.now)
            return orig_alloc_obj(size, *args, **kwargs)

        orig_dirty = heap.dirty_cards

        def audited_dirty(n_bytes):
            if world.stw:
                self._violate(
                    "stw-exclusivity", jvm.engine.now,
                    "mutator dirtied cards during a stop-the-world pause",
                )
            return orig_dirty(n_bytes)

        self._patch(heap, "minor_collection", audited_minor)
        self._patch(heap, "full_collection", audited_full)
        self._patch(heap, "sweep_old", audited_sweep)
        self._patch(heap, "allocate", audited_alloc)
        self._patch(heap, "allocate_old", audited_alloc_old)
        self._patch(heap, "allocate_object", audited_alloc_obj)
        self._patch(heap, "dirty_cards", audited_dirty)

    # ------------------------------------------------------------------
    # GC log: schema + pause exclusivity
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # World: allocation-stall accounting (fully-concurrent collectors)
    # ------------------------------------------------------------------

    def _wrap_world(self, world) -> None:
        original = world._record_stall

        def audited_record_stall(now, seconds):
            self.counters["alloc_stalls"] += 1
            if not (math.isfinite(seconds) and seconds >= 0.0):
                self._violate(
                    "stall-accounting", now,
                    f"allocation stall with non-finite/negative duration "
                    f"{seconds!r}",
                )
            if world.stw:
                self._violate(
                    "stw-exclusivity", now,
                    "allocation stall recorded while the world is stopped "
                    "(stalls are served after the safepoint releases)",
                )
            return original(now, seconds)

        self._patch(world, "_record_stall", audited_record_stall)

    # ------------------------------------------------------------------
    # GC log: schema + pause exclusivity
    # ------------------------------------------------------------------

    def _wrap_gc_log(self, gc_log, jvm) -> None:
        heap_capacity = jvm.config.heap_bytes
        original = gc_log.record

        def audited_record(record):
            self.counters["pauses"] += 1
            for problem in validate_pause_record(record, heap_capacity):
                self._violate(
                    "gc-log-schema", record.start,
                    f"malformed pause record — {problem}",
                )
            if record.start < self._last_pause_end - 1e-9:
                self._violate(
                    "stw-exclusivity", record.start,
                    f"pause starting at {record.start:.6f} overlaps the "
                    f"previous pause ending at {self._last_pause_end:.6f}",
                )
            self._last_pause_end = max(self._last_pause_end, record.end)
            # Post-hoc STW exclusivity: no mutator allocation strictly
            # inside this pause's interval.
            lo = bisect.bisect_right(self._alloc_times, record.start + 1e-12)
            hi = bisect.bisect_left(self._alloc_times, record.end - 1e-12)
            if hi > lo:
                self._violate(
                    "stw-exclusivity", record.start,
                    f"{hi - lo} mutator allocation(s) inside STW pause "
                    f"[{record.start:.6f}, {record.end:.6f}]",
                )
            return original(record)

        self._patch(gc_log, "record", audited_record)
