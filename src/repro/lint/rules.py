"""The simlint rule set (SL001-SL006).

Every rule guards one of the properties the reproduction's figures rest
on. The paper's contribution is measurement; a single unseeded RNG or
wall-clock read silently invalidates every number downstream, so these
are enforced mechanically rather than by review:

* **SL001** — no wall-clock time or OS entropy in simulation code;
* **SL002** — RNGs flow through :func:`repro.seeding.rng_for` (no ad-hoc
  ``np.random.default_rng`` with literal or missing seeds);
* **SL003** — no unordered-container iteration in the deterministic core
  (``sim/``, ``gc/``, ``jvm/``) without ``sorted()``;
* **SL004** — no ``==``/``!=`` on simulated-time floats;
* **SL005** — HotSpot flag-string literals must dry-parse via
  :meth:`repro.jvm.flags.JVMConfig.from_flags`;
* **SL006** — :class:`~repro.gc.base.Collector` subclasses overriding the
  pause-producing entry points keep the ``STWPause`` accounting protocol
  (checked over the intra-class call graph).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from .core import FileContext, Finding, Rule

# ----------------------------------------------------------------------
# Import-alias resolution shared by the name-based rules
# ----------------------------------------------------------------------


def build_alias_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` -> ``{"dt": "datetime.datetime"}``.
    Star imports and relative imports are ignored (the rules below only
    care about well-known stdlib/numpy entry points).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".", 1)[0]] = (
                    a.name if a.asname else a.name.split(".", 1)[0]
                )
                if a.asname:
                    aliases[a.asname] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call target, import aliases expanded."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = aliases.get(head)
    if expanded:
        return f"{expanded}.{rest}" if rest else expanded
    return name


# ----------------------------------------------------------------------
# SL001 — wall-clock / OS entropy
# ----------------------------------------------------------------------


class WallClockRule(Rule):
    """SL001: simulation code must not read wall-clock time or OS entropy.

    The engine's docstring promises "Nothing here depends on wall-clock
    time"; this rule makes the promise load-bearing for the whole tree.
    """

    rule_id = "SL001"
    title = "no wall-clock or OS entropy in simulation paths"

    #: Exact forbidden call targets.
    FORBIDDEN = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.sleep",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
    }
    #: Forbidden module prefixes: the stdlib global RNG and ``secrets``
    #: are OS-entropy-seeded; numpy's *legacy global* RNG is hidden
    #: process state (``default_rng`` is SL002's business).
    FORBIDDEN_PREFIXES = ("random.", "secrets.", "numpy.random.")
    #: numpy.random names that are fine: the Generator API itself.
    ALLOWED = {
        "numpy.random.default_rng", "numpy.random.Generator",
        "numpy.random.SeedSequence", "numpy.random.PCG64",
        "numpy.random.Philox", "numpy.random.BitGenerator",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = build_alias_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node, aliases)
            if name is None or name in self.ALLOWED:
                continue
            if name in self.FORBIDDEN:
                yield self.finding(
                    ctx, node,
                    f"call to `{name}` — simulation code must not read "
                    "wall-clock time or OS entropy (runs must be "
                    "bit-for-bit reproducible)",
                )
            elif name.startswith(self.FORBIDDEN_PREFIXES):
                yield self.finding(
                    ctx, node,
                    f"call to `{name}` uses hidden global RNG state — "
                    "derive a Generator via repro.seeding.rng_for instead",
                )


# ----------------------------------------------------------------------
# SL002 — ad-hoc RNG construction
# ----------------------------------------------------------------------


class SeededRngRule(Rule):
    """SL002: ``np.random.default_rng`` with a literal/missing seed is
    only allowed inside :mod:`repro.seeding`.

    Literal seeds correlate streams across components (every module
    seeding ``default_rng(0)`` draws the *same* jitter); missing seeds
    pull OS entropy. Both must flow through ``seeding.rng_for`` or
    explicit Generator injection.
    """

    rule_id = "SL002"
    title = "RNGs must flow through repro.seeding"

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.posix.endswith("repro/seeding.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = build_alias_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call_name(node, aliases) != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "unseeded `np.random.default_rng()` draws OS entropy — "
                    "use repro.seeding.rng_for(...) or inject a Generator",
                )
            elif node.args and isinstance(node.args[0], ast.Constant):
                yield self.finding(
                    ctx, node,
                    f"`np.random.default_rng({node.args[0].value!r})` with a "
                    "literal seed correlates streams across components — "
                    "use repro.seeding.rng_for(...) outside repro.seeding",
                )


# ----------------------------------------------------------------------
# SL003 — unordered iteration in the deterministic core
# ----------------------------------------------------------------------


class OrderedIterationRule(Rule):
    """SL003: no ``sorted()``-less iteration over unordered containers in
    ``sim/``, ``gc/`` and ``jvm/``.

    Set iteration order varies with ``PYTHONHASHSEED``; feeding it into
    event scheduling or float aggregation makes two "identical" runs
    diverge. (``dict`` preserves insertion order, but ``.keys()`` of a
    dict *built from* a set inherits the hazard — the rule flags the
    iteration site so the author proves the order, or sorts.)
    """

    rule_id = "SL003"
    title = "no unordered iteration feeding scheduling/aggregation"

    #: Call names whose return value is an unordered container.
    UNORDERED_CALLS = {"set", "frozenset"}
    UNORDERED_METHODS = {"keys", "intersection", "union", "difference",
                         "symmetric_difference"}

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_subdirs("sim", "gc", "jvm")

    def _unordered(self, expr: ast.AST) -> Optional[str]:
        """Describe *expr* when it is an unordered iterable, else None."""
        if isinstance(expr, ast.Set):
            return "set literal"
        if isinstance(expr, ast.SetComp):
            return "set comprehension"
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name in self.UNORDERED_CALLS:
                return f"{name}() result"
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in self.UNORDERED_METHODS):
                return f".{expr.func.attr}() result"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sites: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                sites.extend(gen.iter for gen in node.generators)
        for it in sites:
            desc = self._unordered(it)
            if desc:
                yield self.finding(
                    ctx, it,
                    f"iteration over {desc} has hash-seed-dependent order — "
                    "wrap in sorted(...) or use an ordered container",
                )


# ----------------------------------------------------------------------
# SL004 — float equality on simulated time
# ----------------------------------------------------------------------


class SimTimeEqualityRule(Rule):
    """SL004: no ``==``/``!=`` on simulated-time floats.

    Simulated time is a float accumulated through additions; exact
    equality silently stops matching after a few hundred events. Compare
    with tolerances (``abs(a - b) < eps``) or ordering.
    """

    rule_id = "SL004"
    title = "no ==/!= on simulated-time floats"

    #: A comparand "is simulated time" when its trailing name matches.
    TIME_TAILS = {"now", "sim_time"}
    TIME_SUFFIXES = ("_time", "_at", "_deadline")

    def _is_time_expr(self, expr: ast.AST) -> bool:
        name = dotted_name(expr)
        if name is None:
            if isinstance(expr, ast.Call):  # engine.peek() etc.
                inner = dotted_name(expr.func)
                return bool(inner) and inner.rsplit(".", 1)[-1] == "peek"
            return False
        tail = name.rsplit(".", 1)[-1]
        return tail in self.TIME_TAILS or tail.endswith(self.TIME_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None` / `x == "str"` are not float comparisons.
                for a, b in ((left, right), (right, left)):
                    other_const = isinstance(b, ast.Constant) and not isinstance(
                        b.value, (int, float)
                    )
                    if self._is_time_expr(a) and not other_const:
                        yield self.finding(
                            ctx, node,
                            "==/!= on simulated-time floats drifts after "
                            "repeated addition — compare with a tolerance "
                            "or ordering",
                        )
                        break


# ----------------------------------------------------------------------
# SL005 — HotSpot flag literals must dry-parse
# ----------------------------------------------------------------------


class FlagLiteralRule(Rule):
    """SL005: HotSpot flag-string literals must parse via
    ``JVMConfig.from_flags``.

    A typo'd ``-XX:`` string in a benchmark silently runs the *default*
    collector and measures the wrong thing; dry-parsing at lint time
    catches it before any simulation runs.
    """

    rule_id = "SL005"
    title = "HotSpot flag literals must dry-parse"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.List, ast.Tuple)) or not node.elts:
                continue
            values: List[str] = []
            for el in node.elts:
                if isinstance(el, ast.Constant) and isinstance(el.value, str):
                    values.append(el.value)
                else:
                    values = []
                    break
            if not values or not any(v.startswith("-X") for v in values):
                continue
            error = self._dry_parse(values)
            if error:
                yield self.finding(
                    ctx, node,
                    f"HotSpot flag literal does not parse: {error}",
                )

    @staticmethod
    def _dry_parse(flags: Sequence[str]) -> Optional[str]:
        # Imported lazily: the lint frontend must work even when numpy
        # is unavailable for every rule that does not need it.
        from ..errors import ConfigError
        from ..jvm.flags import JVMConfig

        try:
            JVMConfig.from_flags(list(flags))
        except (ConfigError, ValueError) as exc:
            # ValueError: malformed ints in `-XX:...=<n>` style flags.
            return str(exc)
        return None


# ----------------------------------------------------------------------
# SL006 — STWPause accounting protocol
# ----------------------------------------------------------------------


class PauseProtocolRule(Rule):
    """SL006: Collector subclasses overriding the pause-producing entry
    points must keep the ``STWPause`` accounting protocol.

    Every stop-the-world pause the JVM executes is priced from an
    :class:`~repro.gc.base.STWPause`; an override that returns pauses
    without constructing one (or delegating to the base mechanics that
    do) would let GC work go missing from the log — the simulator's
    equivalent of a collector that skips its verification pass. The
    check walks the *intra-class call graph*: the override must reach an
    ``STWPause(...)`` construction or a base pause-producing method.

    A collector may opt out by declaring ``pauseless = True`` in its
    class body — an explicit, reviewable statement that producing *no*
    pauses is the design (the Epsilon-style ideal-GC oracle the LBO
    methodology divides by), not an accounting leak.
    """

    rule_id = "SL006"
    title = "Collector overrides keep STWPause accounting"

    #: Entry points whose overrides are audited.
    ENTRY_POINTS = {"_minor", "_full", "allocation_failure", "explicit_gc",
                    "_promotion_failure_full"}
    #: Calls that are known to produce/track pauses (base mechanics).
    TERMINALS = {"_minor", "_full", "_promotion_failure_full",
                 "allocation_failure", "explicit_gc"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        collector_classes = self._collector_classes(ctx.tree)
        for cls in collector_classes:
            if self._declares_pauseless(cls):
                continue
            methods = {
                n.name: n for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in sorted(self.ENTRY_POINTS.intersection(methods)):
                node = methods[name]
                if not self._reaches_pause(node, methods, entry=name):
                    yield self.finding(
                        ctx, node,
                        f"`{cls.name}.{name}` overrides a pause-producing "
                        "entry point but never constructs an STWPause nor "
                        "delegates to the base accounting (_minor/_full) — "
                        "GC work would vanish from the log",
                    )

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _declares_pauseless(cls: ast.ClassDef) -> bool:
        """True when the class body literally sets ``pauseless = True``."""
        for stmt in cls.body:
            targets = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (isinstance(target, ast.Name) and target.id == "pauseless"
                        and isinstance(value, ast.Constant)
                        and value.value is True):
                    return True
        return False

    def _collector_classes(self, tree: ast.AST) -> List[ast.ClassDef]:
        """Classes that (heuristically) extend the Collector protocol.

        Direct bases named ``Collector`` count, as does any class whose
        base is itself a recognised collector in the same file (so
        ``class Foo(SerialGC)`` is audited too).
        """
        classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        names: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for cls in classes:
                if cls.name in names:
                    continue
                for base in cls.bases:
                    b = dotted_name(base)
                    b_tail = b.rsplit(".", 1)[-1] if b else ""
                    if b_tail == "Collector" or b_tail in names:
                        names.add(cls.name)
                        changed = True
                        break
        return [c for c in classes if c.name in names]

    def _reaches_pause(
        self,
        fn: ast.AST,
        methods: Dict[str, ast.AST],
        *,
        entry: str,
    ) -> bool:
        """Can *fn* reach STWPause construction via intra-class calls?"""
        seen: Set[str] = set()

        def visit(node: ast.AST) -> bool:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = dotted_name(sub.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail == "STWPause":
                    return True
                head = name.split(".", 1)[0]
                if head in ("self", "super") or name == tail:
                    # A call into the base implementation of a terminal
                    # (not the override itself recursing) keeps accounting.
                    if tail in self.TERMINALS and (
                        head == "super" or tail != entry
                    ) and tail not in methods:
                        return True
                    if head == "super" and tail in self.TERMINALS:
                        return True
                    if tail in methods and tail not in seen:
                        seen.add(tail)
                        if visit(methods[tail]):
                            return True
            return False

        return visit(fn)


# ----------------------------------------------------------------------


def default_rules() -> List[Rule]:
    """The standard simlint rule set, in rule-id order."""
    return [
        WallClockRule(),
        SeededRngRule(),
        OrderedIterationRule(),
        SimTimeEqualityRule(),
        FlagLiteralRule(),
        PauseProtocolRule(),
    ]


RULES_BY_ID = {rule.rule_id: type(rule) for rule in default_rules()}
