"""repro.lint — correctness tooling for the simulator.

Two halves, one discipline:

* **simlint** (static): an AST-based analysis pass with pluggable rules
  (SL001-SL006) enforcing the determinism and accounting properties the
  reproduction's figures depend on. Run it with ``repro-lint`` or
  ``python -m repro.lint``. See :mod:`repro.lint.rules` for the rule
  set, :mod:`repro.lint.suppress` for ``# simlint: disable=...`` and
  :mod:`repro.lint.baseline` for the committed-baseline workflow.
* **InvariantAuditor** (dynamic): runtime verification hooks for JVM
  debug runs — the simulator's ``-XX:+VerifyBeforeGC``/``AfterGC``. See
  :mod:`repro.lint.audit`.
"""

from .audit import (
    AuditError,
    AuditViolation,
    InvariantAuditor,
    PAUSE_RECORD_SCHEMA,
    validate_pause_record,
)
from .baseline import DEFAULT_BASELINE, finding_key, load_baseline, write_baseline
from .core import FileContext, Finding, LintResult, Rule, lint_file, run_lint
from .rules import RULES_BY_ID, default_rules
from .suppress import SuppressionTable

__all__ = [
    "AuditError",
    "AuditViolation",
    "DEFAULT_BASELINE",
    "FileContext",
    "Finding",
    "InvariantAuditor",
    "LintResult",
    "PAUSE_RECORD_SCHEMA",
    "Rule",
    "RULES_BY_ID",
    "SuppressionTable",
    "default_rules",
    "finding_key",
    "lint_file",
    "load_baseline",
    "run_lint",
    "validate_pause_record",
    "write_baseline",
]
