"""repro.lint — correctness tooling for the simulator.

Two halves, one discipline:

* **simlint** (static): an AST-based analysis pass with pluggable rules
  enforcing the determinism and accounting properties the reproduction's
  figures depend on. The SL0xx family checks one file at a time
  (:mod:`repro.lint.rules`); the SL1xx family runs over a whole-program
  call graph (:mod:`repro.lint.graph`, :mod:`repro.lint.rules_wp`) —
  async-blocking reachability, determinism taint
  (:mod:`repro.lint.taint`), lock discipline and executor pickle-safety.
  Run it with ``repro-lint`` (add ``--wp`` for the whole-program pass) or
  ``python -m repro.lint``. See :mod:`repro.lint.suppress` for
  ``# simlint: disable=...`` / ``off``/``on`` blocks,
  :mod:`repro.lint.baseline` for the content-anchored committed-baseline
  workflow, :mod:`repro.lint.config` for ``[tool.simlint]`` and
  :mod:`repro.lint.sarif` for SARIF 2.1.0 CI output.
* **InvariantAuditor** (dynamic): runtime verification hooks for JVM
  debug runs — the simulator's ``-XX:+VerifyBeforeGC``/``AfterGC``. See
  :mod:`repro.lint.audit`.
"""

from .audit import (
    AuditError,
    AuditViolation,
    InvariantAuditor,
    PAUSE_RECORD_SCHEMA,
    validate_pause_record,
)
from .baseline import (
    DEFAULT_BASELINE,
    assign_keys,
    finding_key,
    load_baseline,
    load_justifications,
    write_baseline,
)
from .config import LintConfig
from .core import (
    FileContext,
    Finding,
    LintError,
    LintResult,
    ProjectRule,
    Rule,
    lint_file,
    run_lint,
)
from .graph import ProjectContext
from .rules import RULES_BY_ID, default_rules
from .rules_wp import WP_RULES_BY_ID, default_wp_rules
from .suppress import Directive, SuppressionTable
from .taint import TaintAnalysis, TaintWitness

__all__ = [
    "AuditError",
    "AuditViolation",
    "DEFAULT_BASELINE",
    "Directive",
    "FileContext",
    "Finding",
    "InvariantAuditor",
    "LintConfig",
    "LintError",
    "LintResult",
    "PAUSE_RECORD_SCHEMA",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "RULES_BY_ID",
    "SuppressionTable",
    "TaintAnalysis",
    "TaintWitness",
    "WP_RULES_BY_ID",
    "assign_keys",
    "default_rules",
    "default_wp_rules",
    "finding_key",
    "lint_file",
    "load_baseline",
    "load_justifications",
    "run_lint",
    "validate_pause_record",
    "write_baseline",
]
