"""Baseline file handling for simlint.

A baseline records *accepted* findings so a new rule can land without
first fixing (or suppressing) every historical violation: findings whose
key appears in the baseline are reported separately and do not fail the
run. The key is content-based — ``rule-id`` + path + a hash of the
offending source line — so it survives unrelated edits that renumber
lines, and goes stale (correctly) when the offending line itself changes.

Format: one entry per line, ``rule-id:path:content-hash``; ``#`` comments
and blank lines are ignored. The file is committed; regenerate with
``repro-lint --write-baseline`` and review the diff like any other code
change.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Iterable, List, Set

from .core import Finding

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = ".simlint-baseline"

_HEADER = (
    "# simlint baseline — accepted findings, one `rule:path:hash` per line.\n"
    "# Regenerate with `repro-lint --write-baseline`; keep this file under\n"
    "# review: every entry is a debt marker, not a licence.\n"
)


def finding_key(finding: Finding) -> str:
    """Stable content-based key for one finding."""
    digest = hashlib.sha256(
        f"{finding.rule_id}|{finding.source_line}".encode("utf-8")
    ).hexdigest()[:16]
    path = pathlib.PurePath(finding.path).as_posix()
    return f"{finding.rule_id}:{path}:{digest}"


def load_baseline(path) -> Set[str]:
    """Read baseline keys from *path* (missing file -> empty set)."""
    p = pathlib.Path(path)
    if not p.exists():
        return set()
    keys: Set[str] = set()
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(path, findings: Iterable[Finding]) -> List[str]:
    """Write a baseline accepting *findings*; returns the sorted keys."""
    keys = sorted({finding_key(f) for f in findings})
    body = _HEADER + "".join(f"{k}\n" for k in keys)
    pathlib.Path(path).write_text(body, encoding="utf-8")
    return keys
