"""Baseline file handling for simlint.

A baseline records *accepted* findings so a new rule can land without
first fixing (or suppressing) every historical violation: findings whose
key appears in the baseline are reported separately and do not fail the
run. Keys are **content-anchored**: ``rule-id : path : normalized-line
hash : occurrence index``. The hash is over the offending source line
with whitespace collapsed, so edits elsewhere in the file (the classic
line-number churn) never touch the baseline; the occurrence index
disambiguates identical lines (two ``time.sleep(1)`` in one file are two
entries), counted in line order per ``(rule, path, hash)`` group. A key
goes stale — correctly — only when the offending line itself changes.

Format: one entry per line::

    SL002:tests/test_ycsb.py:9c4f1a2b33d08e71:0  # fixture seed, single stream

``#`` starts a justification comment; the driver ignores it for matching
but the committed file is expected to carry one per entry (enforced by
``tests/test_lint.py``) — a baseline entry is a debt marker, and debt
without a reason is just rot. Regenerate with ``repro-lint
--write-baseline`` and review the diff like any other code change.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .core import Finding

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = ".simlint-baseline"

_HEADER = (
    "# simlint baseline — accepted findings, one `rule:path:hash:n` per line.\n"
    "# The hash is over the whitespace-normalized offending line; `n` is the\n"
    "# occurrence index among identical lines. Justify every entry after `#`.\n"
    "# Regenerate with `repro-lint --write-baseline`; keep this file under\n"
    "# review: every entry is a debt marker, not a licence.\n"
)

#: Placeholder emitted by ``--write-baseline``; committers replace it.
_JUSTIFY_PLACEHOLDER = "justify: <why is this finding accepted?>"


def normalize_line(text: str) -> str:
    """Whitespace-collapsed form of a source line (the hashed content)."""
    return " ".join(text.split())


def _content_hash(finding: Finding) -> str:
    return hashlib.sha256(
        f"{finding.rule_id}|{normalize_line(finding.source_line)}".encode("utf-8")
    ).hexdigest()[:16]


def finding_key(finding: Finding, occurrence: int = 0) -> str:
    """Content-anchored key for one finding at a given occurrence index."""
    path = pathlib.PurePath(finding.path).as_posix()
    return f"{finding.rule_id}:{path}:{_content_hash(finding)}:{occurrence}"


def assign_keys(findings: Sequence[Finding]) -> List[Tuple[Finding, str]]:
    """Pair every finding with its occurrence-indexed key.

    Occurrences are counted in ``(path, line)`` order within each
    ``(rule, path, content-hash)`` group, so writing and matching agree
    regardless of the order findings were produced in.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
    counters: Dict[Tuple[str, str, str], int] = {}
    keyed = {}
    for f in ordered:
        group = (f.rule_id, pathlib.PurePath(f.path).as_posix(), _content_hash(f))
        n = counters.get(group, 0)
        counters[group] = n + 1
        keyed[id(f)] = finding_key(f, n)
    return [(f, keyed[id(f)]) for f in findings]


def load_baseline(path) -> Set[str]:
    """Read baseline keys from *path* (missing file -> empty set).

    Justification comments (anything after ``#``) are stripped; they are
    for reviewers, not the matcher.
    """
    p = pathlib.Path(path)
    if not p.exists():
        return set()
    keys: Set[str] = set()
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            keys.add(line)
    return keys


def load_justifications(path) -> Dict[str, str]:
    """Key → justification comment for every baseline entry (may be '')."""
    p = pathlib.Path(path)
    out: Dict[str, str] = {}
    if not p.exists():
        return out
    for line in p.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("#"):
            continue
        key, _, comment = line.partition("#")
        key = key.strip()
        if key:
            out[key] = comment.strip()
    return out


def write_baseline(path, findings: Iterable[Finding],
                   justifications: Dict[str, str] = None) -> List[str]:
    """Write a baseline accepting *findings*; returns the sorted keys.

    Existing justifications (pass ``load_justifications`` output) are
    preserved across a regeneration; new entries get a placeholder the
    committer must replace.
    """
    known = dict(justifications or {})
    keys = sorted({key for _, key in assign_keys(list(findings))})
    lines = [_HEADER]
    for k in keys:
        note = known.get(k, _JUSTIFY_PLACEHOLDER)
        lines.append(f"{k}  # {note}\n")
    pathlib.Path(path).write_text("".join(lines), encoding="utf-8")
    return keys
