"""``python -m repro.lint`` — same as the ``repro-lint`` console script."""

import sys

from .cli import main

sys.exit(main())
