"""Determinism-taint propagation over the project call graph (SL102).

SL001 bans *direct* wall-clock/entropy reads file by file. What it cannot
see is the indirect leak: a helper in ``telemetry/`` or ``util/`` that
reads ``time.time()``, called from a helper, called from ``sim/``. This
module turns SL001's source set into a two-point taint lattice
(``CLEAN < TAINTED``) and propagates it backwards over resolved call
edges, so the deterministic core's purity becomes a whole-program
reachability query instead of a per-file pattern match.

The lattice is deliberately minimal: a function is TAINTED the moment
any call it can reach resolves to a source, and joins are set union over
witness paths. Injected clocks (``self._clock`` bound to a constructor
parameter) stay CLEAN — there is no static binding to a source — which
is exactly the sanctioned pattern (:data:`repro.serve.service.WALL_CLOCK`
is referenced, passed, and only *called* outside simulation paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .graph import MAX_DEPTH, CallSite, ProjectContext

#: Call targets whose *invocation* taints a function. This is SL001's
#: forbidden set (kept in sync by a test) plus the module prefixes whose
#: every entry point is entropy-backed.
SOURCES = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
}
SOURCE_PREFIXES = ("random.", "secrets.")


def is_source_name(name: str) -> bool:
    """Whether a resolved dotted call target is a determinism source."""
    return name in SOURCES or name.startswith(SOURCE_PREFIXES)


def site_source(site: CallSite) -> Optional[str]:
    """The source name a call site invokes, if any (checks aliases too:
    ``WALL_CLOCK()`` with ``WALL_CLOCK = time.monotonic`` is a source)."""
    if is_source_name(site.name):
        return site.name
    for alt in site.alt_names:
        if is_source_name(alt):
            return alt
    return None


@dataclass(frozen=True)
class TaintWitness:
    """Proof that a function is tainted: the chain of call sites from its
    body to the wall-clock/entropy read, plus the resolved source name."""

    chain: Tuple[CallSite, ...]
    source: str

    @property
    def entry(self) -> CallSite:
        """The first hop — the call in the tainted function's own body."""
        return self.chain[0]

    @property
    def sink(self) -> CallSite:
        """The terminal hop — the actual source invocation."""
        return self.chain[-1]

    @property
    def hops(self) -> int:
        return len(self.chain)

    def describe(self) -> str:
        """Human-readable `a -> b -> time.time` route."""
        names = [s.name for s in self.chain[:-1]] + [self.source]
        return " -> ".join(names)


class TaintAnalysis:
    """Query-oriented taint results over one :class:`ProjectContext`.

    Witnesses are memoized per function; ``min_hops`` lets SL102 skip
    direct reads (hop count 1), which SL001 already owns.
    """

    def __init__(self, project: ProjectContext,
                 max_depth: int = MAX_DEPTH):
        self.project = project
        self.max_depth = max_depth
        self._memo: Dict[Tuple[str, int], Optional[TaintWitness]] = {}

    def witness(self, qname: str, *, min_hops: int = 0,
                ) -> Optional[TaintWitness]:
        """The first taint witness for *qname* (BFS order), or None."""
        key = (qname, min_hops)
        if key not in self._memo:
            chain = self.project.find_path(
                qname, lambda site: site_source(site) is not None,
                max_depth=self.max_depth, min_hops=min_hops)
            if chain is None:
                self._memo[key] = None
            else:
                self._memo[key] = TaintWitness(
                    chain=tuple(chain),
                    source=site_source(chain[-1]) or chain[-1].name)
        return self._memo[key]

    def tainted(self, qname: str) -> bool:
        """CLEAN/TAINTED verdict for one function."""
        return self.witness(qname) is not None

    def core_leaks(self, *parts: str, min_hops: int = 1,
                   ) -> List[Tuple[str, TaintWitness]]:
        """``(function qname, witness)`` for every function under the
        given directory parts that transitively reaches a source.

        ``min_hops=1`` (the SL102 default) reports only *indirect* leaks:
        the source must sit at least one call away, i.e. inside another
        function — direct reads are SL001 findings already.
        """
        leaks: List[Tuple[str, TaintWitness]] = []
        for fn in self.project.functions_under(*parts):
            w = self.witness(fn.qname, min_hops=min_hops)
            if w is not None:
                leaks.append((fn.qname, w))
        return leaks
