"""The ``repro-lint`` command-line frontend.

Usage::

    repro-lint                                   # paths from [tool.simlint]
    repro-lint src benchmarks examples           # lint, exit 1 on findings
    repro-lint --wp src                          # + whole-program SL1xx pass
    repro-lint --format sarif --output out.sarif # SARIF 2.1.0 for CI upload
    repro-lint --list-rules                      # describe the rule set
    repro-lint --select SL001,SL102 src          # subset of rules
    repro-lint --write-baseline src              # accept current findings
    repro-lint --report-unused-suppressions src  # stale-suppression audit
    repro-lint --statistics src                  # per-rule counts

Exit codes: **0** clean (baselined/suppressed findings do not fail the
run), **1** findings reported, **2** internal failure — an unparseable
file, a crashed rule, no input files, or a usage error. The 1/2 split is
what CI keys on: 1 means "the tree has violations", 2 means "the lint
pass itself is broken and its verdict cannot be trusted".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .baseline import (DEFAULT_BASELINE, load_baseline, load_justifications,
                       write_baseline)
from .config import LintConfig
from .core import run_lint
from .rules import default_rules
from .rules_wp import default_wp_rules


def build_parser() -> argparse.ArgumentParser:
    """The repro-lint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & invariant static analysis for the repro simulator.",
    )
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint "
                             "(default: [tool.simlint] paths, else src benchmarks examples)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept every current finding into the baseline and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--wp", action="store_true",
                        help="also run the whole-program SL1xx pass (call graph + taint)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker threads for the per-file pass (default: auto)")
    parser.add_argument("--ast-cache", default=None, metavar="DIR",
                        help="cache dir for whole-program per-file IR, keyed on source hash")
    parser.add_argument("--format", choices=("text", "sarif"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--report-unused-suppressions", action="store_true",
                        help="report (and fail on) suppression comments that matched nothing")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore [tool.simlint] in pyproject.toml")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule finding counts")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line (findings still print)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    file_rules = default_rules()
    wp_rules = default_wp_rules()
    if args.list_rules:
        for rule in file_rules:
            print(f"{rule.rule_id}  {rule.title}")
        for rule in wp_rules:
            print(f"{rule.rule_id}  {rule.title}  [whole-program]")
        return 0

    rules = list(file_rules)
    if args.wp:
        rules += wp_rules
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        known = {r.rule_id for r in file_rules} | {r.rule_id for r in wp_rules}
        unknown = wanted.difference(known)
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        # Selecting an SL1xx id turns the whole-program pass on implicitly.
        pool = file_rules + wp_rules
        rules = [r for r in pool if r.rule_id in wanted]

    config = None if args.no_config else LintConfig.load()
    paths = args.paths
    if not paths and config is not None and config.paths:
        paths = list(config.paths)
    if not paths:
        paths = ["src", "benchmarks", "examples"]

    baseline = set() if (args.no_baseline or args.write_baseline) \
        else load_baseline(args.baseline)
    result = run_lint(paths, rules, baseline=baseline, wp=args.wp,
                      config=config, jobs=args.jobs,
                      cache_dir=args.ast_cache)

    if result.files_checked == 0:
        print(f"repro-lint: no Python files under: {' '.join(paths)}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        known = load_justifications(args.baseline)
        keys = write_baseline(args.baseline, result.findings,
                              justifications=known)
        print(f"wrote {len(keys)} baseline entries to {args.baseline}")
        return 0

    out = sys.stdout
    close_out = False
    if args.output:
        out = open(args.output, "w", encoding="utf-8")
        close_out = True
    try:
        if args.format == "sarif":
            from .sarif import to_sarif
            json.dump(to_sarif(result, rules), out, indent=2)
            out.write("\n")
        else:
            for finding in result.findings:
                print(finding.format(), file=out)
    finally:
        if close_out:
            out.close()

    for error in result.errors:
        print(f"repro-lint: error: {error.format()}", file=sys.stderr)

    unused_failed = False
    if args.report_unused_suppressions:
        for stale in result.unused_suppressions:
            print(stale.format(), file=sys.stderr)
            unused_failed = True

    if args.statistics and result.findings:
        print()
        for rule_id, count in sorted(result.by_rule().items()):
            print(f"{rule_id}: {count}")

    if not args.quiet:
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        if result.wp_files:
            extras.append(f"{result.wp_files} in call graph")
        detail = f" ({', '.join(extras)})" if extras else ""
        verdict = "clean" if result.ok else (
            f"{len(result.errors)} error(s)" if result.errors
            else f"{len(result.findings)} finding(s)")
        print(f"repro-lint: {result.files_checked} files, {verdict}{detail}")

    if result.errors:
        return 2
    if result.findings or unused_failed:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
