"""The ``repro-lint`` command-line frontend.

Usage::

    repro-lint src benchmarks examples           # lint, exit 1 on findings
    repro-lint --list-rules                      # describe the rule set
    repro-lint --select SL001,SL002 src          # subset of rules
    repro-lint --write-baseline src              # accept current findings
    repro-lint --statistics src                  # per-rule counts

Exit codes: 0 clean (baselined/suppressed findings do not fail the run),
1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from .core import run_lint
from .rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    """The repro-lint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & invariant static analysis for the repro simulator.",
    )
    parser.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src benchmarks examples)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept every current finding into the baseline and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule finding counts")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line (findings still print)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted.difference(r.rule_id for r in rules)
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.rule_id in wanted]

    paths = args.paths or ["src", "benchmarks", "examples"]
    baseline = set() if (args.no_baseline or args.write_baseline) else load_baseline(args.baseline)
    result = run_lint(paths, rules, baseline=baseline)

    if result.files_checked == 0:
        print(f"repro-lint: no Python files under: {' '.join(paths)}", file=sys.stderr)
        return 2

    if args.write_baseline:
        keys = write_baseline(args.baseline, result.findings)
        print(f"wrote {len(keys)} baseline entries to {args.baseline}")
        return 0

    for finding in result.findings:
        print(finding.format())

    if args.statistics and result.findings:
        print()
        for rule_id, count in sorted(result.by_rule().items()):
            print(f"{rule_id}: {count}")

    if not args.quiet:
        extras = []
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed")
        if result.baselined:
            extras.append(f"{len(result.baselined)} baselined")
        detail = f" ({', '.join(extras)})" if extras else ""
        verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
        print(f"repro-lint: {result.files_checked} files, {verdict}{detail}")

    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
