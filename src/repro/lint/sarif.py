"""SARIF 2.1.0 output for simlint (``repro-lint --format sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — GitHub's ``upload-sarif`` action turns
the file this module writes into inline PR annotations. The emitted
subset is deliberately small and fully spec-conformant:

* one ``run`` with a ``tool.driver`` listing every active rule
  (id, short description, help URI placeholder);
* one ``result`` per reportable finding with a ``physicalLocation``;
  whole-program findings add a ``relatedLocations`` entry for the other
  end of the offending path;
* baselined findings are included with ``baselineState: "unchanged"``
  and suppressed ones are omitted entirely (they are invisible debt by
  choice, not results).

:func:`validate` checks a document against an embedded subset of the
SARIF 2.1.0 schema — the required-property and type skeleton that
``upload-sarif`` actually trips on — so the test suite can assert schema
conformance without a ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence

from .core import Finding, LintResult, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "simlint"
_INFO_URI = "https://example.invalid/simlint"


def _location(path: str, line: int) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": pathlib.PurePath(path).as_posix(),
                "uriBaseId": "%SRCROOT%",
            },
            "region": {"startLine": max(1, line)},
        }
    }


def _result(finding: Finding, *, baseline_state: Optional[str] = None) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line)],
    }
    if finding.related_path:
        related = _location(finding.related_path, finding.related_line)
        related["message"] = {"text": "other end of the offending path"}
        result["relatedLocations"] = [related]
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def to_sarif(result: LintResult, rules: Sequence[Rule],
             *, tool_version: str = "2.0") -> dict:
    """Render a :class:`LintResult` as a SARIF 2.1.0 document (dict)."""
    seen: Dict[str, dict] = {}
    for rule in rules:
        if rule.rule_id not in seen:
            seen[rule.rule_id] = {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.title},
                "helpUri": _INFO_URI,
            }
    # Rules referenced by findings but not in the active set (SL000
    # parse errors) still need driver entries.
    for f in list(result.findings) + list(result.baselined):
        if f.rule_id not in seen:
            seen[f.rule_id] = {
                "id": f.rule_id,
                "shortDescription": {"text": "simlint diagnostic"},
                "helpUri": _INFO_URI,
            }
    rule_entries = [seen[k] for k in sorted(seen)]
    results = [_result(f) for f in result.findings]
    results += [_result(f, baseline_state="unchanged")
                for f in result.baselined]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "version": tool_version,
                    "informationUri": _INFO_URI,
                    "rules": rule_entries,
                }
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(path, result: LintResult, rules: Sequence[Rule]) -> dict:
    """Serialize :func:`to_sarif` output to *path*; returns the dict."""
    doc = to_sarif(result, rules)
    pathlib.Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return doc


# ----------------------------------------------------------------------
# Embedded subset-schema validation (no jsonschema dependency)
# ----------------------------------------------------------------------

#: The structural skeleton of the SARIF 2.1.0 schema that consumers
#: (GitHub code scanning in particular) actually enforce. Each node:
#: ``type``, optional ``required``, optional ``properties`` (dict of
#: child nodes), optional ``items`` (node for array elements), optional
#: ``enum``. Unknown properties are allowed, as in the real schema.
_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"type": "string", "enum": ["2.1.0"]},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {"type": "string"},
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "type": "string",
                                    "enum": ["none", "note", "warning", "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "baselineState": {
                                    "type": "string",
                                    "enum": ["new", "unchanged",
                                             "updated", "absent"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {"$ref": "location"},
                                },
                                "relatedLocations": {
                                    "type": "array",
                                    "items": {"$ref": "location"},
                                },
                            },
                        },
                    },
                },
            },
        },
    },
    "definitions": {
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {
                                "uri": {"type": "string"},
                                "uriBaseId": {"type": "string"},
                            },
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {"type": "integer"},
                            },
                        },
                    },
                },
            },
        },
    },
}

_TYPES = {
    "object": dict, "array": list, "string": str,
    "integer": int, "number": (int, float), "boolean": bool,
}


def validate(doc: dict, schema: Optional[dict] = None) -> List[str]:
    """Validate *doc* against the embedded SARIF subset schema.

    Returns a list of ``path: problem`` strings (empty = valid).
    """
    root = schema or _SUBSET_SCHEMA
    definitions = root.get("definitions", {})
    errors: List[str] = []

    def check(node: dict, value, path: str) -> None:
        if "$ref" in node:
            node = definitions[node["$ref"]]
        expected = node.get("type")
        if expected is not None:
            py = _TYPES[expected]
            if not isinstance(value, py) or (
                    expected == "integer" and isinstance(value, bool)):
                errors.append(f"{path}: expected {expected}, "
                              f"got {type(value).__name__}")
                return
        if "enum" in node and value not in node["enum"]:
            errors.append(f"{path}: {value!r} not in {node['enum']}")
        if expected == "object":
            for req in node.get("required", ()):
                if req not in value:
                    errors.append(f"{path}: missing required property "
                                  f"{req!r}")
            for key, sub in node.get("properties", {}).items():
                if key in value:
                    check(sub, value[key], f"{path}.{key}")
        elif expected == "array" and "items" in node:
            for i, item in enumerate(value):
                check(node["items"], item, f"{path}[{i}]")

    check(root, doc, "$")
    return errors
