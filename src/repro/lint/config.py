"""``[tool.simlint]`` configuration loaded from ``pyproject.toml``.

The table makes lint *scope* a reviewed, committed decision instead of a
CLI habit::

    [tool.simlint]
    paths = ["src", "benchmarks", "examples", "tests"]
    exclude = ["tests/lint_fixtures", "tests/fixtures"]
    wp_paths = ["src"]
    wp_core = ["sim", "gc", "jvm", "fleet"]
    wp_async = ["serve", "cluster"]

    [tool.simlint.profiles]
    tests = ["SL001", "SL002"]

* ``paths`` — default lint targets when the CLI gets none;
* ``exclude`` — directory prefixes never linted (rule-violating test
  fixtures live here on purpose);
* ``wp_paths`` — the file set the whole-program SL1xx pass builds its
  call graph from (the deterministic core + service layers; test code
  does not belong in the production call graph);
* ``wp_core`` — package names forming the deterministic core for the
  SL102 taint rule (empty list keeps the rule's built-in default);
* ``wp_async`` — package names whose ``async def`` functions own an
  event loop, scoping the SL101 blocking-call and SL104 fire-and-forget
  rules (empty list keeps the rules' built-in ``serve`` default);
* ``profiles`` — per-directory rule subsets: ``tests`` runs only the
  determinism-critical SL001/SL002 (fixed seeds and no entropy matter in
  tests too; pause-accounting or flag-literal rules do not).

Parsed with :mod:`tomllib` (3.11+) or ``tomli`` when available; on older
interpreters a minimal built-in reader handles exactly the subset above
(string and string-list values), so the lint frontend never gains a hard
dependency.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set


def _parse_toml(text: str) -> dict:
    """Parse TOML text, degrading to a tiny built-in subset reader."""
    try:
        import tomllib
        return tomllib.loads(text)
    except ImportError:
        pass
    try:
        import tomli
        return tomli.loads(text)
    except ImportError:
        pass
    return _mini_toml(text)


_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KV_RE = re.compile(r"^(?P<key>[\w\".-]+)\s*=\s*(?P<value>.+?)\s*$")
_STR_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _mini_toml(text: str) -> dict:
    """Just enough TOML for ``[tool.simlint]``: sections, strings,
    string arrays. Multi-line arrays are joined before parsing."""
    root: dict = {}
    section = root
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending:
            line = pending + " " + line
            pending = ""
        if not line or line.startswith("#"):
            continue
        m = _SECTION_RE.match(line)
        if m:
            section = root
            for part in m.group("name").strip().split("."):
                part = part.strip().strip('"')
                section = section.setdefault(part, {})
            continue
        if line.count("[") > line.count("]"):
            pending = line
            continue
        kv = _KV_RE.match(line)
        if not kv:
            continue
        key = kv.group("key").strip('"')
        value = kv.group("value")
        if value.startswith("["):
            section[key] = _STR_RE.findall(value)
        elif value.startswith('"'):
            m2 = _STR_RE.match(value)
            section[key] = m2.group(1) if m2 else value.strip('"')
        elif value in ("true", "false"):
            section[key] = value == "true"
        else:
            try:
                section[key] = int(value)
            except ValueError:
                section[key] = value
    return root


@dataclass
class LintConfig:
    """Resolved ``[tool.simlint]`` settings."""

    #: Directory the pyproject.toml lives in ('' when built ad hoc).
    root: str = ""
    paths: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    wp_paths: List[str] = field(default_factory=list)
    #: deterministic-core package names for SL102 ([] = rule default).
    wp_core: List[str] = field(default_factory=list)
    #: event-loop-owning package names for SL101/SL104 ([] = default).
    wp_async: List[str] = field(default_factory=list)
    #: directory prefix → allowed rule ids.
    profiles: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, start=None) -> Optional["LintConfig"]:
        """Find and parse ``pyproject.toml`` from *start* (default: cwd)
        upwards; None when no file or no ``[tool.simlint]`` table."""
        here = pathlib.Path(start) if start is not None else pathlib.Path.cwd()
        if here.is_file():
            candidates = [here]
        else:
            candidates = [d / "pyproject.toml" for d in (here, *here.parents)]
        for candidate in candidates:
            if candidate.exists():
                return cls.from_pyproject(candidate)
        return None

    @classmethod
    def from_pyproject(cls, path) -> Optional["LintConfig"]:
        p = pathlib.Path(path)
        try:
            data = _parse_toml(p.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        table = data.get("tool", {}).get("simlint")
        if not isinstance(table, dict):
            return None
        return cls(
            root=str(p.parent),
            paths=[str(x) for x in table.get("paths", [])],
            exclude=[str(x) for x in table.get("exclude", [])],
            wp_paths=[str(x) for x in table.get("wp_paths", [])],
            wp_core=[str(x) for x in table.get("wp_core", [])],
            wp_async=[str(x) for x in table.get("wp_async", [])],
            profiles={k: [str(r).upper() for r in v]
                      for k, v in table.get("profiles", {}).items()
                      if isinstance(v, (list, tuple))},
        )

    # -- queries ---------------------------------------------------------

    @staticmethod
    def _under(path: str, prefix: str) -> bool:
        p = pathlib.PurePath(path).as_posix()
        prefix = prefix.rstrip("/")
        return (p == prefix or p.startswith(prefix + "/")
                or f"/{prefix}/" in f"/{p}")

    def is_excluded(self, path) -> bool:
        """Whether *path* falls under an ``exclude`` prefix."""
        p = pathlib.PurePath(path).as_posix()
        return any(self._under(p, ex) for ex in self.exclude)

    def profile_for(self, path) -> Optional[Set[str]]:
        """Rule-id subset for *path*, or None for the full rule set.

        The longest matching profile prefix wins (so ``tests/perf`` can
        override ``tests``).
        """
        p = pathlib.PurePath(path).as_posix()
        best: Optional[str] = None
        for prefix in self.profiles:
            if self._under(p, prefix):
                if best is None or len(prefix) > len(best):
                    best = prefix
        return set(self.profiles[best]) if best is not None else None

    def in_wp_scope(self, path) -> bool:
        """Whether *path* joins the whole-program call graph."""
        if not self.wp_paths:
            return True
        p = pathlib.PurePath(path).as_posix()
        return any(self._under(p, wp) for wp in self.wp_paths)
