"""Suppression-comment parsing for simlint.

Three forms, modelled on pylint/ruff conventions:

* line suppression — append to the offending line::

      t = time.time()  # simlint: disable=SL001 -- calibration harness only

* file suppression — anywhere in the file, on a line of its own::

      # simlint: disable-file=SL003

* block toggles — suppress a region (or the rest of the file when the
  ``on`` is omitted)::

      # simlint: off=SL101 -- generated protocol shims below
      ...
      # simlint: on

Multiple rule ids are comma-separated (``disable=SL001,SL004``);
``disable=all`` / a bare ``# simlint: off`` silences every rule. The
optional `` -- reason`` suffix documents *why* the suppression is
justified. Every directive tracks whether it actually matched a finding
during a run, so ``repro-lint --report-unused-suppressions`` can surface
stale ones — a suppression that no longer suppresses anything is debt
pretending to be documentation.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

_DIRECTIVE_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)

_TOGGLE_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>off|on)\b"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?))?"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


def _comment_lines(source: str) -> List[Tuple[int, str]]:
    """(lineno, text) for every real COMMENT token in *source*.

    Only genuine comments carry directives: a ``# simlint:`` inside a
    string literal or docstring (this module's own docstring, lint-test
    sources embedded as strings) is documentation, not a suppression —
    treating it as one makes ``--report-unused-suppressions`` cry wolf.
    Falls back to a raw line scan when the source does not tokenize, so
    directives still work in files the parser will reject anyway.
    """
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return list(enumerate(source.splitlines(), start=1))


def _parse_rules(raw: Optional[str]) -> Set[str]:
    if not raw:
        return {"all"}
    return {
        r.strip().upper() if r.strip().lower() != "all" else "all"
        for r in raw.split(",")
        if r.strip()
    }


@dataclass
class Directive:
    """One ``# simlint:`` comment, with its use tracking."""

    lineno: int
    kind: str                   #: "disable" | "disable-file" | "off"
    rules: Tuple[str, ...]      #: sorted rule ids (or ("all",))
    reason: str
    #: For "off": last suppressed line (None = end of file).
    end: Optional[int] = None
    used: bool = False

    def matches(self, rule_id: str) -> bool:
        return "all" in self.rules or rule_id in self.rules

    def covers(self, lineno: int) -> bool:
        if self.kind == "disable-file":
            return True
        if self.kind == "disable":
            return lineno == self.lineno
        # off/on block: the off line itself through the closing `on`.
        return self.lineno <= lineno and (self.end is None or lineno <= self.end)


class SuppressionTable:
    """Per-file suppression state parsed from comments."""

    def __init__(self) -> None:
        self.directives: List[Directive] = []

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        """Parse every ``# simlint:`` directive in *source*."""
        table = cls()
        if "simlint:" not in source:
            return table
        open_blocks: List[Directive] = []
        for lineno, line in _comment_lines(source):
            m = _DIRECTIVE_RE.search(line)
            if m:
                table.directives.append(Directive(
                    lineno=lineno, kind=m.group("kind"),
                    rules=tuple(sorted(_parse_rules(m.group("rules")))),
                    reason=(m.group("reason") or "").strip()))
                continue
            t = _TOGGLE_RE.search(line)
            if not t:
                continue
            rules = _parse_rules(t.group("rules"))
            if t.group("kind") == "off":
                d = Directive(lineno=lineno, kind="off",
                              rules=tuple(sorted(rules)),
                              reason=(t.group("reason") or "").strip())
                table.directives.append(d)
                open_blocks.append(d)
            else:
                # `# simlint: on` closes open blocks whose rule sets
                # intersect (a bare `on` closes everything).
                still_open = []
                for d in open_blocks:
                    shared = ("all" in rules or "all" in d.rules
                              or set(d.rules) & rules)
                    if shared:
                        d.end = lineno
                    else:
                        still_open.append(d)
                open_blocks = still_open
        return table

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether *rule_id* is silenced at *lineno* (marks the matching
        directive as used, for stale-suppression reporting)."""
        hit = False
        for d in self.directives:
            if d.matches(rule_id) and d.covers(lineno):
                d.used = True
                hit = True
        return hit

    def unused(self) -> List[Directive]:
        """Directives that matched no finding during this run."""
        return [d for d in self.directives if not d.used]

    # -- compatibility views (older tests/introspection) -----------------

    @property
    def file_wide(self) -> Set[str]:
        out: Set[str] = set()
        for d in self.directives:
            if d.kind == "disable-file":
                out.update(d.rules)
        return out
