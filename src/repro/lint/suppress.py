"""Suppression-comment parsing for simlint.

Two forms, modelled on pylint/ruff conventions:

* line suppression — append to the offending line::

      t = time.time()  # simlint: disable=SL001 -- calibration harness only

* file suppression — anywhere in the file, on a line of its own::

      # simlint: disable-file=SL003

Multiple rule ids are comma-separated (``disable=SL001,SL004``);
``disable=all`` silences every rule. The optional `` -- reason`` suffix
documents *why* the suppression is justified; the CLI counts suppressions
so unexplained ones show up in review.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

_DIRECTIVE_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


class SuppressionTable:
    """Per-file suppression state parsed from comments."""

    def __init__(self) -> None:
        #: line number -> set of rule ids (or {"all"}).
        self.by_line: Dict[int, Set[str]] = {}
        #: rule ids suppressed for the whole file (or {"all"}).
        self.file_wide: Set[str] = set()
        #: (line, rule ids, reason) of every directive, for reporting.
        self.directives: List[tuple] = []

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        """Parse every ``# simlint:`` directive in *source*."""
        table = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _DIRECTIVE_RE.search(line)
            if not m:
                continue
            rules = {
                r.strip().upper() if r.strip().lower() != "all" else "all"
                for r in m.group("rules").split(",")
                if r.strip()
            }
            reason = (m.group("reason") or "").strip()
            table.directives.append((lineno, sorted(rules), reason))
            if m.group("kind") == "disable-file":
                table.file_wide.update(rules)
            else:
                table.by_line.setdefault(lineno, set()).update(rules)
        return table

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether *rule_id* is silenced at *lineno*."""
        if "all" in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(lineno, ())
        return "all" in rules or rule_id in rules
