"""Whole-program simlint rules (SL1xx).

These rules run over the linked :class:`~repro.lint.graph.ProjectContext`
rather than one file at a time, which lets them enforce properties that
only exist at the project level:

=======  ==============================================================
SL101    no blocking call reachable from an ``async def`` in ``serve/``
         without an executor boundary (``run_in_executor``/``to_thread``)
SL102    determinism taint: wall-clock/entropy may not flow transitively
         into the deterministic core (``sim/``, ``gc/``, ``jvm/``)
SL103    ResultStore lock discipline: store-file mutations only under
         the ``.locked()`` flock context manager
SL104    no fire-and-forget coroutines (un-awaited, un-tracked
         ``create_task``/``ensure_future``) in ``serve/``
SL105    executor pickle-safety: payload types crossing a
         ProcessPoolExecutor boundary must be statically picklable
=======  ==============================================================

Executor boundaries need no special casing in SL101: a function passed
*by reference* to ``run_in_executor``/``submit``/``to_thread`` creates no
call edge (it is an argument, not a call), so offloaded blocking work is
invisible to the async-side reachability query — exactly the semantics
the event loop sees.

Every SL1xx finding carries a *related* location (the other end of the
offending path); a suppression comment on either end silences it, since
whichever end is "wrong" depends on the fix.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterator, List, Optional, Tuple

from .core import Finding, FileContext, ProjectRule
from .graph import CallSite, ClassInfo, FunctionInfo, ProjectContext
from .taint import TaintAnalysis


def _chain_terminal(project: ProjectContext, start: FunctionInfo,
                    chain: List[CallSite]) -> Tuple[str, int]:
    """``(path, line)`` of the last call site in a BFS chain.

    ``chain[-1]`` lives in the body of the function ``chain[-2]``
    resolved to (or in *start* itself for a single-hop chain).
    """
    if len(chain) > 1:
        owner = project.functions.get(chain[-2].resolved)
        if owner is not None:
            return owner.path, chain[-1].lineno
    return start.path, chain[0].lineno


def _route(chain: List[CallSite], terminal: str) -> str:
    """Render ``a -> b -> fcntl.flock`` for a finding message."""
    names = [s.name for s in chain[:-1]] + [terminal]
    return " -> ".join(names)


# ----------------------------------------------------------------------
# SL101 — blocking calls reachable from async code
# ----------------------------------------------------------------------

#: Calls that block the thread they run on. ``open`` appears unqualified
#: because builtins survive import expansion untouched.
_BLOCKING = {
    "time.sleep",
    "fcntl.flock", "fcntl.lockf",
    "os.fsync", "os.fdatasync",
    "open", "io.open",
    "select.select",
    "socket.create_connection", "socket.socket.connect",
    "shutil.rmtree", "shutil.copyfile", "shutil.copy",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.",)


def _blocking_name(site: CallSite) -> Optional[str]:
    """The blocking call a site invokes, if any (aliases included)."""
    for name in (site.name,) + tuple(site.alt_names):
        if name in _BLOCKING or name.startswith(_BLOCKING_PREFIXES):
            return name
        head, _, tail = name.rpartition(".")
        # fut.result() — a synchronous wait on a Future-ish receiver.
        if tail == "result" and ("fut" in head.lower() or not head):
            return name
    return None


class AsyncBlockingRule(ProjectRule):
    """SL101: no blocking call reachable from ``async def`` in serve/."""

    rule_id = "SL101"
    title = "blocking call reachable from async code without an executor boundary"

    #: Directory parts whose async functions are event-loop-owned.
    scope = ("serve",)

    def check_project(self, project: ProjectContext,
                      files: Dict[str, FileContext]) -> Iterator[Finding]:
        for fn in project.functions_under(*self.scope):
            if not fn.is_async:
                continue
            chain = project.find_path(
                fn.qname, lambda site: _blocking_name(site) is not None)
            if chain is None:
                continue
            terminal = _blocking_name(chain[-1]) or chain[-1].name
            related = _chain_terminal(project, fn, chain)
            yield self.wp_finding(
                files, fn.path, chain[0].lineno,
                f"async `{fn.qname.rsplit('.', 1)[-1]}` reaches blocking "
                f"`{terminal}` ({_route(chain, terminal)}); offload via "
                f"run_in_executor/to_thread",
                related=related,
            )


# ----------------------------------------------------------------------
# SL102 — determinism taint into the simulated core
# ----------------------------------------------------------------------


class CoreTaintRule(ProjectRule):
    """SL102: wall-clock/entropy must not flow transitively into the
    deterministic core. Direct reads are SL001's findings (sound,
    per-file); this rule owns the ≥1-hop indirect routes SL001 cannot
    see."""

    rule_id = "SL102"
    title = "wall-clock/entropy flows transitively into the deterministic core"

    #: Deterministic-core packages; ``[tool.simlint] wp_core`` overrides.
    scope = ("sim", "gc", "jvm", "fleet")

    def check_project(self, project: ProjectContext,
                      files: Dict[str, FileContext]) -> Iterator[Finding]:
        taint = TaintAnalysis(project)
        for qname, witness in taint.core_leaks(*self.scope, min_hops=1):
            fn = project.functions[qname]
            related = _chain_terminal(project, fn, list(witness.chain))
            yield self.wp_finding(
                files, fn.path, witness.entry.lineno,
                f"`{qname.rsplit('.', 1)[-1]}` reaches `{witness.source}` "
                f"({witness.describe()}); inject a clock/rng instead",
                related=related,
            )


# ----------------------------------------------------------------------
# SL103 — ResultStore lock discipline
# ----------------------------------------------------------------------


class LockDisciplineRule(ProjectRule):
    """SL103: store-file mutations only under the ``.locked()`` flock
    context manager.

    A mutation is compliant when it is lexically inside ``with
    <x>.locked():``, lives inside the ``locked()`` implementation itself
    (the lock file must be opened to be flocked), or when *every* project
    call site of its enclosing method is itself inside a locked block
    (the one-hop "caller holds the lock" idiom)."""

    rule_id = "SL103"
    title = "store-file mutation outside the .locked() context manager"

    def check_project(self, project: ProjectContext,
                      files: Dict[str, FileContext]) -> Iterator[Finding]:
        callers: Dict[str, List[CallSite]] = {}
        for fn in project.functions.values():
            for site in fn.calls:
                if site.resolved:
                    callers.setdefault(site.resolved, []).append(site)

        for path in sorted(project.modules):
            info = project.modules[path]
            for m in sorted(info.mutations, key=lambda m: m.lineno):
                if m.locked:
                    continue
                if m.method.rsplit(".", 1)[-1] == "locked":
                    continue            # the lock acquisition itself
                inbound = callers.get(m.method, [])
                if inbound and all(site.locked for site in inbound):
                    continue            # every caller holds the lock
                owner = project.functions.get(m.method)
                related = ((owner.path, owner.lineno)
                           if owner is not None else None)
                yield self.wp_finding(
                    files, path, m.lineno,
                    f"{m.desc} in `{m.method.rsplit('.', 1)[-1]}` without "
                    f"holding .locked()",
                    related=related,
                )


# ----------------------------------------------------------------------
# SL104 — fire-and-forget coroutines
# ----------------------------------------------------------------------

_SPAWN_TAILS = {"create_task", "ensure_future"}


class FireAndForgetRule(ProjectRule):
    """SL104: every ``create_task``/``ensure_future`` in serve/ must keep
    a reference (asyncio only holds weak refs — an untracked task can be
    garbage-collected mid-flight and its exceptions vanish)."""

    rule_id = "SL104"
    title = "fire-and-forget coroutine (untracked create_task/ensure_future)"

    scope = ("serve",)

    def check_project(self, project: ProjectContext,
                      files: Dict[str, FileContext]) -> Iterator[Finding]:
        for fn in project.functions_under(*self.scope):
            for site in fn.calls:
                tail = site.name.rsplit(".", 1)[-1]
                if tail not in _SPAWN_TAILS:
                    continue
                if site.bare or site.dangling:
                    how = ("discarded" if site.bare
                           else "assigned to a never-read local")
                    yield self.wp_finding(
                        files, fn.path, site.lineno,
                        f"`{site.name}` result {how}: task is unreferenced "
                        f"and may be collected mid-flight; store it and "
                        f"add a done callback",
                    )


# ----------------------------------------------------------------------
# SL105 — executor pickle-safety
# ----------------------------------------------------------------------

#: Type-name tails that cannot cross a process boundary by default.
_UNPICKLABLE_TAILS = {
    "BaseException", "Exception", "KeyboardInterrupt",
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Thread", "ThreadPoolExecutor", "ProcessPoolExecutor",
    "socket", "Socket", "FrameType", "TracebackType", "GeneratorType",
    "Future", "Task", "Queue", "SimpleQueue",
}


def _unpicklable_tail(type_name: str) -> bool:
    tail = type_name.rsplit(".", 1)[-1]
    return tail in _UNPICKLABLE_TAILS or tail.endswith("Error")


class PickleSafetyRule(ProjectRule):
    """SL105: types submitted across a ProcessPoolExecutor boundary must
    be statically picklable — no live exceptions, frames, locks, sockets
    or futures in their (transitive) field set, unless the class takes
    responsibility via ``__getstate__``/``__reduce__``."""

    rule_id = "SL105"
    title = "unpicklable type crosses a process-pool boundary"

    def check_project(self, project: ProjectContext,
                      files: Dict[str, FileContext]) -> Iterator[Finding]:
        for fn in sorted(project.functions.values(),
                         key=lambda f: (f.path, f.lineno)):
            for sub in fn.submits:
                if not sub.is_process_pool:
                    continue
                for type_name in sub.arg_types:
                    cls = project.classes.get(type_name)
                    if cls is None:
                        continue        # external/primitive: pickle's call
                    offender = self._unsafe_field(project, cls, depth=0)
                    if offender is None:
                        continue
                    fld, owner = offender
                    yield self.wp_finding(
                        files, fn.path, sub.lineno,
                        f"`{type_name.rsplit('.', 1)[-1]}` crosses a process "
                        f"pool but field `{fld.name}: {fld.type}` (in "
                        f"{owner.qname.rsplit('.', 1)[-1]}) does not pickle; "
                        f"add __getstate__ or strip the field",
                        related=(owner.path, fld.lineno),
                    )

    def _unsafe_field(self, project: ProjectContext, cls: ClassInfo,
                      depth: int):
        """First ``(field, owning class)`` that breaks picklability, or
        None. Recurses into project-class-typed fields (bounded); a
        pickle hook anywhere on the owning class ends the audit — the
        author has taken over serialization."""
        if cls.has_pickle_hook or depth > 3:
            return None
        for fld, owner in project.field_types(cls):
            if owner.has_pickle_hook:
                continue
            if _unpicklable_tail(fld.type):
                return fld, owner
            nested = project.classes.get(fld.type)
            if nested is None and fld.type:
                resolved = project._resolve_class(fld.type)
                nested = resolved
            if nested is not None and nested.qname != cls.qname:
                hit = self._unsafe_field(project, nested, depth + 1)
                if hit is not None:
                    return hit
        return None


# ----------------------------------------------------------------------


def default_wp_rules() -> List[ProjectRule]:
    """The SL1xx whole-program rule set, in id order."""
    return [
        AsyncBlockingRule(),
        CoreTaintRule(),
        LockDisciplineRule(),
        FireAndForgetRule(),
        PickleSafetyRule(),
    ]


#: rule id → class, for ``--select`` and ``--list-rules``.
WP_RULES_BY_ID = {rule.rule_id: type(rule) for rule in default_wp_rules()}
