"""Whole-program symbol table and call graph for simlint v2.

The SL0xx rules see one file at a time; the SL1xx family
(:mod:`repro.lint.rules_wp`) needs to answer *reachability* questions —
"can this ``async def`` in ``serve/`` reach an ``fcntl.flock``?", "does a
wall-clock read flow into ``sim/`` through two helpers?". This module
builds the structure those queries run on:

* a per-module **IR** (:class:`ModuleInfo`): every function/method with
  its resolved call sites, every class with its fields, bases, attribute
  types and pickle hooks — all JSON-serializable so the whole extraction
  is cacheable keyed on the source hash (``--ast-cache``);
* a **symbol table** mapping module-qualified names to definitions,
  with import following (absolute *and* relative) and lightweight type
  inference (annotations, ``x = Ctor()`` locals, ``self.x = Ctor()``
  attributes, project-function return annotations);
* a **call graph** over resolved edges with a bounded-depth path search
  (:meth:`ProjectContext.find_path`) used by both the blocking-call and
  the determinism-taint analyses.

Soundness limits (documented in DESIGN.md §14): dynamic dispatch through
``getattr``/dict-of-functions, monkeypatching, and callables threaded
through untyped parameters are invisible to the resolver; the SL1xx
rules are therefore *bug finders with a low false-positive bias*, not
verifiers. The per-file SL0xx rules remain the sound backstop for direct
violations.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Bump when the IR shape changes: stale cache entries are then ignored.
IR_VERSION = 2

#: Default bound on transitive-closure depth. Deep enough for any sane
#: call chain; finite so a pathological (or accidentally cyclic) graph
#: cannot stall the lint pass.
MAX_DEPTH = 16


# ----------------------------------------------------------------------
# IR dataclasses (all JSON-round-trippable for the AST cache)
# ----------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str                   #: dotted callee, import aliases expanded
    lineno: int
    #: Module-qualified project function this resolves to ('' = external).
    resolved: str = ""
    #: Extra candidate names (module/attribute aliases: ``WALL_CLOCK()``
    #: where ``WALL_CLOCK = time.monotonic`` carries both names).
    alt_names: Tuple[str, ...] = ()
    #: Lexically inside a ``with <obj>.locked():`` block.
    locked: bool = False
    #: The call value is discarded (bare expression statement).
    bare: bool = False
    #: The call's value is assigned to a local that is never read again
    #: (and no method is invoked on it).
    dangling: bool = False


@dataclass
class SubmitSite:
    """One ``pool.submit(fn, *args)`` call site (pool kind resolved lazily)."""

    lineno: int
    fn: str = ""                        #: resolved project qname of fn ('' unknown)
    arg_types: Tuple[str, ...] = ()     #: resolved class qnames of payload args
    #: Receiver typing evidence: a dotted type name, or ``call:<name>``
    #: when the receiver came from a call whose return annotation decides
    #: (``pool = self._checkout_pool()``). Linked in ProjectContext.
    recv: str = ""
    #: True once linking confirms the receiver is a ProcessPoolExecutor.
    is_process_pool: bool = False


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str                  #: e.g. ``repro.serve.service.ExperimentService.drain``
    path: str
    lineno: int
    is_async: bool = False
    cls: str = ""               #: owning class qname ('' for module level)
    calls: List[CallSite] = field(default_factory=list)
    submits: List[SubmitSite] = field(default_factory=list)
    #: Resolved class qname of the return annotation ('' if none/external).
    returns: str = ""


@dataclass
class FieldInfo:
    """One class attribute with a (statically declared) type."""

    name: str
    type: str                   #: dotted annotation text, Optional[...] unwrapped
    lineno: int


@dataclass
class ClassInfo:
    """One class definition."""

    qname: str
    path: str
    lineno: int
    bases: Tuple[str, ...] = ()             #: dotted base names (alias-expanded)
    methods: Tuple[str, ...] = ()           #: unqualified method names
    fields: List[FieldInfo] = field(default_factory=list)
    #: ``self.<attr> = Ctor(...)`` → attr: resolved class dotted name.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr> = <expr>`` → dotted names referenced in the expr
    #: (how injected-clock patterns like ``self._clock = WALL_CLOCK``
    #: stay visible to the taint analysis).
    attr_values: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Defines __getstate__/__reduce__/__reduce_ex__/__getnewargs__.
    has_pickle_hook: bool = False
    #: Defines a ``locked`` method (lock-discipline anchor for SL103).
    has_locked_cm: bool = False


@dataclass
class MutationSite:
    """A write to a store-owned file (SL103): ``open(self.x_path, 'a')``,
    ``tmp.replace(self.records_path)``, ``self.lock_path.unlink()``..."""

    lineno: int
    desc: str                   #: human-readable description of the write
    method: str                 #: enclosing method qname
    locked: bool                #: lexically under ``with self.locked():``


@dataclass
class ModuleInfo:
    """Everything the whole-program rules need from one source file."""

    module: str                 #: dotted module name
    path: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <dotted>`` aliases (``WALL_CLOCK = time.monotonic``).
    assigns: Dict[str, str] = field(default_factory=dict)
    #: import alias → canonical dotted name (relative imports resolved).
    imports: Dict[str, str] = field(default_factory=dict)
    mutations: List[MutationSite] = field(default_factory=list)

    # -- cache round trip ------------------------------------------------

    def to_json(self) -> dict:
        d = asdict(self)
        d["_ir"] = IR_VERSION
        return d

    @classmethod
    def from_json(cls, d: dict) -> "ModuleInfo":
        if d.get("_ir") != IR_VERSION:
            raise ValueError("stale IR version")
        info = cls(module=d["module"], path=d["path"],
                   assigns=dict(d["assigns"]), imports=dict(d["imports"]))
        for q, f in d["functions"].items():
            info.functions[q] = FunctionInfo(
                qname=f["qname"], path=f["path"], lineno=f["lineno"],
                is_async=f["is_async"], cls=f["cls"], returns=f["returns"],
                calls=[CallSite(name=c["name"], lineno=c["lineno"],
                                resolved=c["resolved"],
                                alt_names=tuple(c["alt_names"]),
                                locked=c["locked"], bare=c["bare"],
                                dangling=c["dangling"])
                       for c in f["calls"]],
                submits=[SubmitSite(lineno=s["lineno"], fn=s["fn"],
                                    arg_types=tuple(s["arg_types"]),
                                    recv=s["recv"],
                                    is_process_pool=s["is_process_pool"])
                         for s in f["submits"]],
            )
        for q, c in d["classes"].items():
            info.classes[q] = ClassInfo(
                qname=c["qname"], path=c["path"], lineno=c["lineno"],
                bases=tuple(c["bases"]), methods=tuple(c["methods"]),
                fields=[FieldInfo(**fd) for fd in c["fields"]],
                attr_types=dict(c["attr_types"]),
                attr_values={k: tuple(v) for k, v in c["attr_values"].items()},
                has_pickle_hook=c["has_pickle_hook"],
                has_locked_cm=c["has_locked_cm"],
            )
        info.mutations = [MutationSite(**m) for m in d["mutations"]]
        return info


# ----------------------------------------------------------------------
# Extraction helpers
# ----------------------------------------------------------------------


def dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str, roots: Sequence[str]) -> str:
    """Dotted module name of *path* relative to the first matching root.

    ``src/`` path segments are dropped so an in-repo run names modules
    the way imports spell them (``src/repro/sim/engine.py`` →
    ``repro.sim.engine``); ``__init__.py`` names the package itself.
    """
    p = pathlib.PurePath(path).as_posix()
    rel = p
    for root in sorted((pathlib.PurePath(r).as_posix() for r in roots),
                       key=len, reverse=True):
        if root and p.startswith(root.rstrip("/") + "/"):
            rel = p[len(root.rstrip("/")) + 1:]
            break
    parts = [q for q in pathlib.PurePath(rel).parts if q != "src"]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def build_import_map(tree: ast.AST, module: str) -> Dict[str, str]:
    """Local name → canonical dotted name for every import in *tree*.

    Unlike the per-file rules' alias map this resolves **relative**
    imports against *module* (``from ..campaign.store import ResultStore``
    inside ``repro.serve.service`` → ``repro.campaign.store.ResultStore``)
    so cross-package edges inside the project resolve.
    """
    imports: Dict[str, str] = {}
    pkg_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                imports[a.asname or a.name.split(".", 1)[0]] = (
                    a.name if a.asname else a.name.split(".", 1)[0])
                if a.asname:
                    imports[a.asname] = a.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for a in node.names:
                if a.name != "*":
                    imports[a.asname or a.name] = f"{base}.{a.name}"
    return imports


def _unwrap_annotation(node: ast.AST) -> Optional[str]:
    """Dotted name of an annotation, unwrapping Optional[...] / quotes."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = dotted(node.value)
        if head and head.rsplit(".", 1)[-1] in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _unwrap_annotation(inner)
        return None
    return dotted(node)


#: Methods whose presence customizes pickling enough to trust the author.
_PICKLE_HOOKS = {"__getstate__", "__reduce__", "__reduce_ex__",
                 "__getnewargs__", "__getnewargs_ex__"}

#: File-write call tails considered store mutations for SL103.
_WRITE_TAILS = {"unlink", "replace", "rename", "write_text", "write_bytes",
                "rmdir", "touch"}


class _ModuleExtractor:
    """Single pass over one module's AST producing its :class:`ModuleInfo`.

    Resolution that needs the *project* symbol table (``self.m()`` into
    base classes, constructor-typed attributes from other modules) is
    deferred to :meth:`ProjectContext._link`; this pass records raw
    alias-expanded names plus purely local typing.
    """

    def __init__(self, module: str, path: str, tree: ast.Module):
        self.info = ModuleInfo(module=module, path=path)
        self.info.imports = build_import_map(tree, module)
        self._module_assigns(tree)
        for node in tree.body:
            self._top(node, prefix=module)

    # -- module / class level -------------------------------------------

    def _module_assigns(self, tree: ast.Module) -> None:
        for node in tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                value = dotted(node.value)
                if value:
                    self.info.assigns[node.targets[0].id] = self.expand(value)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                    and isinstance(node.target, ast.Name)):
                value = dotted(node.value)
                if value:
                    self.info.assigns[node.target.id] = self.expand(value)

    def _top(self, node: ast.AST, prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(node, prefix=prefix, cls=None)
        elif isinstance(node, ast.ClassDef):
            self._class(node, prefix=prefix)

    def _class(self, node: ast.ClassDef, prefix: str) -> None:
        qname = f"{prefix}.{node.name}"
        methods = [n.name for n in node.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        cls = ClassInfo(
            qname=qname, path=self.info.path, lineno=node.lineno,
            bases=tuple(self.expand(dotted(b)) for b in node.bases if dotted(b)),
            methods=tuple(methods),
            has_pickle_hook=bool(_PICKLE_HOOKS.intersection(methods)),
            has_locked_cm="locked" in methods,
        )
        # Dataclass-style annotated fields in the class body.
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                ann = _unwrap_annotation(stmt.annotation)
                if ann:
                    cls.fields.append(FieldInfo(name=stmt.target.id,
                                                type=self.expand(ann),
                                                lineno=stmt.lineno))
        self.info.classes[qname] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, prefix=qname, cls=cls)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, prefix=qname)

    # -- function level --------------------------------------------------

    def expand(self, name: str) -> str:
        """Expand the leading segment of *name* through the import map."""
        head, _, rest = name.partition(".")
        target = self.info.imports.get(head)
        if target:
            return f"{target}.{rest}" if rest else target
        return name

    def _function(self, node, *, prefix: str, cls: Optional[ClassInfo]) -> None:
        qname = f"{prefix}.{node.name}"
        fn = FunctionInfo(
            qname=qname, path=self.info.path, lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls=cls.qname if cls is not None else "",
        )
        if node.returns is not None:
            ann = _unwrap_annotation(node.returns)
            if ann:
                fn.returns = self.expand(ann)
        _FunctionScanner(self, fn, node, cls)
        self.info.functions[qname] = fn


class _FunctionScanner:
    """Walk one function body: call sites, local types, submits, writes."""

    def __init__(self, ext: _ModuleExtractor, fn: FunctionInfo,
                 node, cls: Optional[ClassInfo]):
        self.ext = ext
        self.fn = fn
        self.cls = cls
        #: local / parameter name → dotted type name.
        self.local_types: Dict[str, str] = {}
        #: locals assigned from ``self.<x>_path``-ish expressions (SL103).
        self.path_locals: Set[str] = set()
        self._collect_param_types(node)
        self._loads = self._load_counts(node)
        self._assigned: Dict[int, str] = {}
        self._walk_body(node.body, locked=False)

    # -- typing ----------------------------------------------------------

    def _collect_param_types(self, node) -> None:
        args = node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            if a.annotation is not None:
                ann = _unwrap_annotation(a.annotation)
                if ann:
                    self.local_types[a.arg] = self.ext.expand(ann)

    @staticmethod
    def _load_counts(node) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                counts[sub.id] = counts.get(sub.id, 0) + 1
            elif isinstance(sub, ast.Attribute):
                root = sub.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and isinstance(root.ctx, ast.Load):
                    pass    # already counted via the Name load above
        return counts

    def _infer_type(self, expr: ast.AST) -> str:
        """Best-effort dotted type name of *expr* ('' when unknown)."""
        if isinstance(expr, ast.IfExp):
            # `Ctor(...) if cond else None` — the guarded arm decides.
            return self._infer_type(expr.body) or self._infer_type(expr.orelse)
        name = dotted(expr)
        if name is not None:
            head, _, rest = name.partition(".")
            if head == "self" and self.cls is not None and rest:
                attr = rest.split(".", 1)[0]
                return self.cls.attr_types.get(attr, "")
            return self.local_types.get(name, "")
        if isinstance(expr, ast.Call):
            callee = dotted(expr.func)
            if callee:
                return self.ext.expand(callee)
        return ""

    # -- body walk -------------------------------------------------------

    def _walk_body(self, stmts: Iterable[ast.stmt], *, locked: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, locked=locked)

    def _stmt(self, stmt: ast.stmt, *, locked: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_locked = locked or any(
                self._is_locked_cm(item.context_expr) for item in stmt.items)
            for item in stmt.items:
                self._expr(item.context_expr, locked=locked)
                # `with Ctor(...) as name:` types the bound local.
                if isinstance(item.optional_vars, ast.Name):
                    inferred = self._infer_type(item.context_expr)
                    if inferred:
                        self.local_types[item.optional_vars.id] = inferred
            self._walk_body(stmt.body, locked=inner_locked)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: calls inside belong (conservatively) to the parent.
            self._walk_body(stmt.body, locked=locked)
            return
        if isinstance(stmt, ast.Assign):
            self._record_assignment(stmt.targets, stmt.value)
            self._expr(stmt.value, locked=locked,
                       assigned_to=self._single_name(stmt.targets))
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                targets = [stmt.target]
                self._record_assignment(targets, stmt.value,
                                        annotation=stmt.annotation)
                self._expr(stmt.value, locked=locked,
                           assigned_to=self._single_name(targets))
            elif isinstance(stmt.target, ast.Name) and stmt.annotation is not None:
                ann = _unwrap_annotation(stmt.annotation)
                if ann:
                    self.local_types[stmt.target.id] = self.ext.expand(ann)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value, locked=locked, bare=True)
            return
        # Generic recursion: visit child statements with the same lock
        # state, and any embedded expressions.
        for fname, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._walk_body(value, locked=locked)
                else:
                    for v in value:
                        if isinstance(v, ast.expr):
                            self._expr(v, locked=locked)
            elif isinstance(value, ast.expr):
                self._expr(value, locked=locked)

    def _single_name(self, targets) -> Optional[str]:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            return targets[0].id
        return None

    def _record_assignment(self, targets, value, annotation=None) -> None:
        # Local typing: x = Ctor(...) / x: T = ...
        tname = self._single_name(targets)
        if tname is not None:
            inferred = ""
            if annotation is not None:
                ann = _unwrap_annotation(annotation)
                inferred = self.ext.expand(ann) if ann else ""
            if not inferred:
                inferred = self._infer_type(value)
            if inferred:
                self.local_types[tname] = inferred
            if self._mentions_self_path(value):
                self.path_locals.add(tname)
        # Attribute typing: self.x = Ctor(...) (+ referenced dotted names).
        if (self.cls is not None and len(targets) == 1
                and isinstance(targets[0], ast.Attribute)):
            target = targets[0]
            root = dotted(target)
            if root and root.startswith("self.") and root.count(".") == 1:
                attr = root.split(".", 1)[1]
                inferred = self._infer_type(value)
                if inferred and attr not in self.cls.attr_types:
                    self.cls.attr_types[attr] = inferred
                names = tuple(sorted({
                    self.ext.info.assigns.get(n, self.ext.expand(n))
                    for n in self._dotted_names(value)}))
                if names:
                    merged = set(self.cls.attr_values.get(attr, ())) | set(names)
                    self.cls.attr_values[attr] = tuple(sorted(merged))

    @staticmethod
    def _dotted_names(expr: ast.AST) -> List[str]:
        out = []
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                name = dotted(sub)
                if name and not name.startswith("self."):
                    out.append(name)
        return out

    def _mentions_self_path(self, expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            d = dotted(sub)
            if d and d.startswith("self.") and (
                    d.split(".")[1].endswith("_path") or d.split(".")[1] == "root"):
                return True
            if isinstance(sub, ast.Name) and sub.id in self.path_locals:
                return True
        return False

    def _is_locked_cm(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            return bool(name) and name.rsplit(".", 1)[-1] == "locked"
        return False

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ast.expr, *, locked: bool,
              bare: bool = False, assigned_to: Optional[str] = None) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._call(sub, locked=locked,
                           bare=bare and sub is expr,
                           assigned_to=assigned_to if sub is expr else None)

    def _call(self, node: ast.Call, *, locked: bool, bare: bool,
              assigned_to: Optional[str]) -> None:
        raw = dotted(node.func)
        if raw is None:
            return
        name = self.ext.expand(raw)
        alts: Set[str] = set()
        # NAME() where NAME = time.monotonic at module level.
        head, _, rest = raw.partition(".")
        if not rest and head in self.ext.info.assigns:
            alts.add(self.ext.info.assigns[head])
        # self._clock() where __init__ bound the attr to a known name.
        if head == "self" and self.cls is not None and rest and "." not in rest:
            alts.update(self.ext.info.assigns.get(n, n)
                        for n in self.cls.attr_values.get(rest, ()))
        # store.read_manifest() where `store: ResultStore` is a typed
        # local/parameter — add the type-qualified candidate so linking
        # can dispatch through the class.
        if rest and head in self.local_types:
            alts.add(f"{self.local_types[head]}.{rest}")
        dangling = bool(
            assigned_to is not None
            and self._loads.get(assigned_to, 0) == 0)
        site = CallSite(name=name, lineno=node.lineno,
                        alt_names=tuple(sorted(alts)),
                        locked=locked, bare=bare, dangling=dangling)
        self.fn.calls.append(site)
        self._maybe_submit(node)
        self._maybe_mutation(node, locked=locked)

    def _maybe_submit(self, node: ast.Call) -> None:
        """Record every ``<recv>.submit(fn, *payload)``; whether the
        receiver is actually a ProcessPoolExecutor is decided at link
        time (the receiver may be typed by a return annotation)."""
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"):
            return
        if not node.args:
            return
        recv = self._infer_type(node.func.value)
        if not recv and isinstance(node.func.value, ast.Name):
            # `pool = self._checkout_pool()` — infer_type followed the
            # local, which holds the *call target*; mark it for linking.
            local = self.local_types.get(node.func.value.id, "")
            recv = f"call:{local}" if local else ""
        elif not recv:
            callee = dotted(node.func.value)
            recv = f"call:{self.ext.expand(callee)}" if callee else ""
        fn_name = dotted(node.args[0])
        resolved_fn = self.ext.expand(fn_name) if fn_name else ""
        arg_types = tuple(t for t in
                          (self._infer_type(a) for a in node.args[1:]) if t)
        self.fn.submits.append(SubmitSite(lineno=node.lineno, fn=resolved_fn,
                                          arg_types=arg_types, recv=recv))

    def _maybe_mutation(self, node: ast.Call, *, locked: bool) -> None:
        """Record writes to store-owned paths (SL103 raw material)."""
        if self.cls is None or not self.cls.has_locked_cm:
            return
        desc = None
        func = node.func
        # open(self.<x>_path, 'a'|'w'|...)
        if isinstance(func, ast.Name) and func.id == "open" and node.args:
            target = node.args[0]
            if self._is_store_path(target):
                mode = ""
                if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                    mode = str(node.args[1].value)
                for kw in node.keywords:
                    if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                        mode = str(kw.value.value)
                if any(c in mode for c in "wax+"):
                    desc = f"open({dotted(target) or 'store path'}, {mode!r})"
        # <path expr>.unlink() / tmp.replace(self.records_path) / ...
        elif isinstance(func, ast.Attribute) and func.attr in _WRITE_TAILS:
            if self._is_store_path(func.value) or any(
                    self._is_store_path(a) for a in node.args):
                desc = f".{func.attr}() on a store path"
        if desc is not None:
            self.ext.info.mutations.append(MutationSite(
                lineno=node.lineno, desc=desc,
                method=self.fn.qname, locked=locked))

    def _is_store_path(self, expr: ast.AST) -> bool:
        d = dotted(expr)
        if d and d.startswith("self.") and (
                d.split(".")[1].endswith("_path") or d.split(".")[1] == "root"):
            return True
        if isinstance(expr, ast.Name) and expr.id in self.path_locals:
            return True
        return False


# ----------------------------------------------------------------------
# Project context
# ----------------------------------------------------------------------


class ProjectContext:
    """The linked whole-program view: modules, symbols, call graph.

    Build with :meth:`build` from ``{path: (source, tree)}``; pass
    ``cache_dir`` to reuse per-file IR keyed on the source's SHA-256
    (the CI ``lint-wp`` job's parsed-AST cache).
    """

    def __init__(self, modules: Dict[str, ModuleInfo]):
        #: path → ModuleInfo (insertion order = sorted build order).
        self.modules = modules
        #: function qname → FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qname → ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: class unqualified name → [class qnames] (cross-module lookup).
        self._class_by_tail: Dict[str, List[str]] = {}
        for info in modules.values():
            self.functions.update(info.functions)
            self.classes.update(info.classes)
        for qname in self.classes:
            self._class_by_tail.setdefault(
                qname.rsplit(".", 1)[-1], []).append(qname)
        self._link()

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, sources: Dict[str, Tuple[str, ast.Module]],
              roots: Sequence[str] = (),
              cache_dir: Optional[str] = None) -> "ProjectContext":
        """Extract + link every module in *sources* (path → (src, tree))."""
        cache = pathlib.Path(cache_dir) if cache_dir else None
        if cache is not None:
            cache.mkdir(parents=True, exist_ok=True)
        modules: Dict[str, ModuleInfo] = {}
        for path in sorted(sources):
            source, tree = sources[path]
            info = None
            key = None
            if cache is not None:
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                key = cache / f"{digest}.json"
                if key.exists():
                    try:
                        info = ModuleInfo.from_json(
                            json.loads(key.read_text(encoding="utf-8")))
                        info.path = path     # cache hits keep the caller's path
                    except (ValueError, KeyError, TypeError):
                        info = None
            if info is None:
                mod = module_name_for(path, roots)
                info = _ModuleExtractor(mod, path, tree).info
                if key is not None:
                    key.write_text(json.dumps(info.to_json(), sort_keys=True),
                                   encoding="utf-8")
            modules[path] = info
        return cls(modules)

    # -- linking ---------------------------------------------------------

    def _resolve_class(self, name: str) -> Optional[ClassInfo]:
        """ClassInfo for a dotted name (exact qname, then unique tail)."""
        if name in self.classes:
            return self.classes[name]
        tail = name.rsplit(".", 1)[-1]
        candidates = self._class_by_tail.get(tail, ())
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        for qname in candidates:        # prefer a module-path match
            if qname.endswith(name):
                return self.classes[qname]
        return None

    def _method_owner(self, cls: ClassInfo, method: str,
                      depth: int = 0) -> Optional[str]:
        """Qname of *method* looked up through the project MRO slice."""
        if method in cls.methods:
            return f"{cls.qname}.{method}"
        if depth >= 8:
            return None
        for base in cls.bases:
            base_cls = self._resolve_class(base)
            if base_cls is not None:
                found = self._method_owner(base_cls, method, depth + 1)
                if found:
                    return found
        return None

    def _link(self) -> None:
        """Resolve every call site to a project function where possible."""
        for info in self.modules.values():
            for fn in info.functions.values():
                cls = self.classes.get(fn.cls) if fn.cls else None
                for site in fn.calls:
                    site.resolved = self._resolve_site(info, fn, cls, site)
                for sub in fn.submits:
                    sub.is_process_pool = self._recv_is_process_pool(
                        info, cls, sub.recv)
                    if sub.fn and sub.fn not in self.functions:
                        resolved = self._resolve_name(info, cls, sub.fn)
                        sub.fn = resolved or ""
                    sub.arg_types = tuple(
                        (self._resolve_class(t).qname
                         if self._resolve_class(t) else t)
                        for t in sub.arg_types)

    def _resolve_site(self, info: ModuleInfo, fn: FunctionInfo,
                      cls: Optional[ClassInfo], site: CallSite) -> str:
        resolved = self._resolve_name(info, cls, site.name, local_hint=fn)
        for alt in site.alt_names if resolved is None else ():
            resolved = self._resolve_name(info, cls, alt, local_hint=fn)
            if resolved is not None:
                break
        return resolved or ""

    def _recv_is_process_pool(self, info: ModuleInfo,
                              cls: Optional[ClassInfo], recv: str) -> bool:
        """Whether a submit receiver types as ProcessPoolExecutor —
        directly, or through the return annotation of the function that
        produced it (``pool = self._checkout_pool()``)."""
        name = recv[5:] if recv.startswith("call:") else recv
        if not name:
            return False
        if name.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
            return True
        producer = self._resolve_name(info, cls, name)
        if producer and producer in self.functions:
            ret = self.functions[producer].returns
            return ret.rsplit(".", 1)[-1] == "ProcessPoolExecutor"
        return False

    def _resolve_name(self, info: ModuleInfo, cls: Optional[ClassInfo],
                      name: str, local_hint: Optional[FunctionInfo] = None,
                      ) -> Optional[str]:
        head, _, rest = name.partition(".")
        # self.method() / super().method() — project MRO lookup.
        if head in ("self", "super") and cls is not None and rest:
            parts = rest.split(".")
            if len(parts) == 1:
                start = cls
                if head == "super":
                    for base in cls.bases:
                        base_cls = self._resolve_class(base)
                        if base_cls is not None:
                            owner = self._method_owner(base_cls, parts[0])
                            if owner:
                                return owner
                    return None
                owner = self._method_owner(start, parts[0])
                if owner:
                    return owner
                return None
            # self.attr.method() — typed-attribute dispatch.
            attr, method = parts[0], parts[-1]
            attr_type = cls.attr_types.get(attr, "")
            target = self._resolve_class(attr_type) if attr_type else None
            if target is not None:
                return self._method_owner(target, method)
            return None
        # Module-level function / class in this module.
        mod_prefix = info.module + "." if info.module else ""
        candidate = mod_prefix + name
        if candidate in self.functions:
            return candidate
        if candidate in self.classes:
            init = candidate + ".__init__"
            return init if init in self.functions else candidate
        # Fully-qualified (import-expanded) name.
        if name in self.functions:
            return name
        if name in self.classes:
            init = name + ".__init__"
            return init if init in self.functions else name
        # Class.method via a resolvable class prefix: Foo.bar / pkg.Foo.bar.
        if "." in name:
            prefix, method = name.rsplit(".", 1)
            target = self._resolve_class(prefix)
            if target is not None:
                return self._method_owner(target, method)
            # var.method() with a typed local (resolved at extraction for
            # submit sites only) — try the attr-values route: not enough
            # information here, give up.
        return None

    # -- queries ---------------------------------------------------------

    def edges_from(self, qname: str) -> List[CallSite]:
        """Resolved + unresolved call sites of one function (stable order)."""
        fn = self.functions.get(qname)
        return list(fn.calls) if fn is not None else []

    def find_path(self, start: str, is_terminal, *,
                  max_depth: int = MAX_DEPTH,
                  min_hops: int = 0) -> Optional[List[CallSite]]:
        """Bounded BFS from *start* to the first call site satisfying
        ``is_terminal(site)``; returns the call-site chain or None.

        ``min_hops`` skips terminals found in the first N expansions
        (SL102 ignores direct reads — those are SL001's findings).
        Deterministic: functions expand in sorted call-site order.
        """
        queue: List[Tuple[str, List[CallSite]]] = [(start, [])]
        seen: Set[str] = {start}
        depth = 0
        while queue and depth <= max_depth:
            next_queue: List[Tuple[str, List[CallSite]]] = []
            for qname, chain in queue:
                for site in self.edges_from(qname):
                    if depth >= min_hops and is_terminal(site):
                        return chain + [site]
                    target = site.resolved
                    if target and target in self.functions and target not in seen:
                        seen.add(target)
                        next_queue.append((target, chain + [site]))
            queue = next_queue
            depth += 1
        return None

    def functions_under(self, *parts: str) -> List[FunctionInfo]:
        """Functions whose path contains any of the given directory parts,
        sorted by (path, lineno) for deterministic rule evaluation."""
        wanted = set(parts)
        out = [fn for fn in self.functions.values()
               if wanted.intersection(pathlib.PurePath(fn.path).parts)]
        out.sort(key=lambda f: (f.path, f.lineno, f.qname))
        return out

    def field_types(self, cls: ClassInfo, depth: int = 0,
                    ) -> List[Tuple[FieldInfo, "ClassInfo"]]:
        """``(field, self_class)`` pairs for *cls* and its project bases."""
        out = [(f, cls) for f in cls.fields]
        if depth < 4:
            for base in cls.bases:
                base_cls = self._resolve_class(base)
                if base_cls is not None:
                    out.extend(self.field_types(base_cls, depth + 1))
        return out
