"""simlint core: findings, rules, file/project contexts and the driver.

The simulator's claims — reproducible runs, conserved bytes, honest pause
accounting — are *properties of the code*, not of any one test run. simlint
walks the source tree with Python's ``ast`` and enforces the determinism
and accounting disciplines statically, the way HotSpot's
``-XX:+VerifyBeforeGC``/``-XX:+VerifyAfterGC`` enforce heap well-formedness
at runtime (see :mod:`repro.lint.audit` for that half).

Two rule tiers share one driver:

* a :class:`Rule` visits one parsed file (:class:`FileContext`) and
  yields :class:`Finding` objects — the SL0xx family;
* a :class:`ProjectRule` visits the linked whole-program view
  (:class:`repro.lint.graph.ProjectContext`) — the SL1xx family, whose
  findings carry a *related* location (a blocking-call finding anchors
  at the call in the async body and points at the blocking terminal).

The driver evaluates file rules in parallel across files (findings are
re-sorted, so the order is deterministic regardless of worker count),
applies suppression comments (:mod:`repro.lint.suppress`) at the primary
*and* related locations, matches the committed baseline
(:mod:`repro.lint.baseline`), and separates rule *findings* from pass
*errors* (unparseable files, crashing rules) so the CLI can exit 1 vs 2.
"""

from __future__ import annotations

import ast
import pathlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .suppress import Directive, SuppressionTable

#: Directories never linted (caches, benchmark artefacts, VCS internals).
SKIP_DIRS = {"__pycache__", ".git", ".hg", "out", ".eggs", "build", "dist"}

#: Thread-count cap for the parallel file pass.
MAX_JOBS = 8


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str          #: path as given on the command line (relative ok)
    line: int          #: 1-based line number
    rule_id: str       #: e.g. ``SL001``
    message: str       #: human-readable explanation
    source_line: str = ""  #: stripped source text (baseline matching)
    #: Secondary location for whole-program findings (the *other* end of
    #: the path: taint source, blocking terminal, submit site). A
    #: suppression comment on either end silences the finding.
    related_path: str = ""
    related_line: int = 0

    def format(self) -> str:
        """Render as the canonical ``file:line rule-id message`` line."""
        base = f"{self.path}:{self.line} {self.rule_id} {self.message}"
        if self.related_path:
            base += f" [via {self.related_path}:{self.related_line}]"
        return base


class Rule:
    """Base class for per-file simlint rules.

    Subclasses set :attr:`rule_id`/:attr:`title` and implement
    :meth:`check`; :meth:`applies` restricts a rule to a path subset
    (e.g. SL003 only audits the deterministic core under ``sim/``,
    ``gc/`` and ``jvm/``).
    """

    rule_id: str = "SL000"
    title: str = "abstract rule"
    #: ProjectRule subclasses flip this; the driver routes accordingly.
    whole_program: bool = False

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on *ctx* at all (default: every file)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.path,
            line=line,
            rule_id=self.rule_id,
            message=message,
            source_line=ctx.line(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program (SL1xx) rules.

    ``check_project`` sees the linked :class:`~repro.lint.graph
    .ProjectContext` plus the per-path :class:`FileContext` map (for
    source lines and suppression tables).
    """

    whole_program = True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project, files: Dict[str, "FileContext"],
                      ) -> Iterator[Finding]:
        """Yield findings over the whole program."""
        raise NotImplementedError

    def wp_finding(self, files: Dict[str, "FileContext"], path: str,
                   line: int, message: str, *,
                   related: Optional[Tuple[str, int]] = None) -> Finding:
        """Build a whole-program finding with an optional related end."""
        ctx = files.get(path)
        rp, rl = related if related is not None else ("", 0)
        return Finding(
            path=path, line=line, rule_id=self.rule_id, message=message,
            source_line=ctx.line(line) if ctx is not None else "",
            related_path=rp, related_line=rl,
        )


class FileContext:
    """One parsed source file, shared by every rule."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions = SuppressionTable.from_source(source)
        #: Normalized posix path for rule scoping decisions.
        self.posix = pathlib.PurePath(path).as_posix()

    def line(self, lineno: int) -> str:
        """Stripped source text of 1-based *lineno* ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_subdirs(self, *names: str) -> bool:
        """True when the file lives under any of the named directories."""
        parts = set(pathlib.PurePath(self.posix).parts)
        return bool(parts.intersection(names))


@dataclass
class LintError:
    """One pass failure (not a rule finding): unparseable file, crashed
    rule. Any of these makes the run exit 2 — broken tooling must never
    masquerade as a clean tree."""

    path: str
    message: str

    def format(self) -> str:
        return f"{self.path}: {self.message}"


@dataclass
class UnusedSuppression:
    """A suppression directive that matched no finding this run."""

    path: str
    directive: Directive

    def format(self) -> str:
        rules = ",".join(self.directive.rules)
        return (f"{self.path}:{self.directive.lineno} unused suppression "
                f"({self.directive.kind}={rules})")


@dataclass
class LintResult:
    """Outcome of one lint run over a path set."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by ``# simlint:`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings matched (and hidden) by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Pass failures (unparseable files, crashed rules) — exit 2.
    errors: List[LintError] = field(default_factory=list)
    #: Suppression directives that matched nothing (stale debt).
    unused_suppressions: List[UnusedSuppression] = field(default_factory=list)
    files_checked: int = 0
    #: Files in the whole-program call graph (0 when the wp pass is off).
    wp_files: int = 0

    @property
    def ok(self) -> bool:
        """True when no *reportable* findings remain and nothing broke."""
        return not self.findings and not self.errors

    def by_rule(self) -> Dict[str, int]:
        """Reportable finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> Iterator[pathlib.Path]:
    """Expand files/directories into the sorted set of ``*.py`` files.

    ``exclude`` entries are directory prefixes (posix, relative) pruned
    from the walk — rule-violating lint fixtures live there on purpose.
    """
    def excluded(p: pathlib.Path) -> bool:
        posix = p.as_posix()
        for ex in exclude:
            ex = pathlib.PurePath(ex).as_posix().rstrip("/")
            if posix == ex or posix.startswith(ex + "/") or f"/{ex}/" in f"/{posix}":
                return True
        return False

    seen = []
    for raw in paths:
        p = pathlib.Path(raw)
        # A file named explicitly is linted regardless of `exclude` —
        # the prefixes prune directory *walks*, not direct requests.
        if p.is_file() and p.suffix == ".py":
            seen.append(p)
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts) and not excluded(sub):
                    seen.append(sub)
    return iter(seen)


def _check_file(ctx: FileContext, rules: Sequence[Rule],
                ) -> Tuple[List[Finding], List[Finding], List[LintError]]:
    """Run the per-file rules over one parsed context."""
    reportable: List[Finding] = []
    suppressed: List[Finding] = []
    errors: List[LintError] = []
    for rule in rules:
        if rule.whole_program or not rule.applies(ctx):
            continue
        try:
            found = list(rule.check(ctx))
        except Exception as exc:       # a rule crashing is OUR bug: exit 2
            errors.append(LintError(
                ctx.path, f"rule {rule.rule_id} crashed: {type(exc).__name__}: {exc}"))
            continue
        for finding in found:
            if ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed.append(finding)
            else:
                reportable.append(finding)
    reportable.sort(key=lambda f: (f.line, f.rule_id))
    return reportable, suppressed, errors


def lint_file(
    path: pathlib.Path,
    rules: Sequence[Rule],
    *,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(reportable, suppressed)`` findings.

    A file that fails to parse produces a single ``SL000`` syntax-error
    finding (never an exception): broken source must fail the lint pass,
    not crash it. (The full driver additionally records it as a pass
    *error* so the CLI exits 2 rather than 1.)
    """
    shown = display_path or str(path)
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(shown, source)
    except (SyntaxError, UnicodeDecodeError) as exc:
        lineno = getattr(exc, "lineno", 1) or 1
        return (
            [Finding(shown, lineno, "SL000", f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}")],
            [],
        )
    reportable, suppressed, _ = _check_file(ctx, rules)
    return reportable, suppressed


def _run_wp(
    contexts: Dict[str, FileContext],
    wp_rules: Sequence[ProjectRule],
    *,
    roots: Sequence[str],
    cache_dir: Optional[str],
    result: LintResult,
) -> List[Finding]:
    """Build the project context and evaluate the SL1xx rules."""
    from .graph import ProjectContext

    sources = {path: (ctx.source, ctx.tree) for path, ctx in contexts.items()}
    project = ProjectContext.build(sources, roots=roots, cache_dir=cache_dir)
    result.wp_files = len(project.modules)

    reportable: List[Finding] = []
    for rule in wp_rules:
        try:
            found = list(rule.check_project(project, contexts))
        except Exception as exc:
            result.errors.append(LintError(
                "<project>",
                f"rule {rule.rule_id} crashed: {type(exc).__name__}: {exc}"))
            continue
        for f in found:
            silenced = False
            ctx = contexts.get(f.path)
            if ctx is not None and ctx.suppressions.is_suppressed(f.rule_id, f.line):
                silenced = True
            rctx = contexts.get(f.related_path) if f.related_path else None
            if rctx is not None and rctx.suppressions.is_suppressed(
                    f.rule_id, f.related_line):
                silenced = True
            (result.suppressed if silenced else reportable).append(f)
    return reportable


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    baseline: Optional[Iterable[str]] = None,
    wp: bool = False,
    wp_rules: Optional[Sequence[ProjectRule]] = None,
    config=None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> LintResult:
    """Lint every Python file under *paths*.

    * ``rules`` — per-file rule set (default: :func:`default_rules`);
      per-directory profiles from ``config`` subset it further.
    * ``baseline`` — iterable of accepted keys (see
      :mod:`repro.lint.baseline`); matching findings are moved to
      ``result.baselined`` instead of failing the run.
    * ``wp`` — also run the whole-program SL1xx pass (``wp_rules``,
      default :func:`repro.lint.rules_wp.default_wp_rules`) over the
      files in ``config.wp_paths`` scope (all files when unset).
    * ``jobs`` — worker threads for the per-file pass (default: capped
      CPU count). Finding order is deterministic for any value.
    * ``cache_dir`` — parsed-AST/IR cache for the wp pass, keyed on each
      file's source hash.
    """
    import os

    from .baseline import assign_keys
    from .rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    file_rules = [r for r in active if not r.whole_program]
    selected_wp = [r for r in active if r.whole_program]
    if wp or selected_wp:
        if wp_rules is not None:
            project_rules = list(wp_rules)
        elif selected_wp:
            project_rules = selected_wp
        else:
            from .rules_wp import default_wp_rules
            project_rules = default_wp_rules()
    else:
        project_rules = []

    exclude = list(config.exclude) if config is not None else []
    result = LintResult()
    contexts: Dict[str, FileContext] = {}
    order: List[str] = []

    for path in iter_python_files(paths, exclude=exclude):
        shown = str(path)
        result.files_checked += 1
        order.append(shown)
        try:
            source = path.read_text(encoding="utf-8")
            contexts[shown] = FileContext(shown, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            msg = exc.msg if hasattr(exc, "msg") else str(exc)
            result.findings.append(
                Finding(shown, lineno, "SL000", f"file does not parse: {msg}"))
            result.errors.append(LintError(shown, f"does not parse: {msg}"))
        except OSError as exc:
            result.errors.append(LintError(shown, f"unreadable: {exc}"))

    # -- parallel per-file pass (deterministic via re-sort) --------------
    def profile_rules(path: str) -> Sequence[Rule]:
        if config is None:
            return file_rules
        allowed = config.profile_for(path)
        if allowed is None:
            return file_rules
        return [r for r in file_rules if r.rule_id in allowed]

    workers = jobs if jobs and jobs > 0 else min(MAX_JOBS, os.cpu_count() or 1)
    reportable: List[Finding] = []
    items = [(p, contexts[p]) for p in order if p in contexts]
    if workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(
                lambda it: _check_file(it[1], profile_rules(it[0])), items))
    else:
        outcomes = [_check_file(ctx, profile_rules(p)) for p, ctx in items]
    for rep, sup, errs in outcomes:
        reportable.extend(rep)
        result.suppressed.extend(sup)
        result.errors.extend(errs)

    # -- whole-program pass ----------------------------------------------
    if project_rules:
        if config is not None:
            # Scope boundaries are committed decisions ([tool.simlint]
            # wp_core / wp_async), not rule-class constants.
            for rule in project_rules:
                if rule.rule_id == "SL102" and config.wp_core:
                    rule.scope = tuple(config.wp_core)
                elif rule.rule_id in ("SL101", "SL104") and config.wp_async:
                    rule.scope = tuple(config.wp_async)
        wp_contexts = {
            p: c for p, c in contexts.items()
            if config is None or config.in_wp_scope(p)}
        roots = [str(p) for p in paths if pathlib.Path(p).is_dir()]
        reportable.extend(_run_wp(
            wp_contexts, project_rules, roots=roots,
            cache_dir=cache_dir, result=result))

    # -- ordering, baseline, stale suppressions --------------------------
    reportable.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    known = set(baseline or ())
    for finding, key in assign_keys(reportable):
        if key in known:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    for path in order:
        ctx = contexts.get(path)
        if ctx is None:
            continue
        for directive in ctx.suppressions.unused():
            result.unused_suppressions.append(UnusedSuppression(path, directive))
    return result
