"""simlint core: findings, rules, file contexts and the lint driver.

The simulator's claims — reproducible runs, conserved bytes, honest pause
accounting — are *properties of the code*, not of any one test run. simlint
walks the source tree with Python's ``ast`` and enforces the determinism
and accounting disciplines statically, the way HotSpot's
``-XX:+VerifyBeforeGC``/``-XX:+VerifyAfterGC`` enforce heap well-formedness
at runtime (see :mod:`repro.lint.audit` for that half).

A :class:`Rule` visits one parsed file (:class:`FileContext`) and yields
:class:`Finding` objects. The driver applies per-line suppression comments
(:mod:`repro.lint.suppress`) and an optional committed baseline
(:mod:`repro.lint.baseline`) before reporting.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .suppress import SuppressionTable

#: Directories never linted (caches, benchmark artefacts, VCS internals).
SKIP_DIRS = {"__pycache__", ".git", ".hg", "out", ".eggs", "build", "dist"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str          #: path as given on the command line (relative ok)
    line: int          #: 1-based line number
    rule_id: str       #: e.g. ``SL001``
    message: str       #: human-readable explanation
    source_line: str = ""  #: stripped source text (baseline matching)

    def format(self) -> str:
        """Render as the canonical ``file:line rule-id message`` line."""
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`rule_id`/:attr:`title` and implement
    :meth:`check`; :meth:`applies` restricts a rule to a path subset
    (e.g. SL003 only audits the deterministic core under ``sim/``,
    ``gc/`` and ``jvm/``).
    """

    rule_id: str = "SL000"
    title: str = "abstract rule"

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on *ctx* at all (default: every file)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.path,
            line=line,
            rule_id=self.rule_id,
            message=message,
            source_line=ctx.line(line),
        )


class FileContext:
    """One parsed source file, shared by every rule."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions = SuppressionTable.from_source(source)
        #: Normalized posix path for rule scoping decisions.
        self.posix = pathlib.PurePath(path).as_posix()

    def line(self, lineno: int) -> str:
        """Stripped source text of 1-based *lineno* ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_subdirs(self, *names: str) -> bool:
        """True when the file lives under any of the named directories."""
        parts = set(pathlib.PurePath(self.posix).parts)
        return bool(parts.intersection(names))


@dataclass
class LintResult:
    """Outcome of one lint run over a path set."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by ``# simlint: disable=`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings matched (and hidden) by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no *reportable* findings remain."""
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        """Reportable finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Expand files/directories into the sorted set of ``*.py`` files."""
    seen = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_file() and p.suffix == ".py":
            seen.append(p)
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts):
                    seen.append(sub)
    return iter(seen)


def lint_file(
    path: pathlib.Path,
    rules: Sequence[Rule],
    *,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(reportable, suppressed)`` findings.

    A file that fails to parse produces a single ``SL000`` syntax-error
    finding (never an exception): broken source must fail the lint pass,
    not crash it.
    """
    shown = display_path or str(path)
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(shown, source)
    except (SyntaxError, UnicodeDecodeError) as exc:
        lineno = getattr(exc, "lineno", 1) or 1
        return (
            [Finding(shown, lineno, "SL000", f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}")],
            [],
        )
    reportable: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed.append(finding)
            else:
                reportable.append(finding)
    reportable.sort(key=lambda f: (f.line, f.rule_id))
    return reportable, suppressed


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    baseline: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every Python file under *paths* with *rules*.

    ``baseline`` is an iterable of baseline keys (see
    :mod:`repro.lint.baseline`); matching findings are moved to
    ``result.baselined`` instead of failing the run.
    """
    from .baseline import finding_key
    from .rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    known = set(baseline or ())
    result = LintResult()
    for path in iter_python_files(paths):
        result.files_checked += 1
        reportable, suppressed = lint_file(path, active)
        result.suppressed.extend(suppressed)
        for f in reportable:
            if finding_key(f) in known:
                result.baselined.append(f)
            else:
                result.findings.append(f)
    return result
