"""Machine topology: cores, sockets, NUMA nodes, caches, RAM.

Only the quantities that influence the cost model are represented:
core/socket/NUMA counts (parallel efficiency, remote-access penalty) and
total RAM (maximum heap). Cache sizes are carried for documentation and
for the cache-locality term of the cost model.

Two machine shapes exist:

* :class:`MachineTopology` — the paper's homogeneous NUMA box.
* :class:`AsymmetricTopology` — a strict superset adding P/E-style
  :class:`CoreClass` groups (per-class frequency, per-thread GC
  bandwidth scaling, active/idle power).  A single-class asymmetric
  topology behaves byte-identically to the homogeneous model; the
  extra structure only matters to `repro.energy` placement policies
  and the joules-per-phase energy model (DESIGN.md §18).

Named topologies are registered in :data:`TOPOLOGIES` so configs,
campaign cells and CLIs can refer to a machine by name and round-trip
it through byte-stable JSON.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..errors import ConfigError
from ..units import GB, KB, MB


def _as_count(value: object, fname: str) -> int:
    """Coerce *value* to a positive ``int`` or raise :class:`ConfigError`.

    Accepts anything implementing ``__index__`` (so numpy integer
    scalars normalise to plain ``int`` and hash/encode identically) but
    rejects ``bool`` — ``sockets=True`` is a misconfiguration, not a
    1-socket box — and rejects floats outright: ``cores_per_numa_node=2.5``
    silently truncating would corrupt every packed-placement ceiling
    division downstream.
    """
    if isinstance(value, bool):
        raise ConfigError(f"{fname} must be an integer, got bool {value!r}")
    try:
        count = operator.index(value)  # type: ignore[arg-type]
    except TypeError:
        raise ConfigError(
            f"{fname} must be an integer, got {type(value).__name__} {value!r}"
        ) from None
    if count < 1:
        raise ConfigError(f"{fname} must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class CoreClass:
    """One homogeneous group of cores inside an asymmetric machine.

    ``gc_bw_scale`` is the per-thread GC bandwidth of this class
    relative to the calibrated cost-model baseline (the paper's
    homogeneous cores sit at 1.0); placement policies feed it into
    :class:`~repro.machine.costs.CostModel` rate scales.  ``active_w``
    and ``idle_w`` are per-core package power draws used by the energy
    model; a core doing work costs ``active_w``, a parked one ``idle_w``.
    """

    name: str
    count: int
    freq_ghz: float = 2.2
    gc_bw_scale: float = 1.0
    active_w: float = 10.0
    idle_w: float = 1.2

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("core class name must be a non-empty string")
        object.__setattr__(self, "count", _as_count(self.count, "core class count"))
        if self.freq_ghz <= 0:
            raise ConfigError(f"freq_ghz must be positive, got {self.freq_ghz}")
        if self.gc_bw_scale <= 0:
            raise ConfigError(f"gc_bw_scale must be positive, got {self.gc_bw_scale}")
        if self.active_w <= 0:
            raise ConfigError(f"active_w must be positive, got {self.active_w}")
        if self.idle_w < 0:
            raise ConfigError(f"idle_w must be >= 0, got {self.idle_w}")
        if self.idle_w > self.active_w:
            raise ConfigError(
                f"idle_w ({self.idle_w}) must not exceed active_w ({self.active_w})"
            )


@dataclass(frozen=True)
class MachineTopology:
    """A NUMA multicore machine.

    Parameters mirror the paper's experimental setup (§3.1): cores are
    distributed over sockets, each socket holding ``numa_nodes_per_socket``
    NUMA nodes of ``cores_per_numa_node`` cores each.

    **No-SMT assumption.** ``cores`` counts *hardware threads*, and the
    model assumes one hardware thread per physical core (the paper's
    box has SMT disabled). There is no notion of sibling threads
    sharing a core's execution resources: a machine with SMT should be
    described either by its physical core count (conservative) or by
    its hardware-thread count with correspondingly derated cost-model
    bandwidths — the topology itself cannot express the distinction.

    All three count fields must be integers (anything implementing
    ``__index__`` is normalised to ``int``); fractional or boolean
    values raise :class:`ConfigError` rather than silently truncating
    the packed-placement arithmetic.
    """

    name: str = "generic"
    sockets: int = 1
    numa_nodes_per_socket: int = 1
    cores_per_numa_node: int = 4
    ram_bytes: float = 16 * GB
    l1_bytes: float = 64 * KB
    l2_bytes: float = 512 * KB
    l3_bytes_per_numa_node: float = 8 * MB

    def __post_init__(self) -> None:
        object.__setattr__(self, "sockets", _as_count(self.sockets, "sockets"))
        object.__setattr__(
            self, "numa_nodes_per_socket",
            _as_count(self.numa_nodes_per_socket, "numa_nodes_per_socket"))
        object.__setattr__(
            self, "cores_per_numa_node",
            _as_count(self.cores_per_numa_node, "cores_per_numa_node"))
        if self.ram_bytes <= 0:
            raise ConfigError("ram_bytes must be positive")

    @property
    def numa_nodes(self) -> int:
        """Total NUMA node count."""
        return self.sockets * self.numa_nodes_per_socket

    @property
    def cores(self) -> int:
        """Total hardware-thread count (no SMT: one per physical core)."""
        return self.numa_nodes * self.cores_per_numa_node

    def core_class_layout(self) -> Tuple[CoreClass, ...]:
        """The machine's core classes, in physical core order.

        A homogeneous box is a single implicit class named ``uniform``
        at the calibrated baseline bandwidth (``gc_bw_scale=1.0``), so
        all class-aware code paths degenerate exactly to the
        homogeneous behaviour.
        """
        return (CoreClass(name="uniform", count=self.cores),)

    def core_class(self, name: str) -> CoreClass:
        """Look up a core class by name (:class:`ConfigError` if absent)."""
        for cls in self.core_class_layout():
            if cls.name == name:
                return cls
        known = [c.name for c in self.core_class_layout()]
        raise ConfigError(f"unknown core class {name!r} on {self.name}; known: {known}")

    def class_offset(self, name: str) -> int:
        """Index of the first core of class *name* (packed class layout).

        Classes occupy contiguous core ranges in declaration order:
        class *i* starts right after the last core of class *i-1*.
        """
        offset = 0
        for cls in self.core_class_layout():
            if cls.name == name:
                return offset
            offset += cls.count
        raise ConfigError(f"unknown core class {name!r} on {self.name}")

    def nodes_spanned(self, n_threads: int) -> int:
        """How many NUMA nodes *n_threads* threads occupy (packed placement).

        Thread placement is modelled as packed: threads fill one NUMA node
        before spilling onto the next, which matches the default Linux
        scheduler behaviour closely enough for the efficiency model.
        Thread counts above ``cores`` clamp to ``cores`` (the box cannot
        span more nodes than it has).
        """
        if n_threads <= 0:
            raise ConfigError("n_threads must be >= 1")
        n_threads = min(n_threads, self.cores)
        return -(-n_threads // self.cores_per_numa_node)  # ceil division

    def class_nodes_spanned(self, class_name: str, n_threads: int) -> int:
        """NUMA nodes spanned by *n_threads* packed into class *class_name*.

        The per-class variant of :meth:`nodes_spanned`: threads start at
        the class's first core (classes are laid out contiguously in
        declaration order) and fill consecutive cores, so a class that
        straddles a node boundary can span one node more than the same
        thread count packed from core 0 would. Thread counts above the
        class size clamp to the class size.
        """
        if n_threads <= 0:
            raise ConfigError("n_threads must be >= 1")
        cls = self.core_class(class_name)
        offset = self.class_offset(class_name)
        n_threads = min(n_threads, cls.count)
        cpn = self.cores_per_numa_node
        first_node = offset // cpn
        last_node = (offset + n_threads - 1) // cpn
        return last_node - first_node + 1

    def sockets_spanned(self, n_threads: int) -> int:
        """How many sockets *n_threads* threads occupy (packed placement)."""
        per_socket = self.numa_nodes_per_socket * self.cores_per_numa_node
        n_threads = min(max(n_threads, 1), self.cores)
        return -(-n_threads // per_socket)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.name}: {self.cores} cores, {self.sockets} sockets x "
            f"{self.numa_nodes_per_socket} NUMA nodes x {self.cores_per_numa_node} cores, "
            f"{self.ram_bytes / GB:.0f} GB RAM"
        )


@dataclass(frozen=True)
class AsymmetricTopology(MachineTopology):
    """A NUMA machine with named core classes (P/E-style asymmetry).

    A strict superset of :class:`MachineTopology`: the NUMA geometry is
    unchanged and all inherited cost-model inputs behave identically —
    only :meth:`core_class_layout` reports the explicit classes instead
    of the implicit uniform one. With a single class at
    ``gc_bw_scale=1.0`` every simulation output is byte-identical to
    the homogeneous equivalent (pinned in tests and CI).

    Classes occupy contiguous core ranges in declaration order; their
    counts must sum to ``cores`` exactly.
    """

    core_classes: Tuple[CoreClass, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "core_classes", tuple(self.core_classes))
        if not self.core_classes:
            raise ConfigError("AsymmetricTopology needs at least one core class")
        names = [c.name for c in self.core_classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate core class names: {names}")
        total = sum(c.count for c in self.core_classes)
        if total != self.cores:
            raise ConfigError(
                f"core class counts sum to {total}, topology has {self.cores} cores"
            )

    def core_class_layout(self) -> Tuple[CoreClass, ...]:
        return self.core_classes

    def describe(self) -> str:
        classes = ", ".join(
            f"{c.count}x{c.name}@{c.freq_ghz:g}GHz" for c in self.core_classes
        )
        return super().describe() + f" [{classes}]"


#: The paper's server (§3.1): 48 cores over 4 sockets, 2 NUMA nodes per
#: socket, 6 cores each, 64 GB RAM, 1.5 MB L1 / 6 MB L2 per core and
#: 12 MB L3 per NUMA node (sizes as reported in the paper).
PAPER_SERVER = MachineTopology(
    name="paper-48core",
    sockets=4,
    numa_nodes_per_socket=2,
    cores_per_numa_node=6,
    ram_bytes=64 * GB,
    l1_bytes=1.5 * MB,
    l2_bytes=6 * MB,
    l3_bytes_per_numa_node=12 * MB,
)

#: The paper's YCSB client machine (§4): 16 cores, 8 GB RAM.
PAPER_CLIENT = MachineTopology(
    name="paper-16core-client",
    sockets=2,
    numa_nodes_per_socket=1,
    cores_per_numa_node=8,
    ram_bytes=8 * GB,
)

#: The paper's server re-expressed as a single-class asymmetric box.
#: Exists purely as the byte-identity witness: every collector/workload
#: cell must simulate identically on this topology and on
#: :data:`PAPER_SERVER` (see tests/test_energy_identity.py and the CI
#: ``energy-smoke`` job).
PAPER_SERVER_1CLASS = AsymmetricTopology(
    name="paper-48core-1class",
    sockets=4,
    numa_nodes_per_socket=2,
    cores_per_numa_node=6,
    ram_bytes=64 * GB,
    l1_bytes=1.5 * MB,
    l2_bytes=6 * MB,
    l3_bytes_per_numa_node=12 * MB,
    core_classes=(CoreClass(name="uniform", count=48),),
)

#: An Alder-Lake-style hybrid client: 8 performance cores + 16
#: efficiency cores on one die. E-cores run GC work at ~0.65x the
#: calibrated per-thread bandwidth but draw less than a third of the
#: active power — the machine the energy/pause Pareto study (X7) pivots
#: on. Power figures are representative per-core package draws, not a
#: measured part.
ASYM_HYBRID = AsymmetricTopology(
    name="asym-hybrid",
    sockets=1,
    numa_nodes_per_socket=1,
    cores_per_numa_node=24,
    ram_bytes=32 * GB,
    l1_bytes=80 * KB,
    l2_bytes=1.25 * MB,
    l3_bytes_per_numa_node=30 * MB,
    core_classes=(
        CoreClass(name="P", count=8, freq_ghz=3.8, gc_bw_scale=1.0,
                  active_w=13.0, idle_w=1.6),
        CoreClass(name="E", count=16, freq_ghz=2.4, gc_bw_scale=0.65,
                  active_w=3.2, idle_w=0.45),
    ),
)

#: A two-socket asymmetric server: 16 P-cores + 48 E-cores across four
#: NUMA nodes, for studies that need placement and NUMA effects to
#: interact.
ASYM_SERVER = AsymmetricTopology(
    name="asym-64core",
    sockets=2,
    numa_nodes_per_socket=2,
    cores_per_numa_node=16,
    ram_bytes=128 * GB,
    l1_bytes=80 * KB,
    l2_bytes=2 * MB,
    l3_bytes_per_numa_node=36 * MB,
    core_classes=(
        CoreClass(name="P", count=16, freq_ghz=3.4, gc_bw_scale=1.0,
                  active_w=12.0, idle_w=1.5),
        CoreClass(name="E", count=48, freq_ghz=2.2, gc_bw_scale=0.6,
                  active_w=4.5, idle_w=0.5),
    ),
)


#: Registry of named topologies: configs and campaign cells refer to
#: machines by name so cell digests and store records stay byte-stable.
TOPOLOGIES: Dict[str, MachineTopology] = {}


def register_topology(topo: MachineTopology) -> MachineTopology:
    """Register *topo* under its name; re-registering the same value is a
    no-op, a different value under an existing name is a
    :class:`ConfigError` (names are part of persisted cell digests)."""
    existing = TOPOLOGIES.get(topo.name)
    if existing is not None and existing != topo:
        raise ConfigError(f"topology name {topo.name!r} already registered")
    TOPOLOGIES[topo.name] = topo
    return topo


def resolve_topology(spec: Union[str, MachineTopology]) -> MachineTopology:
    """Resolve a topology given by name or instance."""
    if isinstance(spec, MachineTopology):
        return spec
    if isinstance(spec, str):
        try:
            return TOPOLOGIES[spec]
        except KeyError:
            raise ConfigError(
                f"unknown topology {spec!r}; known: {sorted(TOPOLOGIES)}"
            ) from None
    raise ConfigError(f"topology must be a name or MachineTopology, got {spec!r}")


for _topo in (PAPER_SERVER, PAPER_CLIENT, PAPER_SERVER_1CLASS,
              ASYM_HYBRID, ASYM_SERVER):
    register_topology(_topo)
del _topo
