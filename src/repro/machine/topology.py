"""Machine topology: cores, sockets, NUMA nodes, caches, RAM.

Only the quantities that influence the cost model are represented:
core/socket/NUMA counts (parallel efficiency, remote-access penalty) and
total RAM (maximum heap). Cache sizes are carried for documentation and
for the cache-locality term of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import GB, KB, MB


@dataclass(frozen=True)
class MachineTopology:
    """A NUMA multicore machine.

    Parameters mirror the paper's experimental setup (§3.1): cores are
    distributed over sockets, each socket holding ``numa_nodes_per_socket``
    NUMA nodes of ``cores_per_numa_node`` cores each.
    """

    name: str = "generic"
    sockets: int = 1
    numa_nodes_per_socket: int = 1
    cores_per_numa_node: int = 4
    ram_bytes: float = 16 * GB
    l1_bytes: float = 64 * KB
    l2_bytes: float = 512 * KB
    l3_bytes_per_numa_node: float = 8 * MB

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.numa_nodes_per_socket < 1 or self.cores_per_numa_node < 1:
            raise ConfigError("topology counts must be >= 1")
        if self.ram_bytes <= 0:
            raise ConfigError("ram_bytes must be positive")

    @property
    def numa_nodes(self) -> int:
        """Total NUMA node count."""
        return self.sockets * self.numa_nodes_per_socket

    @property
    def cores(self) -> int:
        """Total hardware-thread count (the paper's box has no SMT)."""
        return self.numa_nodes * self.cores_per_numa_node

    def nodes_spanned(self, n_threads: int) -> int:
        """How many NUMA nodes *n_threads* threads occupy (packed placement).

        Thread placement is modelled as packed: threads fill one NUMA node
        before spilling onto the next, which matches the default Linux
        scheduler behaviour closely enough for the efficiency model.
        """
        if n_threads <= 0:
            raise ConfigError("n_threads must be >= 1")
        n_threads = min(n_threads, self.cores)
        return -(-n_threads // self.cores_per_numa_node)  # ceil division

    def sockets_spanned(self, n_threads: int) -> int:
        """How many sockets *n_threads* threads occupy (packed placement)."""
        per_socket = self.numa_nodes_per_socket * self.cores_per_numa_node
        n_threads = min(max(n_threads, 1), self.cores)
        return -(-n_threads // per_socket)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.name}: {self.cores} cores, {self.sockets} sockets x "
            f"{self.numa_nodes_per_socket} NUMA nodes x {self.cores_per_numa_node} cores, "
            f"{self.ram_bytes / GB:.0f} GB RAM"
        )


#: The paper's server (§3.1): 48 cores over 4 sockets, 2 NUMA nodes per
#: socket, 6 cores each, 64 GB RAM, 1.5 MB L1 / 6 MB L2 per core and
#: 12 MB L3 per NUMA node (sizes as reported in the paper).
PAPER_SERVER = MachineTopology(
    name="paper-48core",
    sockets=4,
    numa_nodes_per_socket=2,
    cores_per_numa_node=6,
    ram_bytes=64 * GB,
    l1_bytes=1.5 * MB,
    l2_bytes=6 * MB,
    l3_bytes_per_numa_node=12 * MB,
)

#: The paper's YCSB client machine (§4): 16 cores, 8 GB RAM.
PAPER_CLIENT = MachineTopology(
    name="paper-16core-client",
    sockets=2,
    numa_nodes_per_socket=1,
    cores_per_numa_node=8,
    ram_bytes=8 * GB,
)
