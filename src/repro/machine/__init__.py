"""Multicore machine model: topology and GC/allocation cost model.

The paper's experiments ran on a 48-core, 4-socket server (2 NUMA nodes
per socket, 6 cores per node, 64 GB RAM). :class:`MachineTopology`
describes such a box; :class:`CostModel` converts GC *work* (bytes
marked / copied / compacted, cards scanned...) into simulated *time*,
including parallel efficiency with a NUMA remote-access penalty in the
spirit of Gidra et al.'s scalability studies.

:class:`AsymmetricTopology` extends the model to P/E-style hybrid
machines: named :class:`CoreClass` groups with per-class frequency, GC
bandwidth scaling, and active/idle power, consumed by the
`repro.energy` placement policies and energy model (DESIGN.md §18).
"""

from .topology import (
    ASYM_HYBRID,
    ASYM_SERVER,
    AsymmetricTopology,
    CoreClass,
    MachineTopology,
    PAPER_CLIENT,
    PAPER_SERVER,
    PAPER_SERVER_1CLASS,
    TOPOLOGIES,
    register_topology,
    resolve_topology,
)
from .costs import CostModel

__all__ = [
    "MachineTopology",
    "AsymmetricTopology",
    "CoreClass",
    "CostModel",
    "PAPER_SERVER",
    "PAPER_CLIENT",
    "PAPER_SERVER_1CLASS",
    "ASYM_HYBRID",
    "ASYM_SERVER",
    "TOPOLOGIES",
    "register_topology",
    "resolve_topology",
]
