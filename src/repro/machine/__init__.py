"""Multicore machine model: topology and GC/allocation cost model.

The paper's experiments ran on a 48-core, 4-socket server (2 NUMA nodes
per socket, 6 cores per node, 64 GB RAM). :class:`MachineTopology`
describes such a box; :class:`CostModel` converts GC *work* (bytes
marked / copied / compacted, cards scanned...) into simulated *time*,
including parallel efficiency with a NUMA remote-access penalty in the
spirit of Gidra et al.'s scalability studies.
"""

from .topology import MachineTopology, PAPER_SERVER, PAPER_CLIENT
from .costs import CostModel

__all__ = ["MachineTopology", "CostModel", "PAPER_SERVER", "PAPER_CLIENT"]
