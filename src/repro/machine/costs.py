"""Cost model: converts GC work into simulated time.

This is the calibration core of the reproduction. Collectors report *work*
(bytes marked, copied, compacted, swept; cards scanned; objects handled)
and the cost model turns work into seconds on a given
:class:`~repro.machine.topology.MachineTopology`.

Design notes
------------

* **Per-thread bandwidths** are calibrated so that baseline runs land in
  the paper's ballpark (young pauses of hundreds of ms on DaCapo;
  minutes-long parallel full GCs on a 64 GB mostly-live heap).
* **Parallel efficiency** follows Gidra et al. (cited by the paper):
  GC throughput saturates around 2.5-3x the single-thread rate on the
  48-core NUMA box because of synchronization and remote scanning.
  We model ``eff(n) = n / (1 + alpha (n-1))`` damped by a NUMA factor
  once the GC threads span multiple NUMA nodes.
* **Promotion slowdown** — Parallel Scavenge promotion degrades sharply
  as the old generation fills (PLAB claiming serializes on the shared
  expand lock). This reproduces the paper's 17-25 s ParallelOld young
  pauses on Cassandra while CMS (free-list promotion replenished by the
  concurrent sweeper) and G1 (pause-target-sized young) stay in the
  2-3.5 s range. See DESIGN.md §6.5.
* All methods are pure functions of their inputs — no hidden state — so
  collectors remain deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import GB, MB, MS, US
from .topology import MachineTopology, PAPER_SERVER


@dataclass(frozen=True)
class CostModel:
    """Machine cost model for GC and allocation work.

    All ``*_bw`` fields are single-GC-thread bandwidths in bytes/second;
    aggregate STW rates are obtained via :meth:`effective_threads`.
    """

    topology: MachineTopology = PAPER_SERVER

    # -- per-GC-thread bandwidths (bytes/s) -------------------------------
    # Calibrated so that, together with the locality factor below, a
    # 16 GB-heap young collection runs at the rates observed for DaCapo
    # and a 64 GB-heap collection collapses as Gidra et al. report.
    copy_bw: float = 344 * MB         #: evacuation / survivor copying
    mark_bw: float = 688 * MB         #: tracing live objects
    compact_bw: float = 275 * MB      #: sliding compaction (mark-compact)
    sweep_bw: float = 2060 * MB       #: free-list sweeping (no moving)
    card_scan_bw: float = 1.4 * GB    #: scanning dirty-card-covered old-gen bytes

    # -- parallel efficiency ----------------------------------------------
    alpha: float = 0.28               #: synchronization drag per extra thread
    numa_gamma: float = 0.08          #: penalty per extra NUMA node spanned
    #: Single-threaded phases need no synchronization (no work-stealing
    #: barriers, no CAS on shared stacks) and run above the per-thread
    #: parallel bandwidth — this keeps serial full GCs competitive at
    #: DaCapo-sized live sets, as the paper observes.
    serial_bonus: float = 2.3
    #: Serial *young* collections don't enjoy the full sequential-bandwidth
    #: bonus: copying sparse survivors is latency-bound. Used by the young
    #: pause pricing when a collector runs single-threaded.
    serial_young_bonus: float = 1.5
    #: NUMA locality drag: GC bandwidth on this machine degrades as the
    #: heap grows towards the full RAM (objects spread across all NUMA
    #: nodes; remote scanning/copying dominates — Gidra et al. [12, 13]).
    #: Effective rates are multiplied by ``1 / (1 + k * heap / RAM)``.
    locality_k: float = 1.5

    # -- GC-thread placement (asymmetric machines) -------------------------
    #: Per-thread bandwidth multipliers applied when GC threads are pinned
    #: to a core class of an :class:`~repro.machine.topology
    #: .AsymmetricTopology` (DESIGN.md §18). ``young_gc_rate`` scales young
    #: evacuation, ``old_gc_rate`` scales full/old STW phases priced through
    #: :meth:`stw_duration`, ``conc_gc_rate`` scales concurrent phases. The
    #: defaults of exactly 1.0 are byte-transparent: ``x * 1.0`` is
    #: IEEE-754-exact, so homogeneous runs are unchanged to the bit.
    young_gc_rate: float = 1.0
    old_gc_rate: float = 1.0
    conc_gc_rate: float = 1.0

    # -- safepoints ---------------------------------------------------------
    safepoint_base: float = 1.0 * MS          #: time-to-safepoint floor
    safepoint_per_thread: float = 0.05 * MS   #: per running mutator thread

    # -- allocation path -----------------------------------------------------
    tlab_refill_cost: float = 2.0 * US        #: CAS + zeroing start per refill
    tlab_bump_cost_per_byte: float = 0.0      #: bump-pointer alloc ~ free
    shared_alloc_cost_per_object: float = 0.03 * US  #: lock path, uncontended
    contention_exponent: float = 0.35  #: lock cost grows ~ threads**exponent

    # -- promotion ------------------------------------------------------------
    #: Fraction of promotion bandwidth remaining when the old generation is
    #: completely full, for collectors with ``promotion_degrades=True``
    #: (Parallel Scavenge family). bw_factor = max(floor, 1 - k*occ**4).
    promotion_floor: float = 0.04
    promotion_knee: float = 0.96

    # -- miscellaneous fixed costs ---------------------------------------------
    page_touch_bw: float = 24 * GB    #: first-touch zeroing of new heap pages
    reference_processing: float = 2.0 * MS  #: weak/soft ref processing per STW GC

    def __post_init__(self) -> None:
        for name in ("copy_bw", "mark_bw", "compact_bw", "sweep_bw", "card_scan_bw"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not (0 <= self.promotion_floor <= 1):
            raise ConfigError("promotion_floor must be in [0, 1]")
        for name in ("young_gc_rate", "old_gc_rate", "conc_gc_rate"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        # Memo tables for the two pure lookups on the per-pause hot path.
        # Keys are thread counts and configured heap sizes — a handful of
        # distinct values per run. Attached via object.__setattr__ because
        # the dataclass is frozen; they are not fields, so eq/repr/replace
        # ignore them.
        object.__setattr__(self, "_eff_threads_memo", {})
        object.__setattr__(self, "_locality_memo", {})

    # ------------------------------------------------------------------
    # Parallelism
    # ------------------------------------------------------------------

    def default_gc_threads(self) -> int:
        """HotSpot's ParallelGCThreads ergonomics: ``8 + (ncpus-8) * 5/8``."""
        n = self.topology.cores
        return n if n <= 8 else int(8 + (n - 8) * 5 / 8)

    def default_concurrent_gc_threads(self) -> int:
        """HotSpot's ConcGCThreads ergonomics: ``(ParallelGCThreads+3)/4``."""
        return max(1, (self.default_gc_threads() + 3) // 4)

    def effective_threads(self, n_threads: int) -> float:
        """Effective parallelism of *n_threads* GC threads.

        Saturating speedup with a NUMA damping factor; ``effective_threads(1)
        == 1`` exactly, so serial collectors pay no parallel overhead.
        """
        value = self._eff_threads_memo.get(n_threads)
        if value is not None:
            return value
        if n_threads < 1:
            raise ConfigError("n_threads must be >= 1")
        n = min(n_threads, self.topology.cores)
        if n == 1:
            value = self.serial_bonus
        else:
            speedup = n / (1.0 + self.alpha * (n - 1))
            nodes = self.topology.nodes_spanned(n)
            numa = 1.0 / (1.0 + self.numa_gamma * (nodes - 1))
            value = max(speedup * numa, 1.0)
        self._eff_threads_memo[n_threads] = value
        return value

    def locality(self, heap_bytes: float) -> float:
        """Bandwidth multiplier for a heap of *heap_bytes* on this machine.

        1.0 would be a perfectly node-local heap; the factor decays as the
        heap spans more of the machine's memory (remote accesses dominate).
        """
        value = self._locality_memo.get(heap_bytes)
        if value is not None:
            return value
        if heap_bytes < 0:
            raise ConfigError("heap_bytes must be >= 0")
        value = 1.0 / (1.0 + self.locality_k * heap_bytes / self.topology.ram_bytes)
        self._locality_memo[heap_bytes] = value
        return value

    # ------------------------------------------------------------------
    # STW phase durations
    # ------------------------------------------------------------------

    def stw_duration(
        self,
        *,
        n_threads: int = 1,
        copied: float = 0.0,
        marked: float = 0.0,
        compacted: float = 0.0,
        swept: float = 0.0,
        cards_scanned: float = 0.0,
        fixed: float = 0.0,
        overhead_factor: float = 1.0,
        rate_factor: float = 1.0,
    ) -> float:
        """Duration of one stop-the-world phase given its work volumes.

        ``overhead_factor`` multiplies the whole phase; collectors use it
        for structural penalties (e.g. G1's serial full GC region
        bookkeeping). ``rate_factor`` scales the bandwidths (locality).
        """
        eff = self.effective_threads(n_threads) * max(rate_factor, 1e-6)
        eff *= self.old_gc_rate
        t = (
            copied / (self.copy_bw * eff)
            + marked / (self.mark_bw * eff)
            + compacted / (self.compact_bw * eff)
            + swept / (self.sweep_bw * eff)
            + cards_scanned / (self.card_scan_bw * eff)
        )
        return (t + fixed) * overhead_factor

    def promotion_bw_factor(self, old_occupancy: float) -> float:
        """Bandwidth factor for degrading promotion (Parallel Scavenge).

        1.0 while the old generation is comfortably empty, dropping steeply
        past ~80 % occupancy down to :attr:`promotion_floor` when full.
        """
        occ = min(max(old_occupancy, 0.0), 1.0)
        return max(self.promotion_floor, 1.0 - self.promotion_knee * occ ** 4)

    def concurrent_duration(self, *, marked: float = 0.0, swept: float = 0.0,
                            n_threads: int = 1, rate_factor: float = 1.0) -> float:
        """Duration of a concurrent (non-STW) phase.

        Concurrent phases run at ~70 % of the STW bandwidth per thread
        (they contend with mutators for memory bandwidth).
        """
        eff = self.effective_threads(n_threads) * 0.7 * max(rate_factor, 1e-6)
        eff *= self.conc_gc_rate
        return marked / (self.mark_bw * eff) + swept / (self.sweep_bw * eff)

    # ------------------------------------------------------------------
    # Safepoints
    # ------------------------------------------------------------------

    def time_to_safepoint(self, n_mutator_threads: int) -> float:
        """Time for all mutators to reach the safepoint once requested."""
        return self.safepoint_base + self.safepoint_per_thread * max(0, n_mutator_threads)

    # ------------------------------------------------------------------
    # Allocation path
    # ------------------------------------------------------------------

    def alloc_overhead(
        self,
        *,
        n_bytes: float,
        n_objects: float,
        tlab_enabled: bool,
        tlab_size: float,
        n_threads: int,
    ) -> float:
        """Mutator-side CPU time spent in the allocation path (one thread).

        With TLABs: a bump-pointer fast path plus one refill (CAS on the
        shared eden pointer) per TLAB worth of bytes. Without TLABs: every
        allocation takes the shared lock, whose cost grows with the number
        of allocating threads (``threads ** contention_exponent``).
        """
        if n_bytes < 0 or n_objects < 0:
            raise ConfigError("allocation volumes must be non-negative")
        if tlab_enabled:
            if tlab_size <= 0:
                raise ConfigError("tlab_size must be positive when TLAB enabled")
            refills = n_bytes / tlab_size
            return refills * self.tlab_refill_cost + n_bytes * self.tlab_bump_cost_per_byte
        contention = max(1, n_threads) ** self.contention_exponent
        return n_objects * self.shared_alloc_cost_per_object * contention

    def heap_touch_time(self, heap_bytes: float) -> float:
        """One-off cost of first-touching (zeroing) the committed heap."""
        return heap_bytes / self.page_touch_bw
