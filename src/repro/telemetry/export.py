"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, text reports.

The on-disk trace is JSON Lines with three record types::

    {"type": "meta",    "v": 1, "meta": {...run coordinates...}}
    {"type": "event",   "t": ..., "seq": ..., "name": ..., "dur": ..., "args": {...}}
    {"type": "summary", "counts": {...}, "events_dropped": ..., "pause_hist": {...}}

Every line is serialized with sorted keys and compact separators, and
every value derives from simulated time and the run's own configuration
— so two runs with the same seed produce **byte-identical** files (an
acceptance criterion pinned by ``tests/test_trace_cli.py``).

:func:`to_chrome` converts a trace to the Chrome ``trace_event`` format
(the JSON-object flavour with a ``traceEvents`` array), which Perfetto
and ``chrome://tracing`` open directly: STW pauses and concurrent phases
become complete (``X``) slices on separate tracks, instant events become
``i`` markers, and heap occupancy becomes a counter (``C``) track.
:func:`validate_chrome` checks the subset of the schema we emit and is
run in CI against a real exported trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .events import (ALLOC_STALL, CONCURRENT_PHASE, CONCURRENT_RELOCATION,
                     GC_PHASE, SAFEPOINT_END, TraceEvent)
from .hist import LogHistogram
from .tracer import Tracer

#: Bump on incompatible trace-file layout changes.
TRACE_SCHEMA_VERSION = 1

#: Microseconds per simulated second (trace_event timestamps are in µs).
_US = 1_000_000.0

_TID_MUTATOR = 0   # safepoints / mutator-side instants
_TID_STW = 1       # stop-the-world pauses
_TID_CONC = 2      # concurrent GC phases


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class Trace:
    """An in-memory trace: meta line + events + summary line."""

    meta: Dict[str, object] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def pause_hist(self) -> LogHistogram:
        """The trace's pause histogram (empty if the summary lacks one)."""
        d = self.summary.get("pause_hist")
        return LogHistogram.from_dict(d) if d else LogHistogram()

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return int(self.summary.get("events_dropped", 0))


def write_trace(tracer: Tracer, path: str) -> None:
    """Serialize *tracer*'s state to the JSONL trace file *path*."""
    with open(path, "w") as fh:
        fh.write(_dumps({"type": "meta", "v": TRACE_SCHEMA_VERSION,
                         "meta": tracer.meta}) + "\n")
        for ev in tracer.ring:
            line = {"type": "event"}
            line.update(ev.to_dict())
            fh.write(_dumps(line) + "\n")
        summary = {"type": "summary"}
        summary.update(tracer.summary())
        fh.write(_dumps(summary) + "\n")


def read_trace(path: str) -> Trace:
    """Parse a JSONL trace file back into a :class:`Trace`."""
    trace = Trace()
    try:
        fh = open(path)
    except OSError as exc:
        raise ReproError(f"cannot open trace {path}: {exc}")
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except ValueError:
                raise ReproError(f"{path}:{lineno}: not valid JSON")
            kind = d.get("type")
            if kind == "meta":
                if d.get("v") != TRACE_SCHEMA_VERSION:
                    raise ReproError(
                        f"{path}: trace schema v{d.get('v')} != "
                        f"supported v{TRACE_SCHEMA_VERSION}")
                trace.meta = d.get("meta", {})
            elif kind == "event":
                trace.events.append(TraceEvent.from_dict(d))
            elif kind == "summary":
                trace.summary = {k: v for k, v in d.items() if k != "type"}
            else:
                raise ReproError(f"{path}:{lineno}: unknown record type {kind!r}")
    return trace


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

def to_chrome(trace: Trace) -> Dict[str, object]:
    """Convert *trace* to a Chrome/Perfetto ``trace_event`` document."""
    out: List[Dict[str, object]] = []
    pid = 0
    out.append({"ph": "M", "pid": pid, "tid": _TID_MUTATOR, "ts": 0,
                "name": "process_name",
                "args": {"name": trace.meta.get("workload", "simulated-jvm")}})
    for tid, label in ((_TID_MUTATOR, "mutators/safepoints"),
                       (_TID_STW, "GC (stop-the-world)"),
                       (_TID_CONC, "GC (concurrent)")):
        out.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                    "name": "thread_name", "args": {"name": label}})
    for ev in trace.events:
        ts = ev.t * _US
        if ev.name == GC_PHASE:
            out.append({"ph": "X", "pid": pid, "tid": _TID_STW, "ts": ts,
                        "dur": ev.dur * _US,
                        "name": str(ev.args.get("kind", "gc")),
                        "cat": "gc", "args": ev.args})
            out.append({"ph": "C", "pid": pid, "tid": _TID_STW, "ts": ts,
                        "name": "heap_used",
                        "args": {"bytes": ev.args.get("heap_before", 0)}})
            out.append({"ph": "C", "pid": pid, "tid": _TID_STW,
                        "ts": ts + ev.dur * _US, "name": "heap_used",
                        "args": {"bytes": ev.args.get("heap_after", 0)}})
        elif ev.name == CONCURRENT_PHASE:
            out.append({"ph": "X", "pid": pid, "tid": _TID_CONC, "ts": ts,
                        "dur": ev.dur * _US,
                        "name": str(ev.args.get("phase", "concurrent")),
                        "cat": "gc", "args": ev.args})
        elif ev.name == CONCURRENT_RELOCATION:
            out.append({"ph": "X", "pid": pid, "tid": _TID_CONC, "ts": ts,
                        "dur": ev.dur * _US, "name": "relocation",
                        "cat": "gc", "args": ev.args})
        elif ev.name == ALLOC_STALL:
            out.append({"ph": "X", "pid": pid, "tid": _TID_MUTATOR, "ts": ts,
                        "dur": ev.dur * _US, "name": "alloc_stall",
                        "cat": "gc", "args": ev.args})
        elif ev.name == SAFEPOINT_END:
            out.append({"ph": "X", "pid": pid, "tid": _TID_MUTATOR, "ts": ts,
                        "dur": ev.dur * _US, "name": "safepoint",
                        "cat": "safepoint", "args": ev.args})
        else:
            out.append({"ph": "i", "pid": pid, "tid": _TID_MUTATOR, "ts": ts,
                        "s": "t", "name": ev.name, "cat": "telemetry",
                        "args": ev.args})
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": dict(trace.meta)}


def validate_chrome(doc: Dict[str, object]) -> List[str]:
    """Schema-check a trace_event document; returns a list of problems.

    Covers the subset we emit: top-level ``traceEvents`` array, per-event
    required keys, known phase codes, numeric non-negative timestamps,
    durations on complete events, scope on instant events.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in {"X", "i", "C", "M", "B", "E"}:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid", "ts"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs numeric dur")
        if ph == "i" and ev.get("s") not in {"t", "p", "g"}:
            problems.append(f"{where}: instant event needs scope s in t/p/g")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: counter event needs args dict")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def write_chrome(trace: Trace, path: str) -> None:
    """Export *trace* to Perfetto-openable JSON at *path* (validated)."""
    doc = to_chrome(trace)
    problems = validate_chrome(doc)
    if problems:  # pragma: no cover - emission and validator agree
        raise ReproError("chrome export failed validation: " + "; ".join(problems))
    with open(path, "w") as fh:
        fh.write(_dumps(doc))


# ----------------------------------------------------------------------
# Text reports
# ----------------------------------------------------------------------

_REPORT_QS: Sequence[float] = (50, 90, 99, 99.9, 100)


def render_report(trace: Trace, qs: Sequence[float] = _REPORT_QS) -> str:
    """Plain-text percentile report for one trace."""
    lines: List[str] = []
    meta = " ".join(f"{k}={trace.meta[k]}" for k in sorted(trace.meta))
    lines.append(f"trace: {meta or '(no meta)'}")
    counts = trace.summary.get("counts", {})
    total = trace.summary.get("events_emitted", len(trace.events))
    lines.append(f"events: {total} emitted, {len(trace.events)} buffered, "
                 f"{trace.dropped} dropped")
    for name in sorted(counts):
        lines.append(f"  {name:<20} {counts[name]}")
    hist = trace.pause_hist
    lines.append(f"pauses: {hist.total_count} "
                 f"(mean {hist.mean * 1000:.3f} ms, "
                 f"±{hist.relative_error * 100:.2f}% bucket precision)")
    for q in qs:
        lines.append(f"  p{q:<6g} {hist.percentile(q) * 1000:12.3f} ms")
    return "\n".join(lines)


def render_diff(a: Trace, b: Trace, label_a: str = "a", label_b: str = "b",
                qs: Sequence[float] = _REPORT_QS) -> str:
    """Side-by-side pause-histogram comparison of two traces."""
    ha, hb = a.pause_hist, b.pause_hist
    lines = [f"pause histogram diff: {label_a} vs {label_b}",
             f"{'':>8} {label_a[:14]:>14} {label_b[:14]:>14} {'delta':>10}"]
    rows = [("count", float(ha.total_count), float(hb.total_count), ""),
            ("mean", ha.mean * 1000, hb.mean * 1000, "ms")]
    for q in qs:
        rows.append((f"p{q:g}", ha.percentile(q) * 1000,
                     hb.percentile(q) * 1000, "ms"))
    for name, va, vb, unit in rows:
        if va > 0:
            delta = f"{100.0 * (vb - va) / va:+.1f}%"
        else:
            delta = "n/a" if vb == 0 else "+inf"
        lines.append(f"{name:>8} {va:>14.3f} {vb:>14.3f} {delta:>10} {unit}")
    return "\n".join(lines)
