"""``python -m repro.telemetry`` — same as the ``repro-trace`` script."""

import sys

from .cli import main

sys.exit(main())
