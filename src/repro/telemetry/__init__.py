"""JFR-style telemetry: event tracing, HDR histograms, exporters.

The observability subsystem of the simulated JVM (DESIGN.md §11):

* :mod:`~repro.telemetry.tracer` — typed emission hooks; instrumented
  code holds a ``tracer`` attribute that defaults to the zero-cost
  :data:`~repro.telemetry.tracer.NULL_TRACER`;
* :mod:`~repro.telemetry.hist` — the fixed-precision
  :class:`LogHistogram` behind every pause/latency percentile;
* :mod:`~repro.telemetry.ring` — the bounded event buffer (tracing never
  grows without bound, drops are counted);
* :mod:`~repro.telemetry.export` — JSONL traces, Chrome ``trace_event``
  JSON (Perfetto-openable) and text reports, used by ``repro-trace``;
* :mod:`~repro.telemetry.metrics` — counters/gauges/histogram registry
  behind the ``repro-serve`` status endpoint (DESIGN.md §13).
"""

from .events import TraceEvent
from .hist import LogHistogram, percentile_rows
from .metrics import Counter, Gauge, MetricsRegistry
from .ring import EventRing
from .tracer import NULL_TRACER, NullTracer, Tracer
from .export import (Trace, read_trace, render_diff, render_report,
                     to_chrome, validate_chrome, write_chrome, write_trace)

__all__ = [
    "TraceEvent", "LogHistogram", "percentile_rows", "EventRing",
    "NULL_TRACER", "NullTracer", "Tracer", "Trace", "read_trace",
    "render_diff", "render_report", "to_chrome", "validate_chrome",
    "write_chrome", "write_trace",
    "Counter", "Gauge", "MetricsRegistry",
]
