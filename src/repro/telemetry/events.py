"""Typed trace events and their names.

A :class:`TraceEvent` is an immutable ``(t, seq, name, dur, args)``
tuple: ``t`` is the *simulated* time the event refers to, ``seq`` is the
tracer's global emission counter, and together they define a total order
that is reproducible run-to-run (no wall clock anywhere). ``dur`` is 0
for instant events; ``args`` is a small JSON-safe dict of payload fields
(sorted at serialization time).

The names below are the full event vocabulary; exporters key off them,
so collectors must not invent ad-hoc strings (use
:meth:`~repro.telemetry.tracer.Tracer.annotate` for one-off markers).
"""

from __future__ import annotations

from typing import Dict, NamedTuple

#: Safepoint protocol: the world is being stopped / has resumed.
SAFEPOINT_BEGIN = "safepoint_begin"
SAFEPOINT_END = "safepoint_end"
#: One STW GC pause (kind/cause/collector in args).
GC_PHASE = "gc_phase"
#: One concurrent GC phase (CMS mark/sweep, G1 marking).
CONCURRENT_PHASE = "concurrent_phase"
#: One concurrent relocation (ZGC/Shenandoah copying while mutators run).
CONCURRENT_RELOCATION = "concurrent_relocation"
#: A mutator stalled on allocation waiting for concurrent reclamation.
ALLOC_STALL = "alloc_stall"
#: A mutator hit the allocation slow path (eden could not satisfy it).
ALLOC_SLOW = "alloc_slow"
#: Estimated TLAB refills charged to an allocation site.
TLAB_REFILL = "tlab_refill"
#: Bytes promoted out of the young generation by one minor collection.
PROMOTION = "promotion"
#: A generation was resized (G1's pause-target controller).
HEAP_RESIZE = "heap_resize"
#: The adaptive tenuring threshold moved.
TENURING_ADAPT = "tenuring_adapt"
#: Engine run completed (final clock + events processed).
ENGINE_RUN = "engine_run"
#: Fleet balancer routed a tick (policy, fleet size, busiest node).
FLEET_ROUTE = "fleet_route"
#: Fleet autoscaler acted (scale out/in, fleet size, reason).
FLEET_SCALE = "fleet_scale"
#: Monk-style opportunistic forced collection on a fleet node.
FLEET_FORCED_GC = "fleet_forced_gc"
#: Cluster coordinator routed a job digest to a worker node.
CLUSTER_ROUTE = "cluster_route"
#: Coordinator stole a queued-but-unstarted digest from a straggler.
CLUSTER_STEAL = "cluster_steal"
#: Shard result stores merged into one (scatter-gather epilogue).
CLUSTER_MERGE = "cluster_merge"
#: Post-hoc per-(phase, core class) energy total of a finished run
#: (microjoules in args; emitted only for placement-pinned runs).
ENERGY_PHASE = "energy_phase"
#: Free-form marker (concurrent mode failure, workload milestones...).
ANNOTATION = "annotation"

#: Events that carry a duration (exported as Chrome complete events).
SPAN_EVENTS = frozenset({GC_PHASE, CONCURRENT_PHASE, CONCURRENT_RELOCATION,
                         ALLOC_STALL, SAFEPOINT_END})


class TraceEvent(NamedTuple):
    """One trace record (see module docstring for field semantics)."""

    t: float
    seq: int
    name: str
    dur: float
    args: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (args keys are sorted by the JSON encoder)."""
        return {"t": self.t, "seq": self.seq, "name": self.name,
                "dur": self.dur, "args": self.args}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(t=float(d["t"]), seq=int(d["seq"]), name=str(d["name"]),
                   dur=float(d["dur"]), args=dict(d.get("args", {})))
