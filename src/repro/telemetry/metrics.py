"""Service metrics: named counters, gauges and latency histograms.

The ``repro-serve`` service (DESIGN.md §13) needs the same observability
discipline the simulator has — every number queryable, deterministic to
serialize, cheap to keep — but over *service* phenomena (admissions,
rejections, cache hits, queue depth) rather than simulated ones. This
module is the small registry behind the service's ``status`` endpoint:
monotonic :class:`Counter`\\ s, last-value :class:`Gauge`\\ s and
:class:`~repro.telemetry.hist.LogHistogram`\\ s (the audited histogram
already backing every pause percentile) keyed by name.

Nothing here reads a clock: durations are *recorded into* histograms by
callers that own their own time source, so the registry stays usable
from simulation-adjacent code without tripping lint rule SL001.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .hist import LogHistogram

#: Percentiles exported for each histogram in :meth:`MetricsRegistry.to_dict`.
_SUMMARY_QS: Sequence[float] = (50.0, 99.0, 99.9)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        """Add *n* (default 1); returns the new value."""
        self.value += n
        return self.value


class Gauge:
    """A named last-written value (queue depth, worker liveness...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges and histograms.

    ``registry.counter("jobs.completed").inc()`` is the whole API;
    :meth:`to_dict` renders a deterministic (sorted-name) JSON-safe
    snapshot with percentile summaries for histograms.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._hists: Dict[str, LogHistogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name* (created at zero on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name* (created at zero on first use)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, unit: float = 1e-6) -> LogHistogram:
        """The histogram named *name* (created empty on first use).

        *unit* only applies at creation; later calls return the existing
        histogram unchanged.
        """
        if name not in self._hists:
            self._hists[name] = LogHistogram(unit=unit)
        return self._hists[name]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, deterministically ordered by name."""
        hists: Dict[str, object] = {}
        for name in sorted(self._hists):
            h = self._hists[name]
            summary: Dict[str, object] = {
                "count": h.total_count,
                "mean": h.mean,
                "max": h.max_raw or 0.0,
            }
            if h.total_count:
                summary.update(h.percentiles(_SUMMARY_QS))
            hists[name] = summary
        return {
            "counters": {n: self._counters[n].value
                         for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": hists,
        }
