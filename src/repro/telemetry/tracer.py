"""The tracer: typed emission hooks and the zero-cost disabled path.

Instrumented code (engine, world, collectors) holds a ``tracer``
attribute and calls typed hook methods on it unconditionally::

    self.tracer.gc_phase(start, dur, kind=..., cause=..., collector=...)

When tracing is off that attribute is :data:`NULL_TRACER`, whose hooks
are empty methods — the disabled path is a plain bound-method call with
positional/keyword scalars already at hand: no event object, no dict, no
ring append is ever allocated. ``tests/test_telemetry.py`` pins the
zero-event guarantee and the fig3 benchmark guards the wall-clock cost.

A live :class:`Tracer` assigns each event a global sequence number, so
``(t, seq)`` totally orders the stream; everything it stores derives
from simulated time only (SL001-clean). Besides the bounded event ring
it maintains:

* exact per-name aggregate counters (immune to ring drops);
* a pause :class:`~repro.telemetry.hist.LogHistogram` fed by every
  ``gc_phase`` — the mergeable artifact ``repro-trace diff`` compares.
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import (ALLOC_SLOW, ALLOC_STALL, ANNOTATION, CLUSTER_MERGE,
                     CLUSTER_ROUTE, CLUSTER_STEAL, CONCURRENT_PHASE,
                     CONCURRENT_RELOCATION, ENERGY_PHASE, ENGINE_RUN,
                     FLEET_FORCED_GC,
                     FLEET_ROUTE, FLEET_SCALE, GC_PHASE,
                     HEAP_RESIZE,
                     PROMOTION, SAFEPOINT_BEGIN, SAFEPOINT_END,
                     TENURING_ADAPT, TLAB_REFILL, TraceEvent)
from .hist import LogHistogram
from .ring import DEFAULT_CAPACITY, EventRing


class NullTracer:
    """Disabled tracer: every hook is a no-op (see module docstring)."""

    __slots__ = ()
    enabled = False

    def safepoint_begin(self, t, threads):
        pass

    def safepoint_end(self, t, dur, threads):
        pass

    def gc_phase(self, t, dur, kind, cause, collector, promoted, heap_before, heap_after):
        pass

    def concurrent_phase(self, t, dur, phase, collector):
        pass

    def concurrent_relocation(self, t, dur, collector):
        pass

    def alloc_slow(self, t, requested):
        pass

    def alloc_stall(self, t, dur, collector):
        pass

    def tlab_refill(self, t, refills, tlab_size):
        pass

    def promotion(self, t, promoted, promoted_small):
        pass

    def heap_resize(self, t, region, before, after):
        pass

    def tenuring_adapt(self, t, before, after):
        pass

    def engine_run(self, t, events):
        pass

    def fleet_route(self, t, policy, n_nodes, busiest, ops):
        pass

    def fleet_scale(self, t, action, n_nodes, reason):
        pass

    def fleet_forced_gc(self, t, node, pause, old_fraction):
        pass

    def cluster_route(self, t, digest, node, reroute):
        pass

    def cluster_steal(self, t, digest, victim, thief):
        pass

    def cluster_merge(self, t, sources, records):
        pass

    def energy_phase(self, t, phase, core_class, uj):
        pass

    def annotate(self, t, label, **args):
        pass


#: The process-wide disabled tracer every instrumented object starts with.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Live tracer: buffers events, counts names, builds the pause hist."""

    __slots__ = ("ring", "counts", "pause_hist", "meta", "_seq")
    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 meta: Optional[Dict[str, object]] = None):
        self.ring = EventRing(capacity)
        self.counts: Dict[str, int] = {}
        self.pause_hist = LogHistogram()
        self.meta: Dict[str, object] = dict(meta or {})
        self._seq = 0

    def _emit(self, t: float, name: str, dur: float, args: Dict[str, object]) -> None:
        self._seq += 1
        self.counts[name] = self.counts.get(name, 0) + 1
        self.ring.append(TraceEvent(float(t), self._seq, name, float(dur), args))

    @property
    def seq(self) -> int:
        """Events emitted so far (including any dropped from the ring)."""
        return self._seq

    # -- typed hooks ----------------------------------------------------

    def safepoint_begin(self, t, threads):
        self._emit(t, SAFEPOINT_BEGIN, 0.0, {"threads": threads})

    def safepoint_end(self, t, dur, threads):
        self._emit(t - dur, SAFEPOINT_END, dur, {"threads": threads})

    def gc_phase(self, t, dur, kind, cause, collector, promoted, heap_before, heap_after):
        self.pause_hist.record(dur)
        self._emit(t, GC_PHASE, dur, {
            "kind": kind, "cause": cause, "collector": collector,
            "promoted": promoted, "heap_before": heap_before,
            "heap_after": heap_after,
        })

    def concurrent_phase(self, t, dur, phase, collector):
        self._emit(t, CONCURRENT_PHASE, dur, {"phase": phase, "collector": collector})

    def concurrent_relocation(self, t, dur, collector):
        self._emit(t, CONCURRENT_RELOCATION, dur, {"collector": collector})

    def alloc_slow(self, t, requested):
        self._emit(t, ALLOC_SLOW, 0.0, {"requested": requested})

    def alloc_stall(self, t, dur, collector):
        self._emit(t, ALLOC_STALL, dur, {"collector": collector})

    def tlab_refill(self, t, refills, tlab_size):
        self._emit(t, TLAB_REFILL, 0.0, {"refills": refills, "tlab_size": tlab_size})

    def promotion(self, t, promoted, promoted_small):
        self._emit(t, PROMOTION, 0.0, {"promoted": promoted, "small": promoted_small})

    def heap_resize(self, t, region, before, after):
        self._emit(t, HEAP_RESIZE, 0.0, {"region": region, "before": before, "after": after})

    def tenuring_adapt(self, t, before, after):
        self._emit(t, TENURING_ADAPT, 0.0, {"before": before, "after": after})

    def engine_run(self, t, events):
        self._emit(t, ENGINE_RUN, 0.0, {"events": events})

    def fleet_route(self, t, policy, n_nodes, busiest, ops):
        self._emit(t, FLEET_ROUTE, 0.0, {
            "policy": policy, "n_nodes": n_nodes,
            "busiest": busiest, "ops": ops,
        })

    def fleet_scale(self, t, action, n_nodes, reason):
        self._emit(t, FLEET_SCALE, 0.0, {
            "action": action, "n_nodes": n_nodes, "reason": reason,
        })

    def fleet_forced_gc(self, t, node, pause, old_fraction):
        self._emit(t, FLEET_FORCED_GC, pause, {
            "node": node, "old_fraction": old_fraction,
        })

    def cluster_route(self, t, digest, node, reroute):
        self._emit(t, CLUSTER_ROUTE, 0.0, {
            "digest": digest, "node": node, "reroute": reroute,
        })

    def cluster_steal(self, t, digest, victim, thief):
        self._emit(t, CLUSTER_STEAL, 0.0, {
            "digest": digest, "victim": victim, "thief": thief,
        })

    def cluster_merge(self, t, sources, records):
        self._emit(t, CLUSTER_MERGE, 0.0, {
            "sources": sources, "records": records,
        })

    def energy_phase(self, t, phase, core_class, uj):
        self._emit(t, ENERGY_PHASE, 0.0, {
            "phase": phase, "core_class": core_class, "uj": uj,
        })

    def annotate(self, t, label, **args):
        payload = {"label": label}
        payload.update(args)
        self._emit(t, ANNOTATION, 0.0, payload)

    # -- summary --------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Aggregate view serialized as the trace's summary line."""
        return {
            "events_emitted": self._seq,
            "events_buffered": len(self.ring),
            "events_dropped": self.ring.dropped,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "pause_hist": self.pause_hist.to_dict(),
        }
