"""HDR-style fixed-precision histogram (log-bucketed, mergeable).

The simulator's pause and latency percentiles all flow through this one
audited implementation (the paper's Tables 5-7 and the pause reports),
replacing ad-hoc ``np.percentile`` calls over raw float lists. The design
follows HdrHistogram's integer bucketing:

* values are quantized to an integer number of ``unit``s (default one
  microsecond), then indexed into logarithmic buckets of
  ``sub_bucket_count = 2**m`` linear sub-buckets per octave, where ``m``
  is the smallest power of two covering ``10**significant_digits`` — so
  every recorded value is representable within one part in
  ``10**significant_digits`` of its true magnitude;
* bucket bounds decode **exactly** through integer shifts
  (:meth:`bucket_bounds`): no ``log``/``pow`` float round-tripping, so a
  value always falls inside the bounds its bucket reports;
* merging adds integer counts — it is exactly associative and
  commutative, which is what lets campaign workers aggregate partial
  histograms in any order and still produce bit-identical percentiles
  (``sum_units`` is kept in integer units for the same reason).

Nothing here reads wall-clock time or allocates per recorded value
beyond the sparse count dict; the scalar and vectorized
(:meth:`record_array`) paths are bit-identical (property-tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Serialization schema version (bump on incompatible layout changes).
HIST_SCHEMA_VERSION = 1


class LogHistogram:
    """Fixed-precision log-bucketed histogram over non-negative floats."""

    __slots__ = ("unit", "significant_digits", "_m", "_sub_buckets", "_half",
                 "_half_mag", "_counts", "total_count", "sum_units",
                 "min_raw", "max_raw")

    def __init__(self, unit: float = 1e-6, significant_digits: int = 3):
        if unit <= 0:
            raise ConfigError("histogram unit must be positive")
        if not 1 <= significant_digits <= 5:
            raise ConfigError("significant_digits must be in [1, 5]")
        self.unit = float(unit)
        self.significant_digits = int(significant_digits)
        self._m = (10 ** significant_digits - 1).bit_length()
        self._sub_buckets = 1 << self._m
        self._half = self._sub_buckets >> 1
        self._half_mag = self._m - 1
        self._counts: Dict[int, int] = {}
        self.total_count = 0
        self.sum_units = 0
        self.min_raw: Optional[float] = None
        self.max_raw: Optional[float] = None

    # -- bucketing (exact integer arithmetic) ---------------------------

    def _quantize(self, value: float) -> int:
        if value < 0:
            raise ConfigError(f"histogram values must be >= 0, got {value}")
        return int(value / self.unit)

    def _index(self, n: int) -> int:
        """Counts-array index of the quantized value *n*."""
        bucket = (n | (self._sub_buckets - 1)).bit_length() - self._m
        sbi = n >> bucket
        return ((bucket + 1) << self._half_mag) + (sbi - self._half)

    def _decode(self, index: int) -> Tuple[int, int]:
        """Exact (low, high) quantized bounds of bucket *index*; a value
        quantized to ``n`` with ``low <= n < high`` maps to this bucket."""
        bucket = (index >> self._half_mag) - 1
        sbi = (index & (self._half - 1)) + self._half
        if bucket < 0:
            bucket = 0
            sbi -= self._half
        return sbi << bucket, (sbi + 1) << bucket

    def bucket_bounds(self, value: float) -> Tuple[float, float]:
        """Exact-decode ``[low, high)`` value bounds of *value*'s bucket."""
        lo, hi = self._decode(self._index(self._quantize(value)))
        return lo * self.unit, hi * self.unit

    @property
    def relative_error(self) -> float:
        """Worst-case relative bucket width (values above one octave)."""
        return 1.0 / self._half

    # -- recording ------------------------------------------------------

    def record(self, value: float, count: int = 1) -> None:
        """Record *value* with multiplicity *count*."""
        if count <= 0:
            raise ConfigError("count must be positive")
        n = self._quantize(float(value))
        idx = self._index(n)
        self._counts[idx] = self._counts.get(idx, 0) + count
        self.total_count += count
        self.sum_units += n * count
        v = float(value)
        if self.min_raw is None or v < self.min_raw:
            self.min_raw = v
        if self.max_raw is None or v > self.max_raw:
            self.max_raw = v

    def record_array(self, values) -> None:
        """Vectorized :meth:`record` over an array (bit-identical to the
        scalar path; the hot path for >1 M-point latency traces)."""
        import numpy as np

        v = np.asarray(values, dtype=float)
        if v.size == 0:
            return
        if float(v.min()) < 0:
            raise ConfigError("histogram values must be >= 0")
        n = (v / self.unit).astype(np.int64)
        # frexp is exact for integers < 2**53: exponent == bit_length.
        _, e = np.frexp((n | (self._sub_buckets - 1)).astype(np.float64))
        bucket = e.astype(np.int64) - self._m
        sbi = n >> bucket
        idx = ((bucket + 1) << self._half_mag) + (sbi - self._half)
        uniq, cnt = np.unique(idx, return_counts=True)
        for i, c in zip(uniq.tolist(), cnt.tolist()):
            self._counts[i] = self._counts.get(i, 0) + c
        self.total_count += int(v.size)
        self.sum_units += int(n.sum())
        lo, hi = float(v.min()), float(v.max())
        if self.min_raw is None or lo < self.min_raw:
            self.min_raw = lo
        if self.max_raw is None or hi > self.max_raw:
            self.max_raw = hi

    # -- queries --------------------------------------------------------

    @property
    def mean(self) -> float:
        """Mean of the recorded values at ``unit`` resolution."""
        if self.total_count == 0:
            return 0.0
        return self.sum_units * self.unit / self.total_count

    def percentile(self, q: float) -> float:
        """Value at percentile *q* in [0, 100].

        Returns the upper decode bound of the bucket containing the
        rank-``ceil(q/100 * count)`` value (clamped to the exact observed
        maximum), so the result over-estimates by at most one relative
        bucket width — never under-estimates. Empty histograms yield 0.
        """
        if not 0 <= q <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self.total_count == 0:
            return 0.0
        target = max(1, -(-int(q * self.total_count) // 100))  # ceil
        cum = 0
        for idx in sorted(self._counts):
            cum += self._counts[idx]
            if cum >= target:
                _lo, hi = self._decode(idx)
                return min(hi * self.unit, self.max_raw)
        return self.max_raw  # pragma: no cover - cum always reaches total

    def percentiles(self, qs: Sequence[float] = (50, 90, 99, 100)) -> Dict[str, float]:
        """``{"p50": ..., "p99.9": ...}`` for each quantile in *qs*."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def iter_buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(low, high, count)`` per non-empty bucket, ascending."""
        for idx in sorted(self._counts):
            lo, hi = self._decode(idx)
            yield lo * self.unit, hi * self.unit, self._counts[idx]

    # -- merging (exactly associative) ----------------------------------

    def compatible_with(self, other: "LogHistogram") -> bool:
        """True when *other* shares this histogram's bucket geometry."""
        return (self.unit == other.unit
                and self.significant_digits == other.significant_digits)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Add *other*'s counts into this histogram (returns self)."""
        if not self.compatible_with(other):
            raise ConfigError(
                "cannot merge histograms with different geometry: "
                f"unit {self.unit}/{other.unit}, digits "
                f"{self.significant_digits}/{other.significant_digits}"
            )
        for idx, c in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + c
        self.total_count += other.total_count
        self.sum_units += other.sum_units
        if other.min_raw is not None and (self.min_raw is None
                                          or other.min_raw < self.min_raw):
            self.min_raw = other.min_raw
        if other.max_raw is not None and (self.max_raw is None
                                          or other.max_raw > self.max_raw):
            self.max_raw = other.max_raw
        return self

    @classmethod
    def merged(cls, hists: Iterable["LogHistogram"]) -> "LogHistogram":
        """Merge an iterable of compatible histograms into a fresh one."""
        out: Optional[LogHistogram] = None
        for h in hists:
            if out is None:
                out = cls(unit=h.unit, significant_digits=h.significant_digits)
            out.merge(h)
        return out if out is not None else cls()

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (counts sorted for determinism)."""
        return {
            "v": HIST_SCHEMA_VERSION,
            "unit": self.unit,
            "significant_digits": self.significant_digits,
            "counts": [[idx, self._counts[idx]] for idx in sorted(self._counts)],
            "total_count": self.total_count,
            "sum_units": self.sum_units,
            "min": self.min_raw,
            "max": self.max_raw,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "LogHistogram":
        """Inverse of :meth:`to_dict`."""
        h = cls(unit=d["unit"], significant_digits=d["significant_digits"])
        for idx, c in d.get("counts", []):
            h._counts[int(idx)] = int(c)
        h.total_count = int(d["total_count"])
        h.sum_units = int(d["sum_units"])
        h.min_raw = d.get("min")
        h.max_raw = d.get("max")
        return h

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LogHistogram n={self.total_count} "
                f"digits={self.significant_digits} unit={self.unit}>")


def percentile_rows(hist: LogHistogram,
                    qs: Sequence[float] = (50, 90, 99, 99.9, 100)) -> List[Tuple[str, float]]:
    """(label, value) rows for report tables, plus count and mean."""
    rows: List[Tuple[str, float]] = [("count", float(hist.total_count)),
                                     ("mean", hist.mean)]
    for label, value in hist.percentiles(qs).items():
        rows.append((label, value))
    return rows
