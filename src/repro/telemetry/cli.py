"""The ``repro-trace`` command: record / report / export / diff.

``record`` runs a DaCapo benchmark with tracing attached and writes the
JSONL trace; ``report`` prints the percentile report of one or more
traces; ``export`` converts a trace (``chrome`` for Perfetto /
``chrome://tracing``, ``jsonl`` to re-canonicalize); ``diff`` compares
the pause histograms of two traces — e.g. two cells of a campaign run
with ``--trace-dir``.

Examples::

    repro-trace record xalan -n 10 --gc CMS --seed 1 -o cms.trace.jsonl
    repro-trace report cms.trace.jsonl
    repro-trace export cms.trace.jsonl --format chrome -o cms.chrome.json
    repro-trace diff parallel.trace.jsonl cms.trace.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..errors import ReproError
from ..jvm import JVM, JVMConfig
from ..units import parse_size
from ..workloads.dacapo import ALL_BENCHMARKS, get_benchmark
from .export import read_trace, render_diff, render_report, write_chrome, write_trace
from .ring import DEFAULT_CAPACITY
from .tracer import Tracer


def record_cmd(args) -> int:
    """``repro-trace record``: run one benchmark with tracing on."""
    from ..heap.tlab import TLABConfig

    config = JVMConfig(
        gc=args.gc,
        heap=parse_size(args.heap),
        young=parse_size(args.young) if args.young else None,
        tlab=TLABConfig(enabled=not args.no_tlab),
        seed=args.seed,
    )
    tracer = Tracer(capacity=args.ring_capacity)
    jvm = JVM(config, tracer=tracer)
    result = jvm.run(
        get_benchmark(args.benchmark),
        iterations=args.iterations,
        system_gc=not args.no_system_gc,
    )
    write_trace(tracer, args.output)
    print(result.summary())
    dropped = f" ({tracer.ring.dropped} dropped)" if tracer.ring.dropped else ""
    print(f"trace: {tracer.seq} events{dropped} -> {args.output}")
    return 1 if result.crashed else 0


def report_cmd(args) -> int:
    """``repro-trace report``: percentile report of trace file(s)."""
    for i, path in enumerate(args.trace):
        if i:
            print()
        print(render_report(read_trace(path)))
    return 0


def export_cmd(args) -> int:
    """``repro-trace export``: convert a trace to another format."""
    trace = read_trace(args.trace)
    if args.format == "chrome":
        write_chrome(trace, args.output)
    else:
        # Re-canonicalize: rebuild the JSONL through a fresh tracer-less
        # serialization (stable keys/separators), e.g. to normalize a
        # hand-edited trace.
        import json

        with open(args.output, "w") as fh:
            fh.write(json.dumps(
                {"type": "meta", "v": 1, "meta": trace.meta},
                sort_keys=True, separators=(",", ":")) + "\n")
            for ev in trace.events:
                line = {"type": "event"}
                line.update(ev.to_dict())
                fh.write(json.dumps(line, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            summary = {"type": "summary"}
            summary.update(trace.summary)
            fh.write(json.dumps(summary, sort_keys=True,
                                separators=(",", ":")) + "\n")
    print(f"exported {args.trace} -> {args.output} ({args.format})")
    return 0


def diff_cmd(args) -> int:
    """``repro-trace diff``: compare two traces' pause histograms."""
    a, b = read_trace(args.trace_a), read_trace(args.trace_b)

    def label(path: str, trace) -> str:
        gc = trace.meta.get("gc")
        return str(gc) if gc else os.path.basename(path)

    print(render_diff(a, b, label(args.trace_a, a), label(args.trace_b, b)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-trace``."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record, inspect, export and compare simulation traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="run a benchmark with tracing on")
    p_rec.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p_rec.add_argument("-n", "--iterations", type=int, default=10)
    p_rec.add_argument("--no-system-gc", action="store_true",
                       help="disable the forced full GC between iterations")
    p_rec.add_argument("--gc", default="ParallelOld",
                       help="collector: Serial|ParNew|Parallel|ParallelOld|CMS|G1")
    p_rec.add_argument("--heap", default="16g", help="heap size (-Xmx/-Xms)")
    p_rec.add_argument("--young", default=None, help="young size (-Xmn)")
    p_rec.add_argument("--no-tlab", action="store_true", help="disable TLABs")
    p_rec.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_rec.add_argument("--ring-capacity", type=int, default=DEFAULT_CAPACITY,
                       help="event-ring size (oldest events drop beyond it)")
    p_rec.add_argument("-o", "--output", default="repro.trace.jsonl",
                       help="trace file to write")
    p_rec.set_defaults(fn=record_cmd)

    p_rep = sub.add_parser("report", help="percentile report of trace file(s)")
    p_rep.add_argument("trace", nargs="+", help="trace file(s)")
    p_rep.set_defaults(fn=report_cmd)

    p_exp = sub.add_parser("export", help="convert a trace to another format")
    p_exp.add_argument("trace", help="input trace file")
    p_exp.add_argument("--format", choices=["chrome", "jsonl"], default="chrome",
                       help="chrome = Perfetto/chrome://tracing JSON")
    p_exp.add_argument("-o", "--output", required=True)
    p_exp.set_defaults(fn=export_cmd)

    p_diff = sub.add_parser("diff", help="compare two traces' pause histograms")
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.set_defaults(fn=diff_cmd)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
