"""Bounded event ring buffer with drop accounting.

Tracing must never distort the simulation: the ring has a fixed
capacity, appends are O(1), and when it is full the *oldest* event is
overwritten (JFR keeps the most recent data too — the tail of a run is
what you usually debug). Every overwrite increments :attr:`dropped`, and
the exporters surface that count, so a truncated trace is always visibly
truncated rather than silently partial. The per-name aggregate counters
kept by the :class:`~repro.telemetry.tracer.Tracer` are *not* subject to
ring capacity, so totals stay exact even when events drop.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from .events import TraceEvent

#: Default ring capacity (events). Sized so a full DaCapo run with
#: default iterations fits without drops, while a multi-hour Cassandra
#: trace degrades to "most recent window" instead of unbounded memory.
DEFAULT_CAPACITY = 65536


class EventRing:
    """Fixed-capacity ring of :class:`TraceEvent`, overwrite-oldest."""

    __slots__ = ("capacity", "dropped", "_buf", "_head")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigError("ring capacity must be >= 1")
        self.capacity = int(capacity)
        self.dropped = 0
        self._buf: List[TraceEvent] = []
        self._head = 0  # index of the oldest event once the ring is full

    def append(self, event: TraceEvent) -> None:
        """Add *event*, evicting the oldest when at capacity."""
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        """Events oldest-to-newest (emission order is preserved)."""
        yield from self._buf[self._head:]
        yield from self._buf[:self._head]

    def clear(self) -> None:
        """Drop all buffered events (the drop counter is kept)."""
        self._buf.clear()
        self._head = 0
