"""TLAB influence classification (paper §3.4, Table 4).

The paper compares total execution time with and without TLABs, with a
5 % band around the average: within the band is "=" (no influence),
TLAB-on faster than the band is "+" (improvement), slower is "−"
(degradation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


class TLABInfluence(enum.Enum):
    """Table 4 cell values."""

    POSITIVE = "+"
    NEUTRAL = "="
    NEGATIVE = "-"


@dataclass(frozen=True)
class TLABComparison:
    """One (benchmark, GC) comparison."""

    benchmark: str
    gc: str
    time_with_tlab: float
    time_without_tlab: float
    influence: TLABInfluence


def classify_tlab(
    time_with: float,
    time_without: float,
    band: float = 0.05,
) -> TLABInfluence:
    """Classify the TLAB influence exactly as the paper does (§3.4).

    The deviation is *band* (5 %) of the average of the two execution
    times. If ``time_without - time_with`` exceeds the deviation, enabling
    the TLAB improved things (``+``); if it is below the negative
    deviation, it hurt (``-``); otherwise no influence (``=``).
    """
    if time_with < 0 or time_without < 0:
        raise ConfigError("execution times must be non-negative")
    deviation = band * 0.5 * (time_with + time_without)
    delta = time_without - time_with
    if delta > deviation:
        return TLABInfluence.POSITIVE
    if delta < -deviation:
        return TLABInfluence.NEGATIVE
    return TLABInfluence.NEUTRAL


def compare(benchmark: str, gc: str, time_with: float, time_without: float,
            band: float = 0.05) -> TLABComparison:
    """Build a full comparison record."""
    return TLABComparison(
        benchmark=benchmark,
        gc=gc,
        time_with_tlab=time_with,
        time_without_tlab=time_without,
        influence=classify_tlab(time_with, time_without, band),
    )
