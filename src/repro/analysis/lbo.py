"""LBO cost distillation — "Distilling the Real Cost of Production GCs".

The Lower Bound Overhead methodology distills each collector's *total*
GC cost into one number: run every collector over a ladder of heap
sizes, divide by an **ideal** baseline run in which reclamation is free
(:class:`~repro.gc.epsilon.EpsilonGC`), and take the *minimum* overhead
across heap sizes — the cost the collector cannot buy its way out of
with more memory. Alongside the distilled throughput cost the study
reports each collector's pause profile (nearest-rank P50/P90/P99/P99.9
and max over the pooled pause log) and its allocation-stall /
degenerated-cycle counts, reproducing the paper's qualitative result:
the fully-concurrent collectors trade single-digit throughput overhead
for orders-of-magnitude lower P99.9 pauses than ParallelOld.

Every JVM run is a content-addressed campaign cell
(:class:`~repro.campaign.cells.CellSpec`), so a shared
:class:`~repro.campaign.store.ResultStore` serves repeat studies from
cache and the study JSON is byte-identical either way — the CI
``lbo-smoke`` job enforces exactly that with ``cmp``. Because separate
JVM invocations carry independent log-normal run noise (the paper's
§3.2 methodology), overheads are averaged over the config's *seeds* and
the distilled minimum is floored at zero: with finitely many
invocations a low-overhead collector can "beat" the ideal baseline by
luck of the draw, and a negative GC cost is always noise.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..gc.registry import TABLE8_GC_NAMES, resolve_gc
from ..units import GB, parse_size
from .report import render_table

#: Bump on incompatible study-output changes (part of the JSON).
LBO_SCHEMA_VERSION = 1

#: The ideal no-GC-cost oracle every overhead is measured against.
IDEAL_GC = "EpsilonGC"

#: Pause percentiles reported per collector (paper's tail view).
_QS = (50.0, 90.0, 99.0, 99.9)


def nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted *sorted_values*.

    ``k = ceil(q/100 * n) - 1`` (0-indexed, clamped) — always an actual
    sample, never an interpolation, so the study JSON stays byte-stable
    across platforms. Returns 0.0 for an empty list.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    k = max(0, math.ceil(q / 100.0 * n) - 1)
    return sorted_values[min(k, n - 1)]


@dataclass(frozen=True)
class LBOConfig:
    """One LBO study: collectors x heap ladder vs the ideal baseline."""

    benchmarks: Tuple[str, ...] = ("xalan",)
    gcs: Tuple[str, ...] = tuple(TABLE8_GC_NAMES)
    heaps: Tuple[object, ...] = (8 * GB, 16 * GB, 32 * GB)
    seeds: Tuple[int, ...] = (1, 2, 3)
    iterations: int = 6
    system_gc: bool = False

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigError("an LBO study needs at least one benchmark")
        if not self.gcs:
            raise ConfigError("an LBO study needs at least one collector")
        if not self.heaps:
            raise ConfigError("an LBO study needs at least one heap size")
        if not self.seeds:
            raise ConfigError("an LBO study needs at least one seed")
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        gcs = tuple(resolve_gc(g).value for g in self.gcs)
        if IDEAL_GC in gcs:
            raise ConfigError(
                f"{IDEAL_GC} is the implicit ideal baseline; "
                "it cannot also be a studied collector")
        object.__setattr__(self, "benchmarks",
                           tuple(str(b) for b in self.benchmarks))
        object.__setattr__(self, "gcs", gcs)
        object.__setattr__(
            self, "heaps",
            tuple(sorted(float(parse_size(h)) for h in self.heaps)))
        object.__setattr__(self, "seeds",
                           tuple(sorted(int(s) for s in self.seeds)))

    def cell(self, gc: str, benchmark: str, heap: float,
             seed: int) -> "CellSpec":
        """The content-addressed identity of one study run."""
        # Deferred: campaign.cells itself imports repro.analysis, so a
        # module-level import here would be circular.
        from ..campaign.cells import CellSpec

        return CellSpec.from_axes(
            benchmark, gc, heap, None, seed,
            iterations=self.iterations, system_gc=self.system_gc,
        )

    def cells(self) -> List["CellSpec"]:
        """Every cell the study needs, ideal baseline first, in the
        deterministic execution order."""
        out = []
        for gc in (IDEAL_GC,) + self.gcs:
            for benchmark in self.benchmarks:
                for heap in self.heaps:
                    for seed in self.seeds:
                        out.append(self.cell(gc, benchmark, heap, seed))
        return out


def _heap_key(heap: float) -> str:
    """Canonical JSON key for one heap rung (bytes, integral)."""
    return f"{heap:.0f}"


@dataclass
class CollectorDistillate:
    """Everything the study reports about one collector."""

    gc: str
    #: heap key -> mean overhead vs ideal (None where every seed crashed).
    overheads: Dict[str, Optional[float]] = field(default_factory=dict)
    #: The distilled cost: min over heaps, floored at zero. None when no
    #: heap rung produced a valid overhead.
    lbo: Optional[float] = None
    #: The heap (bytes) achieving the minimum.
    lbo_heap: Optional[float] = None
    pause_count: int = 0
    pause_percentiles: Dict[str, float] = field(default_factory=dict)
    max_pause: float = 0.0
    stall_count: int = 0
    stall_seconds: float = 0.0
    crashed_cells: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (field order fixed by sort_keys)."""
        return {
            "gc": self.gc,
            "overheads": {k: (None if v is None else round(v, 6))
                          for k, v in self.overheads.items()},
            "lbo": None if self.lbo is None else round(self.lbo, 6),
            "lbo_heap": self.lbo_heap,
            "pauses": {
                "count": self.pause_count,
                "percentiles": {k: round(v, 9)
                                for k, v in self.pause_percentiles.items()},
                "max": round(self.max_pause, 9),
            },
            "stalls": {"count": self.stall_count,
                       "seconds": round(self.stall_seconds, 6)},
            "crashed_cells": self.crashed_cells,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CollectorDistillate":
        """Inverse of :meth:`to_dict` (for ``report``)."""
        return cls(
            gc=d["gc"], overheads=dict(d["overheads"]),
            lbo=d["lbo"], lbo_heap=d["lbo_heap"],
            pause_count=d["pauses"]["count"],
            pause_percentiles=dict(d["pauses"]["percentiles"]),
            max_pause=d["pauses"]["max"],
            stall_count=d["stalls"]["count"],
            stall_seconds=d["stalls"]["seconds"],
            crashed_cells=d["crashed_cells"],
        )


@dataclass
class LBOStudyResult:
    """All distillates plus the knobs that produced them."""

    config: LBOConfig
    #: benchmark -> heap key -> mean ideal execution time (None = crashed).
    baseline: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    distillates: List[CollectorDistillate] = field(default_factory=list)
    #: Cache accounting (stdout-only — a cached rerun must stay
    #: byte-identical to the run that populated the cache).
    cache_hits: int = 0
    cells_total: int = 0

    def distillate(self, gc: str) -> CollectorDistillate:
        """The distillate for one collector."""
        gc = resolve_gc(gc).value
        for d in self.distillates:
            if d.gc == gc:
                return d
        raise ConfigError(f"no distillate for {gc}")

    def ranking(self) -> List[str]:
        """Collectors sorted by distilled cost (valid LBOs first,
        ascending; crashed-everywhere collectors last, by name)."""
        return [d.gc for d in sorted(
            self.distillates,
            key=lambda d: (d.lbo is None, d.lbo if d.lbo is not None else 0.0,
                           d.gc))]

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form of the whole study."""
        c = self.config
        return {
            "v": LBO_SCHEMA_VERSION,
            "config": {
                "benchmarks": list(c.benchmarks),
                "gcs": list(c.gcs),
                "heaps": list(c.heaps),
                "seeds": list(c.seeds),
                "iterations": c.iterations,
                "system_gc": c.system_gc,
                "ideal": IDEAL_GC,
            },
            "baseline": {
                b: {k: (None if v is None else round(v, 6))
                    for k, v in heaps.items()}
                for b, heaps in self.baseline.items()
            },
            "collectors": {d.gc: d.to_dict() for d in self.distillates},
            "ranking": self.ranking(),
        }

    def to_json(self) -> str:
        """Byte-stable serialization (same config ⇒ identical bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """The distilled-cost table, cheapest collector first."""
        rows = []
        for gc in self.ranking():
            d = self.distillate(gc)
            rows.append([
                d.gc,
                ("-" if d.lbo is None else f"{100.0 * d.lbo:.2f}"),
                ("-" if d.lbo_heap is None
                 else f"{d.lbo_heap / GB:g}g"),
                f"{1e3 * d.pause_percentiles.get('p50', 0.0):.2f}",
                f"{1e3 * d.pause_percentiles.get('p99', 0.0):.2f}",
                f"{1e3 * d.pause_percentiles.get('p99.9', 0.0):.2f}",
                f"{1e3 * d.max_pause:.2f}",
                d.pause_count,
                d.stall_count,
                d.crashed_cells,
            ])
        return render_table(
            ["collector", "LBO %", "@heap", "P50 ms", "P99 ms",
             "P99.9 ms", "max ms", "pauses", "stalls", "crashed"],
            rows,
            title="LBO cost distillation (min overhead vs ideal no-GC run)",
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "LBOStudyResult":
        """Rehydrate a study from its JSON (``report`` path)."""
        c = d["config"]
        config = LBOConfig(
            benchmarks=tuple(c["benchmarks"]), gcs=tuple(c["gcs"]),
            heaps=tuple(c["heaps"]), seeds=tuple(c["seeds"]),
            iterations=int(c["iterations"]), system_gc=bool(c["system_gc"]),
        )
        result = cls(config=config,
                     baseline={b: dict(h) for b, h in d["baseline"].items()})
        # `collectors` is keyed by name; rebuild in ranking order so
        # render() round-trips exactly.
        by_name = {k: CollectorDistillate.from_dict(v)
                   for k, v in d["collectors"].items()}
        result.distillates = [by_name[gc] for gc in config.gcs]
        return result


# ----------------------------------------------------------------------
# the study
# ----------------------------------------------------------------------


def _run_cached(cell: "CellSpec", store=None):
    """One cell result, served from *store* when possible.

    Returns ``(result, was_cache_hit)``; fresh runs are recorded so the
    next study is a pure cache run. Crashed runs are cached too — a
    crash at these coordinates is deterministic.
    """
    from ..campaign.cells import run_cell

    if store is not None:
        cached = store.get_run(cell.digest())
        if cached is not None:
            return cached, True
    result = run_cell(cell)
    if store is not None:
        store.record_ok(cell, result)
    return result, False


def run_lbo_study(config: LBOConfig, store=None) -> LBOStudyResult:
    """Run the full collector x heap ladder against the ideal baseline."""
    result = LBOStudyResult(config=config)

    #: (gc, benchmark, heap_key) -> mean execution time (None = crashed).
    mean_exec: Dict[Tuple[str, str, str], Optional[float]] = {}
    #: gc -> pooled pause durations / stall totals over non-crashed cells.
    pooled_pauses: Dict[str, List[float]] = {g: [] for g in config.gcs}
    stalls: Dict[str, List[float]] = {g: [0, 0.0] for g in config.gcs}
    crashes: Dict[str, int] = {g: 0 for g in config.gcs}

    for gc in (IDEAL_GC,) + config.gcs:
        for benchmark in config.benchmarks:
            for heap in config.heaps:
                runs = []
                for seed in config.seeds:
                    cell = config.cell(gc, benchmark, heap, seed)
                    run, hit = _run_cached(cell, store)
                    result.cells_total += 1
                    result.cache_hits += int(hit)
                    runs.append(run)
                    if run.crashed:
                        if gc != IDEAL_GC:
                            crashes[gc] += 1
                        continue
                    if gc != IDEAL_GC:
                        pooled_pauses[gc].extend(
                            p.duration for p in run.gc_log.pauses)
                        stalls[gc][0] += int(
                            run.extras.get("alloc_stall_count", 0))
                        stalls[gc][1] += float(
                            run.extras.get("alloc_stall_seconds", 0.0))
                times = [r.execution_time for r in runs if not r.crashed]
                mean_exec[(gc, benchmark, _heap_key(heap))] = (
                    sum(times) / len(times) if times else None)

    for benchmark in config.benchmarks:
        result.baseline[benchmark] = {
            _heap_key(h): mean_exec[(IDEAL_GC, benchmark, _heap_key(h))]
            for h in config.heaps
        }

    for gc in config.gcs:
        d = CollectorDistillate(gc=gc)
        for heap in config.heaps:
            key = _heap_key(heap)
            ratios = []
            for benchmark in config.benchmarks:
                t_gc = mean_exec[(gc, benchmark, key)]
                t_ideal = mean_exec[(IDEAL_GC, benchmark, key)]
                if t_gc is None or t_ideal is None or t_ideal <= 0.0:
                    continue
                ratios.append(t_gc / t_ideal - 1.0)
            # A rung only counts when EVERY benchmark produced a valid
            # ratio — a partial mean would not be comparable across heaps.
            if len(ratios) == len(config.benchmarks):
                d.overheads[key] = sum(ratios) / len(ratios)
            else:
                d.overheads[key] = None
        valid = [(v, h) for h, v in
                 zip(config.heaps,
                     (d.overheads[_heap_key(h)] for h in config.heaps))
                 if v is not None]
        if valid:
            best = min(valid, key=lambda vh: vh[0])
            # Floor at zero: with finitely many invocations a cheap
            # collector can "beat" the ideal baseline by noise, and a
            # negative GC cost is always noise.
            d.lbo = max(0.0, best[0])
            d.lbo_heap = best[1]
        durations = sorted(pooled_pauses[gc])
        d.pause_count = len(durations)
        d.pause_percentiles = {f"p{q:g}": nearest_rank(durations, q)
                               for q in _QS}
        d.max_pause = durations[-1] if durations else 0.0
        d.stall_count = stalls[gc][0]
        d.stall_seconds = stalls[gc][1]
        d.crashed_cells = crashes[gc]
        result.distillates.append(d)
    return result
