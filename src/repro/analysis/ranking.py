"""GC ranking by experiments won (paper §3.5, Figure 3).

An *experiment* is a (benchmark, heap size, young size) combination; the
GC with the shortest total execution time wins it. Figure 3 plots, per
GC, the percentage of experiments won.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigError


@dataclass
class RankingResult:
    """Win counts per GC over a set of experiments."""

    wins: Dict[str, int] = field(default_factory=dict)
    total_experiments: int = 0

    def percentage(self, gc: str) -> float:
        """Percent of experiments won by *gc* (Figure 3's Y axis)."""
        if self.total_experiments == 0:
            return 0.0
        return 100.0 * self.wins.get(gc, 0) / self.total_experiments

    def ordered(self) -> List[Tuple[str, float]]:
        """(gc, percent) pairs, best first — Figure 3's bar order.

        GCs with zero wins are omitted, mirroring the paper ("there is no
        column for G1 GC. That means that G1 did not perform better than
        all other GCs in any of the experiments").
        """
        pairs = [(gc, self.percentage(gc)) for gc, n in self.wins.items() if n > 0]
        pairs.sort(key=lambda p: -p[1])
        return pairs


def rank_by_wins(
    experiments: Dict[Tuple, Dict[str, float]],
) -> RankingResult:
    """Rank GCs by experiments won.

    *experiments* maps an experiment key (benchmark, heap, young) to
    ``{gc_name: total_execution_time}``. Crashed/absent runs should simply
    be omitted from the inner dict.
    """
    result = RankingResult()
    for key, times in experiments.items():
        if not times:
            raise ConfigError(f"experiment {key!r} has no runs")
        winner = min(times.items(), key=lambda kv: kv[1])[0]
        result.wins[winner] = result.wins.get(winner, 0) + 1
        result.total_experiments += 1
    return result
