"""Terminal scatter plots: render the paper's figures without matplotlib.

The benchmark harness prints figure-shaped artefacts as data series;
these helpers additionally draw them as fixed-width ASCII scatter charts
(one marker character per series), so ``examples/`` and ``benchmarks/``
can show Figure 1/4/5-like charts in any terminal or text log.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

#: Marker characters assigned to series, in order.
MARKERS = "ox+*#@%&"


def scatter_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (xs, ys) series as an ASCII scatter chart.

    Later series draw over earlier ones where cells collide. Axis ranges
    cover all series jointly; the legend maps markers to series names.
    """
    if not series:
        raise ConfigError("scatter_plot needs at least one series")
    if width < 16 or height < 4:
        raise ConfigError("plot area too small")
    if len(series) > len(MARKERS):
        raise ConfigError(f"at most {len(MARKERS)} series supported")

    arrays = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape:
            raise ConfigError(f"series {name!r}: xs and ys must align")
        arrays[name] = (xs, ys)

    all_x = np.concatenate([xs for xs, _ys in arrays.values()] or [np.zeros(1)])
    all_y = np.concatenate([ys for _xs, ys in arrays.values()] or [np.zeros(1)])
    if all_x.size == 0:
        raise ConfigError("all series are empty")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = min(0.0, float(all_y.min())), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, (xs, ys)) in zip(MARKERS, arrays.items()):
        cols = np.clip(((xs - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((ys - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    gutter = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(gutter)
        elif i == height - 1:
            label = y_lo_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}|")
    x_lo_label = f"{x_lo:.4g}"
    x_hi_label = f"{x_hi:.4g}"
    axis = f"{' ' * gutter} +{'-' * width}+"
    lines.append(axis)
    pad = width - len(x_lo_label) - len(x_hi_label)
    lines.append(
        f"{' ' * gutter}  {x_lo_label}{' ' * max(pad, 1)}{x_hi_label}  ({x_label})"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, arrays)
    )
    lines.append(f"{' ' * gutter}  [{y_label}]  {legend}")
    return "\n".join(lines)
