"""Benchmark-stability statistics (paper §3.2, Table 2).

The paper runs every benchmark 10 times under the baseline configuration
and reports the relative standard deviation of (a) the final iteration's
duration and (b) the total execution time, keeping benchmarks under 5 %
on at least one of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigError


def rsd(values: Sequence[float]) -> float:
    """Relative standard deviation (sample std over mean), as a fraction.

    Returns ``nan`` for fewer than two values or a zero mean.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return float("nan")
    mean = arr.mean()
    if mean == 0:
        return float("nan")
    return float(arr.std(ddof=1) / mean)


@dataclass(frozen=True)
class StabilityRow:
    """One benchmark's Table 2 row."""

    benchmark: str
    rsd_final_pct: float
    rsd_total_pct: float
    crashed: bool = False

    @property
    def stable(self) -> bool:
        """Paper's criterion: under 5 % on at least one metric."""
        if self.crashed:
            return False
        return (self.rsd_final_pct < 5.0) or (self.rsd_total_pct < 5.0)


def stability_table(
    runs: Dict[str, List],
    crashed: Sequence[str] = (),
) -> List[StabilityRow]:
    """Build Table 2 from per-benchmark run lists.

    *runs* maps benchmark name to a list of
    :class:`~repro.jvm.jvm.RunResult`; *crashed* names benchmarks that
    crashed. Rows are returned in the input order.
    """
    rows: List[StabilityRow] = []
    for name in crashed:
        rows.append(StabilityRow(name, float("nan"), float("nan"), crashed=True))
    for name, results in runs.items():
        if not results:
            raise ConfigError(f"benchmark {name!r} has no runs")
        finals = [r.final_iteration_time for r in results]
        totals = [r.execution_time for r in results]
        rows.append(
            StabilityRow(
                benchmark=name,
                rsd_final_pct=100.0 * rsd(finals),
                rsd_total_pct=100.0 * rsd(totals),
            )
        )
    return rows
