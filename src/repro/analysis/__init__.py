"""Analysis: the statistics behind every table and figure in the paper.

Each module maps to one artefact family:

* :mod:`~repro.analysis.stability` — Table 2 (benchmark-selection RSDs);
* :mod:`~repro.analysis.pauses`    — Table 3, Figures 1 & 4 (pause stats);
* :mod:`~repro.analysis.tlab`      — Table 4 (TLAB influence + / = / −);
* :mod:`~repro.analysis.ranking`   — Figure 3 (GC ranking by wins);
* :mod:`~repro.analysis.latency`   — Tables 5-7 (latency band statistics);
* :mod:`~repro.analysis.summary`   — Table 8 (qualitative GC summary);
* :mod:`~repro.analysis.lbo`       — LBO cost distillation (min-over-heaps
  overhead vs an ideal no-GC baseline, ``repro-lbo``);
* :mod:`~repro.analysis.report`    — plain-text table / series rendering.
"""

from .stability import rsd, stability_table
from .pauses import (PauseStats, heap_occupancy_series, inter_pause_intervals,
                     pause_percentiles, pause_scatter, pause_stats)
from .tlab import TLABInfluence, classify_tlab
from .ranking import RankingResult, rank_by_wins
from .latency import (LatencyBandStats, LatencySummary, latency_band_stats,
                      gc_overlap_fraction)
from .summary import GCVerdict, qualitative_summary
from .lbo import (IDEAL_GC, LBOConfig, LBOStudyResult, nearest_rank,
                  run_lbo_study)
from .report import render_table, render_series
from .ascii_plot import scatter_plot

__all__ = [
    "rsd",
    "stability_table",
    "PauseStats",
    "pause_stats",
    "pause_scatter",
    "heap_occupancy_series",
    "inter_pause_intervals",
    "pause_percentiles",
    "TLABInfluence",
    "classify_tlab",
    "RankingResult",
    "rank_by_wins",
    "LatencyBandStats",
    "LatencySummary",
    "latency_band_stats",
    "gc_overlap_fraction",
    "GCVerdict",
    "qualitative_summary",
    "IDEAL_GC",
    "LBOConfig",
    "LBOStudyResult",
    "nearest_rank",
    "run_lbo_study",
    "render_table",
    "render_series",
    "scatter_plot",
]
