"""Pause-time statistics (paper §3.3 Table 3, Figures 1 and 4).

`pause_stats` computes the Table 3 row quantities for one run;
`pause_scatter` extracts the (time, duration) series plotted in
Figures 1 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..gc.stats import GCLog


@dataclass(frozen=True)
class PauseStats:
    """One row of the paper's Table 3."""

    pause_count: int
    full_count: int
    avg_pause: float
    total_pause: float
    max_pause: float
    execution_time: float

    @property
    def pause_fraction(self) -> float:
        """Share of execution time spent stopped (Table 3 discussion:
        "the total pause time can represent more than 50 % of the total
        execution time")."""
        if self.execution_time <= 0:
            return 0.0
        return self.total_pause / self.execution_time

    def row(self) -> Tuple:
        """Table 3 row tuple: (#pauses(full), avg, total, exec)."""
        return (
            f"{self.pause_count}({self.full_count})",
            round(self.avg_pause, 3),
            round(self.total_pause, 2),
            round(self.execution_time, 2),
        )


def pause_stats(log: GCLog, execution_time: float) -> PauseStats:
    """Compute Table 3 statistics from a GC log."""
    return PauseStats(
        pause_count=log.count,
        full_count=log.full_count,
        avg_pause=log.avg_pause,
        total_pause=log.total_pause,
        max_pause=log.max_pause,
        execution_time=float(execution_time),
    )


def pause_scatter(log: GCLog) -> Tuple[np.ndarray, np.ndarray]:
    """(start_times, durations) arrays — the Figure 1 / Figure 4 series."""
    return log.starts(), log.durations()


def heap_occupancy_series(log: GCLog) -> Tuple[np.ndarray, np.ndarray]:
    """Heap occupancy over time, sampled at collection boundaries.

    Each STW pause contributes two samples: (start, used_before) and
    (end, used_after) — the classic sawtooth of a generational heap.
    Useful for plotting memory pressure alongside the pause trace.
    """
    ts: list = []
    used: list = []
    for p in log.pauses:
        ts.append(p.start)
        used.append(p.heap_used_before)
        ts.append(p.end)
        used.append(p.heap_used_after)
    return np.array(ts, dtype=float), np.array(used, dtype=float)


def pause_percentiles(log: GCLog, qs=(50, 90, 99, 100)) -> dict:
    """Pause-duration percentiles (keys ``"p50"``... ``"p100"``).

    Computed from the log's fixed-precision
    :class:`~repro.telemetry.hist.LogHistogram` — the one audited
    percentile implementation shared with the latency tables and
    ``repro-trace`` — so values are rank-based with a bounded relative
    error (≤ the histogram's bucket width) rather than interpolated.
    Empty logs yield zeros, so reports can be built unconditionally.
    """
    return {f"p{q:g}": log.pause_hist.percentile(q) for q in qs}


def inter_pause_intervals(log: GCLog) -> np.ndarray:
    """Seconds of mutator progress between consecutive pauses.

    The allocation-rate lens on a run: short intervals mean the nursery
    is filling fast (or the heap is thrashing).
    """
    if log.count < 2:
        return np.zeros(0)
    starts = log.starts()
    ends = np.array([p.end for p in log.pauses])
    return starts[1:] - ends[:-1]
