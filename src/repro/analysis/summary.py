"""Qualitative GC summary (paper §6, Table 8).

The paper closes with a qualitative verdict per collector and
environment: throughput {good, fairly good, bad} and pause time {short,
acceptable, significant, unacceptable}. We derive the same labels from
measured data so Table 8 regenerates from experiment outputs instead of
being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError


@dataclass(frozen=True)
class GCVerdict:
    """One Table 8 row."""

    gc: str
    experiment: str      #: "DaCapo" | "Cassandra"
    throughput: str      #: good | fairly good | bad
    pause_time: str      #: short | acceptable | significant | unacceptable


def _throughput_label(relative_slowdown: float) -> str:
    """Label execution time relative to the best collector (1.0 = best)."""
    if relative_slowdown < 0:
        raise ConfigError("slowdown must be >= 0")
    if relative_slowdown <= 1.08:
        return "good"
    if relative_slowdown <= 1.20:
        return "fairly good"
    return "bad"


def _pause_label(max_pause_seconds: float) -> str:
    """Label the worst pause observed."""
    if max_pause_seconds < 0:
        raise ConfigError("pause must be >= 0")
    if max_pause_seconds < 1.0:
        return "short"
    if max_pause_seconds < 2.5:
        return "acceptable"
    if max_pause_seconds < 60.0:
        return "significant"
    return "unacceptable"


def qualitative_summary(
    dacapo: Dict[str, Dict[str, float]],
    cassandra: Dict[str, Dict[str, float]],
) -> List[GCVerdict]:
    """Build Table 8.

    Both inputs map GC name to ``{"exec_time": ..., "max_pause": ...}``
    (DaCapo: representative total execution time; Cassandra: serving
    throughput proxy via execution time). Relative slowdowns are computed
    within each environment.
    """
    verdicts: List[GCVerdict] = []
    for experiment, data in (("DaCapo", dacapo), ("Cassandra", cassandra)):
        if not data:
            continue
        best = min(d["exec_time"] for d in data.values())
        if best <= 0:
            raise ConfigError(f"non-positive best time in {experiment}")
        for gc, d in data.items():
            verdicts.append(
                GCVerdict(
                    gc=gc,
                    experiment=experiment,
                    throughput=_throughput_label(d["exec_time"] / best),
                    pause_time=_pause_label(d["max_pause"]),
                )
            )
    return verdicts
