"""``repro-lbo``: run and report LBO cost-distillation studies.

::

    repro-lbo run --benchmarks xalan --gcs ParallelOld ZGC \\
        --heaps 8g 16g 32g --seeds 1 2 3 --store /tmp/lbo --out study.json
    repro-lbo report study.json

``run`` prints the distilled-cost table and (with ``--out``) writes the
canonical study JSON — byte-identical across reruns of the same config,
which the CI ``lbo-smoke`` job enforces with ``cmp``. Cell cache
accounting goes to stdout only, never into the JSON.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..campaign.store import ResultStore
from ..errors import ConfigError
from ..gc.registry import TABLE8_GC_NAMES
from .lbo import LBOConfig, LBOStudyResult, run_lbo_study


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lbo",
        description="LBO cost distillation: min-over-heaps GC overhead "
                    "vs an ideal no-GC baseline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an LBO study")
    run.add_argument("--benchmarks", nargs="+", default=["xalan"],
                     help="DaCapo benchmarks to distill over")
    run.add_argument("--gcs", nargs="+", default=list(TABLE8_GC_NAMES),
                     help="collectors to distill (the EpsilonGC baseline "
                          "is implicit)")
    run.add_argument("--heaps", nargs="+", default=["8g", "16g", "32g"],
                     help="heap-size ladder (HotSpot size strings)")
    run.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3],
                     help="JVM invocations averaged per cell")
    run.add_argument("--iterations", type=int, default=6,
                     help="harness iterations per invocation")
    run.add_argument("--system-gc", action="store_true",
                     help="force a full collection between iterations")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="campaign ResultStore for the study's cells")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write canonical study JSON here")
    run.set_defaults(func=cmd_run)

    report = sub.add_parser("report", help="render the table from a study JSON")
    report.add_argument("study", help="study JSON written by `run --out`")
    report.set_defaults(func=cmd_report)
    return parser


def cmd_run(args) -> int:
    config = LBOConfig(
        benchmarks=tuple(args.benchmarks),
        gcs=tuple(args.gcs),
        heaps=tuple(args.heaps),
        seeds=tuple(args.seeds),
        iterations=args.iterations,
        system_gc=args.system_gc,
    )
    store = ResultStore(args.store) if args.store else None
    result = run_lbo_study(config, store=store)
    # Cache accounting stays OUT of the JSON: a cached rerun must be
    # byte-identical to the run that populated the cache.
    print(f"cells: {result.cache_hits}/{result.cells_total} cache hits")
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.to_json())
        print(f"study written to {args.out}")
    return 0


def cmd_report(args) -> int:
    with open(args.study) as fh:
        result = LBOStudyResult.from_dict(json.load(fh))
    print(result.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
