"""Plain-text rendering of tables and series for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free
(no plotting libraries are assumed to exist offline).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..errors import ConfigError


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    xs: np.ndarray,
    ys: np.ndarray,
    *,
    label: str = "",
    max_points: int = 24,
) -> str:
    """Render an (x, y) series as a compact text sparkline table.

    Used by benches for figure-shaped artefacts (pause scatters, latency
    traces): prints up to *max_points* representative points.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ConfigError("xs and ys must align")
    if xs.size == 0:
        return f"{label}: (empty series)"
    if xs.size > max_points:
        idx = np.linspace(0, xs.size - 1, max_points).astype(int)
        xs, ys = xs[idx], ys[idx]
    pts = " ".join(f"({x:.4g},{y:.4g})" for x, y in zip(xs, ys))
    return f"{label}: {pts}" if label else pts


def render_campaign_summary(campaign) -> str:
    """Render a :class:`~repro.campaign.runner.CampaignResult` as text.

    Duck-typed (``spec``/``stats``/``grids`` attributes) so this module
    stays import-light; the campaign layer depends on analysis, not the
    reverse. The first stats line is grep-stable — CI smoke jobs assert
    on its ``cached N/M`` token.
    """
    lines: List[str] = [
        f"campaign {campaign.spec.name!r}: "
        f"{len(campaign.grids)} grid(s), {campaign.stats.total} unique cells",
        campaign.stats.summary(),
    ]
    for i, grid in enumerate(campaign.grids):
        if not grid.runs:
            lines.append(f"grid {i}: no completed cells")
            continue
        crashed = len(grid.crashed_cells())
        lines.append(f"grid {i}: {len(grid.runs)} cells, {crashed} crashed")
        ranking = grid.winners()
        if ranking.total_experiments:
            lines.append(render_table(
                ["GC", "% of experiments won"],
                [(gc, round(pct, 1)) for gc, pct in ranking.ordered()],
            ))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}".rstrip("0").rstrip(".") if abs(cell) < 1e6 else f"{cell:.3g}"
    return str(cell)
