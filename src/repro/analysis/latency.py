"""Client latency band statistics (paper §4.2, Tables 5-7).

For each operation type the paper reports AVG/MAX/MIN latency, then for
each band — 0.5×-1.5× the average, and >2ⁿ× the average for growing n —
two percentages:

* ``%reqs``: the share of *requests* whose latency falls in the band;
* ``%GCs``: the share of *GC pauses* associated with the band — a pause
  is associated with a band when at least one request that overlapped the
  pause has its latency in that band. The paper's headline observation is
  that every ``> 2x AVG`` band has ``%GCs`` at (or near) 100: all high
  latencies are GC-caused.

Everything is vectorized (the traces hold >1 M points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..telemetry.hist import LogHistogram

#: Percentile rows added to each latency table (paper-style tail view).
_LATENCY_QS = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class BandStat:
    """One band row of Tables 5-7."""

    label: str
    pct_requests: float
    pct_gcs: float


@dataclass
class LatencyBandStats:
    """Tables 5-7 statistics for one operation type."""

    avg_ms: float
    max_ms: float
    min_ms: float
    bands: List[BandStat] = field(default_factory=list)
    #: Fixed-precision latency histogram (1 µs resolution over ms
    #: values) — same audited implementation as the pause percentiles;
    #: mergeable across campaign cells.
    hist: Optional[LogHistogram] = None

    def rows(self) -> List[Tuple[str, float]]:
        """Flat (label, value) rows in the paper's order, extended with
        histogram-derived tail percentiles."""
        out = [
            ("AVG(ms)", round(self.avg_ms, 3)),
            ("MAX(ms)", round(self.max_ms, 3)),
            ("MIN(ms)", round(self.min_ms, 3)),
        ]
        if self.hist is not None and self.hist.total_count:
            for q in _LATENCY_QS:
                out.append((f"P{q:g}(ms)", round(self.hist.percentile(q), 3)))
        for b in self.bands:
            out.append((f"{b.label} (%reqs)", round(b.pct_requests, 3)))
            out.append((f"{b.label} (%GCs)", round(b.pct_gcs, 3)))
        return out


def _pause_peak_latencies(
    op_times: np.ndarray,
    latencies: np.ndarray,
    intervals: np.ndarray,
) -> np.ndarray:
    """Peak operation latency observed during each pause (0 if no op).

    The peak op of a pause waited for (nearly) the whole pause — it is the
    pause's latency signature in the client trace.
    """
    if intervals.size == 0:
        return np.zeros(0)
    starts, ends = intervals[:, 0], intervals[:, 1]
    lo = np.searchsorted(op_times, starts, side="left")
    hi = np.searchsorted(op_times, ends, side="left")
    peaks = np.zeros(len(starts))
    for i in range(len(starts)):
        if hi[i] > lo[i]:
            peaks[i] = latencies[lo[i]:hi[i]].max()
    return peaks


def _pause_band_pct(peaks: np.ndarray, lo_ms: float, hi_ms: float) -> float:
    """Share of pauses whose latency signature falls in [lo, hi)."""
    covered = peaks[peaks > 0]
    if covered.size == 0:
        return 0.0
    in_band = (covered >= lo_ms) & (covered < hi_ms)
    return float(100.0 * in_band.mean())


def latency_band_stats(
    op_times: np.ndarray,
    latencies_ms: np.ndarray,
    pause_intervals: np.ndarray,
    *,
    min_band_pct: float = 0.001,
    max_exponent: int = 10,
) -> LatencyBandStats:
    """Compute one Table 5/6/7 column.

    Bands follow the paper: 0.5×-1.5× AVG, then >2×, >4×, >8×... AVG,
    doubling n "until the percentage of points became too close to 0"
    (below *min_band_pct*).
    """
    op_times = np.asarray(op_times, dtype=float)
    lat = np.asarray(latencies_ms, dtype=float)
    if op_times.shape != lat.shape:
        raise ConfigError("op_times and latencies must align")
    if lat.size == 0:
        raise ConfigError("no operations recorded")
    avg = float(lat.mean())
    # Latencies are in ms; a 1e-3 unit keeps microsecond resolution. The
    # vectorized record path makes this linear even for >1 M points.
    hist = LogHistogram(unit=1e-3)
    hist.record_array(lat)
    stats = LatencyBandStats(avg_ms=avg, max_ms=float(lat.max()),
                             min_ms=float(lat.min()), hist=hist)
    peaks = _pause_peak_latencies(op_times, lat, pause_intervals)

    in_mid = (lat > 0.5 * avg) & (lat < 1.5 * avg)
    stats.bands.append(
        BandStat(
            "0.5x-1.5x AVG",
            float(100.0 * in_mid.mean()),
            _pause_band_pct(peaks, 0.5 * avg, 1.5 * avg),
        )
    )
    factor = 2.0
    for _n in range(max_exponent):
        above = lat > factor * avg
        pct = float(100.0 * above.mean())
        if pct < min_band_pct:
            break
        stats.bands.append(
            BandStat(
                f">{factor:g}x AVG",
                pct,
                _pause_band_pct(peaks, factor * avg, float("inf")),
            )
        )
        factor *= 2.0
    return stats


@dataclass
class LatencySummary:
    """Exactly-mergeable latency aggregate (per-node → fleet rollup).

    A fleet study records latencies on many nodes and needs fleet-level
    percentiles per policy. Re-collecting raw samples would re-bucket
    them (and cost memory proportional to the trace); this summary
    instead carries the same audited :class:`LogHistogram` that
    :func:`latency_band_stats` builds, whose merge is **exactly
    associative and commutative** (integer bucket counts, integer
    ``sum_units``, exact min/max) — so any aggregation tree over the
    nodes produces bit-identical fleet statistics. AVG comes from the
    histogram's integer unit sum (unit-resolution exact), MIN/MAX are
    the raw observed extremes, and percentiles are the histogram's
    rank-based never-under-estimating ones.
    """

    hist: LogHistogram = field(default_factory=lambda: LogHistogram(unit=1e-3))

    @classmethod
    def of_values(cls, latencies_ms) -> "LatencySummary":
        """Summary of a raw latency array (ms)."""
        s = cls()
        s.hist.record_array(np.asarray(latencies_ms, dtype=float))
        return s

    @classmethod
    def of_band_stats(cls, stats: LatencyBandStats) -> "LatencySummary":
        """Adopt the histogram a :func:`latency_band_stats` call built."""
        if stats.hist is None:
            raise ConfigError("band stats carry no histogram to merge")
        return cls(hist=stats.hist)

    # -- the merge path --------------------------------------------------

    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Fold *other* in (exact; returns self)."""
        self.hist.merge(other.hist)
        return self

    @classmethod
    def merged(cls, summaries) -> "LatencySummary":
        """Merge an iterable of summaries into a fresh one."""
        out = cls()
        for s in summaries:
            out.hist.merge(s.hist)
        return out

    @classmethod
    def merged_from_dicts(cls, hist_dicts) -> "LatencySummary":
        """Exact-merge serialized histograms (``LogHistogram.to_dict``
        payloads, e.g. the per-node ``pauses.hist`` sections a cluster
        status scatter-gather collects). Geometry is adopted from the
        first histogram, so second-scale pause histograms merge as
        faithfully as millisecond latencies; an empty input yields an
        empty summary."""
        out: Optional[LatencySummary] = None
        for d in hist_dicts:
            h = LogHistogram.from_dict(d)
            if out is None:
                out = cls(hist=LogHistogram(
                    unit=h.unit, significant_digits=h.significant_digits))
            out.hist.merge(h)
        return out if out is not None else cls()

    # -- queries ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Total recorded operations."""
        return self.hist.total_count

    @property
    def avg_ms(self) -> float:
        """Mean latency at histogram-unit (1 µs) resolution."""
        return self.hist.mean

    @property
    def min_ms(self) -> float:
        """Exact observed minimum (0 when empty)."""
        return self.hist.min_raw if self.hist.min_raw is not None else 0.0

    @property
    def max_ms(self) -> float:
        """Exact observed maximum (0 when empty)."""
        return self.hist.max_raw if self.hist.max_raw is not None else 0.0

    def percentile(self, q: float) -> float:
        """Histogram percentile (never under-estimates)."""
        return self.hist.percentile(q)

    def count_above(self, threshold_ms: float) -> int:
        """Operations in buckets entirely above *threshold_ms*.

        Band shares over a merged summary resolve at bucket granularity
        (the straddling bucket is excluded), which keeps the answer a
        deterministic function of the merged counts alone.
        """
        n = 0
        for lo, _hi, count in self.hist.iter_buckets():
            if lo >= threshold_ms:
                n += count
        return n

    def rows(self) -> List[Tuple[str, float]]:
        """Report rows in the paper's AVG/MAX/MIN + percentile order."""
        out = [
            ("AVG(ms)", round(self.avg_ms, 3)),
            ("MAX(ms)", round(self.max_ms, 3)),
            ("MIN(ms)", round(self.min_ms, 3)),
        ]
        for q in _LATENCY_QS:
            out.append((f"P{q:g}(ms)", round(self.percentile(q), 3)))
        return out

    def summary_dict(self) -> Dict[str, object]:
        """The service-status summary shape — ``{"count"}`` plus
        ``p50/p99/p99.9`` and ``max`` when non-empty — so an aggregated
        (merged) summary renders exactly like a single node's
        ``pauses`` section. Values are in the histogram's own value
        units (seconds for pause histograms, ms for latency ones)."""
        out: Dict[str, object] = {"count": self.count}
        if self.count:
            out.update(self.hist.percentiles(_LATENCY_QS))
            out["max"] = self.hist.max_raw or 0.0
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (delegates to the histogram's codec)."""
        return {"hist": self.hist.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "LatencySummary":
        """Inverse of :meth:`to_dict`."""
        return cls(hist=LogHistogram.from_dict(d["hist"]))


def gc_overlap_fraction(
    op_times: np.ndarray,
    latencies_ms: np.ndarray,
    pause_intervals: np.ndarray,
    threshold_factor: float = 2.0,
) -> float:
    """Fraction of high-latency ops (> factor x AVG) that overlap a pause.

    The paper's Figure 5 observation 2: "the highest latencies correspond
    to the moments when a collection took place".
    """
    op_times = np.asarray(op_times, dtype=float)
    lat = np.asarray(latencies_ms, dtype=float)
    if lat.size == 0:
        return 0.0
    high = lat > threshold_factor * lat.mean()
    if not high.any():
        return 0.0
    if pause_intervals.size == 0:
        return 0.0
    starts = pause_intervals[:, 0]
    ends = pause_intervals[:, 1]
    t = op_times[high]
    idx = np.searchsorted(starts, t, side="right") - 1
    valid = idx >= 0
    overlapped = np.zeros(t.shape, dtype=bool)
    overlapped[valid] = t[valid] < ends[idx[valid]]
    return float(overlapped.mean())
