"""Minimal discrete-event simulation kernel.

A small, dependency-free subset of the classic process-based DES style
(generators as processes, ``yield Timeout(dt)``), sufficient to drive the
simulated JVM: mutator threads, concurrent GC phases and safepoints.

Public surface:

* :class:`~repro.sim.engine.Engine` — event queue + simulated clock.
* :class:`~repro.sim.process.Event` — one-shot triggerable event.
* :class:`~repro.sim.process.Timeout` — event firing after a delay.
* :class:`~repro.sim.process.Process` — a generator coroutine; supports
  interrupts (used to stop mutators at safepoints).
* :class:`~repro.sim.process.Interrupt` — exception thrown into a process.
"""

from .engine import Engine
from .process import AnyOf, Event, Interrupt, Process, Timeout

__all__ = ["Engine", "Event", "Timeout", "Process", "Interrupt", "AnyOf"]
