"""Events and generator-based processes for the DES kernel.

A :class:`Process` drives a generator: each ``yield`` must produce an
:class:`Event`; the process sleeps until the event triggers and is resumed
with the event's value. A process may be *interrupted* — an
:class:`Interrupt` is thrown into the generator at its current yield point,
which is how the simulated JVM stops mutator threads at safepoints.

Hot-path notes: these classes are instantiated once per simulated event
(millions per bench run), so the trigger paths push straight onto the
engine's queue instead of going through :meth:`Engine.schedule` — the
delay there is a constant ``0.0`` (or a :class:`Timeout` delay validated
in its constructor), so the extra finiteness re-checks bought nothing.
State tests read ``_state``/``_ok`` directly rather than through the
public properties, and each process caches its bound ``_resume`` callback
instead of materializing a new bound method per wait.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Optional

from ..errors import SimulationError
from .engine import NORMAL, URGENT, Engine

#: Event state markers.
PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """One-shot event. Trigger with :meth:`succeed` or :meth:`fail`.

    Callbacks (``event.callbacks.append(fn)``) run when the engine
    processes the event; each receives the event itself.
    """

    # Millions of Events live and die per run; __slots__ drops the
    # per-instance dict. `_defused` is only set on interrupt events but
    # still needs a slot.
    __slots__ = ("engine", "callbacks", "value", "_ok", "_state", "_defused")

    def __init__(self, engine: Engine):
        self.engine = engine
        self.callbacks: Optional[List] = []
        self.value = None
        self._ok = True
        self._state = PENDING

    # -- introspection --------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    # -- triggering ------------------------------------------------------

    def succeed(self, value=None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with an optional *value*."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._state = TRIGGERED
        self.value = value
        engine = self.engine
        engine._seq += 1
        heapq.heappush(engine._queue, (engine.now, priority, engine._seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._state = TRIGGERED
        self._ok = False
        self.value = exception
        engine = self.engine
        engine._seq += 1
        heapq.heappush(engine._queue, (engine.now, priority, engine._seq, self))
        return self

    # -- engine hook -------------------------------------------------------

    def _run(self) -> None:
        if self._state == PROCESSED:  # pragma: no cover - defensive
            raise SimulationError("event processed twice")
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """Event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: Engine, delay: float, value=None):
        # `not (0 <= delay < inf)` also catches NaN (all comparisons with
        # NaN are False), which must never reach the heapq — it would
        # poison the queue's total order.
        if not (0.0 <= delay < math.inf):
            raise SimulationError(f"bad Timeout delay: {delay}")
        # Flattened Event.__init__ + Engine.schedule: one per simulated
        # wait, the hottest constructor in the simulator.
        self.engine = engine
        self.callbacks = []
        self.value = value
        self._ok = True
        self._state = TRIGGERED  # scheduled immediately, fires at now+delay
        self.delay = delay
        engine._seq += 1
        heapq.heappush(engine._queue,
                       (engine.now + delay, NORMAL, engine._seq, self))


class Interrupt(Exception):
    """Thrown into an interrupted process at its current yield point."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Runs a generator as a simulated process.

    The process is itself an Event that triggers (with the generator's
    return value) when the generator finishes, so processes can wait for
    each other: ``yield other_process``.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, engine: Engine, generator):
        super().__init__(engine)
        if not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the lifetime of the process; creating a
        # fresh one per wait showed up in event-chain profiles.
        self._resume_cb = self._resume
        # Kick off at the current time (urgent so spawning is immediate).
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume_cb)
        bootstrap.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues both.
        """
        if self._state != PENDING:
            raise SimulationError("cannot interrupt a finished process")
        event = Event(self.engine)
        event._ok = False
        event._defused = True
        event.value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        event._state = TRIGGERED
        engine = self.engine
        engine._seq += 1
        heapq.heappush(engine._queue, (engine.now, URGENT, engine._seq, event))

    # -- driving the generator -----------------------------------------

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:
            # Interrupt raced with completion; drop it silently only if it
            # was an interrupt, otherwise it's a kernel bug.
            if isinstance(event.value, Interrupt):
                return
            raise SimulationError("resume on finished process")  # pragma: no cover
        # Detach from the event we were waiting on (it may not be `event`
        # when an interrupt preempts the wait).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        try:
            if event._ok:
                result = self._generator.send(event.value)
            else:
                result = self._generator.throw(event.value)
        except StopIteration as stop:
            self._state = PENDING  # allow succeed() below
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                "process died of an unhandled Interrupt"
            ) from None
        if not isinstance(result, Event):
            raise SimulationError(
                f"process yielded {result!r}; processes must yield Events"
            )
        if result._state == PROCESSED:
            # Already fired: resume immediately (urgent, zero-delay).
            immediate = Event(self.engine)
            immediate.value = result.value
            immediate._ok = result._ok
            immediate.callbacks.append(self._resume_cb)
            immediate._state = TRIGGERED
            engine = self.engine
            engine._seq += 1
            heapq.heappush(engine._queue,
                           (engine.now, URGENT, engine._seq, immediate))
            self._target = immediate
        else:
            result.callbacks.append(self._resume_cb)
            self._target = result


class AnyOf(Event):
    """Triggers when the first of *events* triggers; value = that event."""

    __slots__ = ("_done",)

    def __init__(self, engine: Engine, events: Iterable[Event]):
        super().__init__(engine)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        self._done = False
        for ev in events:
            if ev.processed:
                self._fire(ev)
                break
            ev.callbacks.append(self._fire)

    def _fire(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        self.succeed(event)
