"""Discrete-event simulation engine: clock + priority event queue.

The engine owns simulated time. Events are scheduled at absolute times and
popped in ``(time, priority, sequence)`` order, so same-time events run in
a deterministic FIFO order (sequence numbers break ties). Nothing here
depends on wall-clock time — runs are reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from ..errors import SimulationError
from ..telemetry.tracer import NULL_TRACER

#: Priority for "urgent" scheduling (interrupts) — runs before normal
#: events that share the same timestamp.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Engine:
    """Simulated clock and event queue.

    Typical use::

        eng = Engine()
        eng.process(my_generator(eng))
        eng.run(until=3600.0)
    """

    def __init__(self, start_time: float = 0.0):
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time}")
        self.now: float = float(start_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._running = False
        #: Telemetry sink; :data:`~repro.telemetry.tracer.NULL_TRACER`
        #: unless a live tracer is attached (every hook call is then a
        #: no-op method — the disabled path allocates nothing).
        self.tracer = NULL_TRACER

    # -- scheduling ---------------------------------------------------

    def schedule(self, event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule *event* to trigger ``delay`` seconds from now.

        The event's :meth:`~repro.sim.process.Event._run` is invoked when
        the clock reaches ``now + delay``.

        The delay must be finite and non-negative. NaN in particular
        would slip past a plain ``delay < 0`` check (every comparison
        with NaN is False), enter the heapq and poison the total order
        of the event queue — heap invariants silently break and events
        start firing out of order.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def call_at(self, when: float, fn: Callable[[], None], priority: int = NORMAL) -> None:
        """Schedule a bare callback at absolute time *when* (finite,
        not in the past — NaN/inf are rejected like in :meth:`schedule`)."""
        if not math.isfinite(when):
            raise SimulationError(f"scheduled time must be finite, got {when}")
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, _Callback(fn)))

    def process(self, generator) -> "Process":
        """Wrap *generator* into a :class:`Process` and start it immediately."""
        from .process import Process

        return Process(self, generator)

    def timeout(self, delay: float, value=None) -> "Timeout":
        """Create a :class:`Timeout` event firing after *delay* seconds."""
        from .process import Timeout

        return Timeout(self, delay, value)

    def event(self) -> "Event":
        """Create an untriggered one-shot :class:`Event`."""
        from .process import Event

        return Event(self)

    # -- main loop ----------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Pop and run the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("time went backwards")
        self.now = when
        event._run()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, the clock passes *until*, or
        *max_events* events have been processed. Returns the final clock.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            n = 0
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and n >= max_events:
                    break
                self.step()
                n += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        self.tracer.engine_run(self.now, n)
        return self.now


class _Callback:
    """Adapter letting ``call_at`` share the event queue with Events."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]):
        self._fn = fn

    def _run(self) -> None:
        self._fn()
