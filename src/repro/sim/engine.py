"""Discrete-event simulation engine: clock + priority event queue.

The engine owns simulated time. Events are scheduled at absolute times and
popped in ``(time, priority, sequence)`` order, so same-time events run in
a deterministic FIFO order (sequence numbers break ties). Nothing here
depends on wall-clock time — runs are reproducible.

Fast path (see DESIGN.md §12): the main loop inlines the pop/dispatch of
:meth:`step` to shave a function call per event, and
:meth:`schedule_span` lets the batched allocation path collapse a run of
consecutive mutator events into one heap entry while consuming the same
sequence numbers and reporting the same logical event count — so the
optimized engine is observationally identical to the plain one.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from ..errors import SimulationError
from ..telemetry.tracer import NULL_TRACER

#: Priority for "urgent" scheduling (interrupts) — runs before normal
#: events that share the same timestamp.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Engine:
    """Simulated clock and event queue.

    Typical use::

        eng = Engine()
        eng.process(my_generator(eng))
        eng.run(until=3600.0)
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "_run_until",
                 "_run_max_events", "_credit", "tracer", "step_hook")

    def __init__(self, start_time: float = 0.0):
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time}")
        self.now: float = float(start_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._running = False
        #: Bounds of the active :meth:`run` call (None outside one); the
        #: batched allocation fast path must not advance past them.
        self._run_until: Optional[float] = None
        self._run_max_events: Optional[int] = None
        #: Logical events represented by batched (collapsed) heap entries,
        #: beyond the entries actually popped. Keeps the event count
        #: reported by :meth:`run` independent of batching.
        self._credit = 0
        #: Telemetry sink; :data:`~repro.telemetry.tracer.NULL_TRACER`
        #: unless a live tracer is attached (every hook call is then a
        #: no-op method — the disabled path allocates nothing).
        self.tracer = NULL_TRACER
        #: Optional ``fn(clock_before, clock_after)`` called after every
        #: dispatched event. The engine is slotted, so external observers
        #: (the runtime :class:`~repro.lint.audit.InvariantAuditor`) hook
        #: here instead of monkey-patching :meth:`step`.
        self.step_hook: Optional[Callable[[float, float], None]] = None

    # -- scheduling ---------------------------------------------------

    def schedule(self, event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule *event* to trigger ``delay`` seconds from now.

        The event's :meth:`~repro.sim.process.Event._run` is invoked when
        the clock reaches ``now + delay``.

        The delay must be finite and non-negative. NaN in particular
        would slip past a plain ``delay < 0`` check (every comparison
        with NaN is False), enter the heapq and poison the total order
        of the event queue — heap invariants silently break and events
        start firing out of order.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def call_at(self, when: float, fn: Callable[[], None], priority: int = NORMAL) -> None:
        """Schedule a bare callback at absolute time *when* (finite,
        not in the past — NaN/inf are rejected like in :meth:`schedule`)."""
        if not math.isfinite(when):
            raise SimulationError(f"scheduled time must be finite, got {when}")
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, _Callback(fn)))

    # -- batched fast path --------------------------------------------

    def batch_horizon(self) -> Optional[float]:
        """Latest absolute time a process may privately advance to.

        While the queue holds no other event before time ``h`` (strictly),
        a running process can collapse a run of its own consecutive events
        ending before ``h`` into one :meth:`schedule_span` entry without
        any other process observing the difference. Returns ``None`` when
        batching is not permitted (not inside :meth:`run`, or an event
        budget is active — ``max_events`` counts real pops, which batching
        would skew).
        """
        if not self._running or self._run_max_events is not None:
            return None
        h = math.inf
        if self._run_until is not None:
            # Events at exactly `until` still run, so the horizon is just
            # past it; anything later would be cut off by the run bound.
            h = math.nextafter(self._run_until, math.inf)
        if self._queue and self._queue[0][0] < h:
            h = self._queue[0][0]
        return h

    def schedule_span(self, when: float, event, n_logical: int) -> None:
        """Schedule *event* at absolute *when* as the collapse of
        *n_logical* consecutive events.

        Consumes *n_logical* sequence numbers (so later tie-breaks are
        unchanged relative to the unbatched schedule) and credits
        ``n_logical - 1`` logical events to the running :meth:`run` count.
        """
        if n_logical < 1:
            raise SimulationError(f"schedule_span needs n_logical >= 1, got {n_logical}")
        if not math.isfinite(when):
            raise SimulationError(f"scheduled time must be finite, got {when}")
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += n_logical
        self._credit += n_logical - 1
        heapq.heappush(self._queue, (when, NORMAL, self._seq, event))

    def process(self, generator) -> "Process":
        """Wrap *generator* into a :class:`Process` and start it immediately."""
        return _process.Process(self, generator)

    def timeout(self, delay: float, value=None) -> "Timeout":
        """Create a :class:`Timeout` event firing after *delay* seconds."""
        return _process.Timeout(self, delay, value)

    def event(self) -> "Event":
        """Create an untriggered one-shot :class:`Event`."""
        return _process.Event(self)

    # -- main loop ----------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Pop and run the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("time went backwards")
        before = self.now
        self.now = when
        event._run()
        if self.step_hook is not None:
            self.step_hook(before, self.now)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, the clock passes *until*, or
        *max_events* events have been processed. Returns the final clock.

        The reported event count (:meth:`~repro.telemetry.tracer.Tracer.engine_run`)
        includes logical events collapsed by :meth:`schedule_span`, so it
        is identical with the allocation fast path on or off.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._run_until = until
        self._run_max_events = max_events
        queue = self._queue
        heappop = heapq.heappop
        credit0 = self._credit
        try:
            n = 0
            while queue:
                if until is not None and queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and n >= max_events:
                    break
                # Inlined step(): one function call per event adds up to a
                # measurable share of a multi-million-event run.
                when, _prio, _seq, event = heappop(queue)
                before = self.now
                self.now = when
                event._run()
                n += 1
                hook = self.step_hook
                if hook is not None:
                    hook(before, self.now)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
            self._run_until = None
            self._run_max_events = None
        self.tracer.engine_run(self.now, n + self._credit - credit0)
        return self.now


class _Callback:
    """Adapter letting ``call_at`` share the event queue with Events."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]):
        self._fn = fn

    def _run(self) -> None:
        self._fn()


# Imported at the bottom (and accessed as attributes at call time) to break
# the engine <-> process cycle without paying a per-call import lookup in
# timeout()/process()/event() — the old inline imports showed up as ~2 % of
# a Cassandra run in cProfile.
from . import process as _process  # noqa: E402
