"""``repro-fleet``: run, report and plot fleet studies.

::

    repro-fleet run --nodes 16 --gcs ParallelOld CMS --store /tmp/fleet \\
        --out study.json
    repro-fleet report study.json
    repro-fleet plot study.json --gc CMS --kind nodes

``run`` prints the comparison tables and (with ``--out``) writes the
canonical study JSON — byte-identical across reruns of the same seed,
which the CI fleet-smoke job enforces with ``cmp``. Calibration cache
accounting goes to stdout only, never into the JSON.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..campaign.store import ResultStore
from ..errors import ConfigError
from .policies import POLICY_NAMES
from .study import FleetStudyConfig, FleetStudyResult, run_fleet_study
from .traffic import TrafficConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="GC-aware fleet load balancing and scaling studies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a fleet study")
    run.add_argument("--gcs", nargs="+", default=["ParallelOld", "CMS", "G1"],
                     help="collectors to study")
    run.add_argument("--policies", nargs="+", default=list(POLICY_NAMES),
                     choices=list(POLICY_NAMES),
                     help="balancing policies to compare")
    run.add_argument("--nodes", type=int, default=16,
                     help="initial fleet size")
    run.add_argument("--duration", type=float, default=86_400.0,
                     help="simulated seconds (default: one day)")
    run.add_argument("--period", type=float, default=86_400.0,
                     help="diurnal period in simulated seconds")
    run.add_argument("--users", type=int, default=2_000_000,
                     help="simulated user population")
    run.add_argument("--seed", type=int, default=0, help="study seed")
    run.add_argument("--calibration-duration", type=float, default=3600.0,
                     help="simulated seconds per calibration JVM run")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="campaign ResultStore for calibration cells")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write canonical study JSON here")
    run.set_defaults(func=cmd_run)

    report = sub.add_parser("report", help="render tables from a study JSON")
    report.add_argument("study", help="study JSON written by `run --out`")
    report.set_defaults(func=cmd_report)

    plot = sub.add_parser("plot", help="ASCII plots from a study JSON")
    plot.add_argument("study", help="study JSON written by `run --out`")
    plot.add_argument("--gc", required=True, help="collector to plot")
    plot.add_argument("--kind", choices=["nodes", "tail"], default="nodes",
                      help="nodes: fleet size over time; tail: P50..P99.9")
    plot.set_defaults(func=cmd_plot)
    return parser


def cmd_run(args) -> int:
    config = FleetStudyConfig(
        gcs=tuple(args.gcs),
        policies=tuple(args.policies),
        n_nodes=args.nodes,
        duration=args.duration,
        traffic=TrafficConfig(users=args.users, period=args.period),
        calibration_duration=args.calibration_duration,
        seed=args.seed,
    )
    store = ResultStore(args.store) if args.store else None
    result = run_fleet_study(config, store=store)
    # Cache accounting stays OUT of the JSON: a cached rerun must be
    # byte-identical to the run that populated the cache.
    print(f"calibration: {result.calibration_hits}/"
          f"{result.calibration_total} cache hits")
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.to_json())
        print(f"study written to {args.out}")
    return 0


def _load(path: str) -> FleetStudyResult:
    with open(path) as fh:
        return FleetStudyResult.from_dict(json.load(fh))


def cmd_report(args) -> int:
    print(_load(args.study).render())
    return 0


def cmd_plot(args) -> int:
    result = _load(args.study)
    if args.kind == "nodes":
        print(result.plot_nodes(args.gc))
    else:
        print(result.plot_tail(args.gc))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
