"""Fleet nodes: a calibrated, load-coupled GC model per Cassandra JVM.

Running a full discrete-event JVM simulation per node per policy would
make a 100-node day-long study cost hours; instead each collector is
simulated **once** (a real :class:`~repro.jvm.JVM` +
:class:`~repro.cassandra.server.CassandraServer` run, cached in the
campaign :class:`~repro.campaign.store.ResultStore`) and every node runs
a cheap surrogate *calibrated from that run's pause log*:

* allocation advances eden in proportion to routed operations (plus the
  server's own background churn — compaction, gossip), so **routing
  decisions feed back into GC timing**, which is the whole point of a
  GC-aware balancer;
* when eden fills, a young pause fires whose duration and promotion are
  drawn from the calibration run's *empirical* samples (each node has
  its own :func:`~repro.seeding.rng_for` stream, so replicas are
  unsynchronized like real ones);
* promoted bytes accumulate in the old generation; crossing the full
  threshold triggers a full collection whose duration scales with the
  bytes it has to process, at the calibration run's observed (or
  derived) seconds-per-byte cost.

Client latency follows the YCSB queue-behind-pause synthesis
(:mod:`repro.ycsb.client`): an operation routed at a node that is inside
a stop-the-world window completes only when the safepoint ends. All
per-node latencies land in a :class:`~repro.telemetry.hist.LogHistogram`
with the same geometry as :func:`repro.analysis.latency.latency_band_stats`
(1 µs resolution over ms values), so fleet aggregation is an exact
histogram merge, never a re-bucketing of raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..jvm import RunResult
from ..seeding import rng_for
from ..telemetry.hist import LogHistogram
from ..telemetry.tracer import NULL_TRACER

#: Histogram geometry shared with ``analysis.latency`` (ms values at
#: 1 µs resolution) — merges are exact across nodes and policies.
LATENCY_UNIT = 1e-3


@dataclass(frozen=True)
class GCCalibration:
    """Per-collector surrogate parameters, extracted from one real run.

    Everything here derives from values that survive the campaign
    store's JSON round trip exactly (pause log, config, allocation
    totals), so calibrating from a cached run is bit-identical to
    calibrating from a fresh one.
    """

    gc: str
    #: Eden bytes consumed between young collections (effective young
    #: capacity as the collector actually ran it).
    young_capacity: float
    #: Allocation attributable to one operation (bytes).
    alloc_per_op: float
    #: Load-independent allocation (compaction, gossip; bytes/s).
    background_alloc: float
    #: Empirical young-pause durations (seconds, calibration order).
    young_pauses: Tuple[float, ...]
    #: Empirical per-young-GC promoted bytes.
    promoted: Tuple[float, ...]
    #: Old-generation capacity (bytes).
    old_capacity: float
    #: Full-collection cost (seconds per live byte processed).
    full_seconds_per_byte: float
    #: Live fraction surviving a full collection.
    full_residual: float

    def __post_init__(self) -> None:
        if self.young_capacity <= 0 or self.old_capacity <= 0:
            raise ConfigError("calibrated capacities must be positive")
        if not self.young_pauses:
            raise ConfigError("calibration needs at least one young pause")


#: Conservative fallback: a full collection is this many times less
#: efficient per byte than a young collection (it touches the whole
#: heap, defeats the nursery's locality, and is single-generation work).
_FULL_COST_FACTOR = 3.0

#: Share of the calibration run's allocation charged to background
#: server work rather than client operations.
_BACKGROUND_FRACTION = 0.15


def calibrate(run: RunResult, ops_per_second: float) -> GCCalibration:
    """Extract a :class:`GCCalibration` from a reference server run."""
    if ops_per_second <= 0:
        raise ConfigError("ops_per_second must be positive")
    if run.execution_time <= 0:
        raise ConfigError("calibration run has no duration")
    young = [p for p in run.gc_log.pauses if not p.is_full]
    full = [p for p in run.gc_log.pauses if p.is_full]
    if not young:
        raise ConfigError(
            f"calibration run for {run.config.gc.value} recorded no young "
            f"pauses; lengthen the calibration duration")
    alloc_rate = run.allocated_bytes / run.execution_time
    # Mean eden fill between young GCs, from the collector's own cadence.
    spacing = run.execution_time / len(young)
    young_capacity = alloc_rate * spacing
    full_residual = 0.5
    if full:
        after = [p.heap_used_after / p.heap_used_before
                 for p in full if p.heap_used_before > 0]
        if after:
            full_residual = float(np.clip(np.mean(after), 0.05, 0.95))
        per_byte = [p.duration / p.heap_used_before
                    for p in full if p.heap_used_before > 0]
        full_seconds_per_byte = float(np.mean(per_byte)) if per_byte else 0.0
    else:
        full_seconds_per_byte = 0.0
    if full_seconds_per_byte <= 0:
        # Derive from young cost: seconds per byte young work, scaled by
        # the full collector's inefficiency.
        young_per_byte = float(np.mean([p.duration for p in young])) / young_capacity
        full_seconds_per_byte = young_per_byte * _FULL_COST_FACTOR
    heap = run.config.heap_bytes
    young_bytes = run.config.young_bytes or heap / 3.0
    return GCCalibration(
        gc=run.config.gc.value,
        young_capacity=float(young_capacity),
        alloc_per_op=float(alloc_rate * (1.0 - _BACKGROUND_FRACTION)
                           / ops_per_second),
        background_alloc=float(alloc_rate * _BACKGROUND_FRACTION),
        young_pauses=tuple(p.duration for p in young),
        promoted=tuple(p.promoted for p in young),
        old_capacity=float(heap - young_bytes),
        full_seconds_per_byte=float(full_seconds_per_byte),
        full_residual=full_residual,
    )


@dataclass(frozen=True)
class NodeModelConfig:
    """Fleet-level knobs layered over a :class:`GCCalibration`."""

    #: Old-generation occupancy fraction at study start (a long-running
    #: server joins the study mid-life, not freshly restarted).
    old_start_fraction: float = 0.6
    #: Full collection triggers at this old-occupancy fraction.
    full_threshold: float = 0.9
    #: Scale on calibrated per-young-GC promotion (fleet workloads skew
    #: read-heavier than the insert-heavy calibration stress run).
    promotion_scale: float = 1.0
    #: Scale on calibrated old capacity (None keeps the calibrated one);
    #: lets studies compress days of old-gen filling into shorter runs.
    old_capacity: Optional[float] = None
    #: Base service latency band (ms): constant + gamma(shape, scale),
    #: the YCSB read path's non-GC component.
    base_ms: float = 0.9
    base_gamma_shape: float = 2.0
    base_gamma_scale: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.old_start_fraction < 1:
            raise ConfigError("old_start_fraction must be in [0, 1)")
        if not 0 < self.full_threshold <= 1:
            raise ConfigError("full_threshold must be in (0, 1]")
        if self.old_start_fraction >= self.full_threshold:
            raise ConfigError("old_start_fraction must be below full_threshold")
        if self.promotion_scale <= 0:
            raise ConfigError("promotion_scale must be positive")
        if self.old_capacity is not None and self.old_capacity <= 0:
            raise ConfigError("old_capacity override must be positive")


class FleetNode:
    """One simulated Cassandra JVM behind the balancer.

    State advances in fixed ticks driven by the balancer; every random
    draw comes from the node's own derived stream, so a node's behaviour
    is a pure function of ``(fleet seed, node id, calibration)`` and the
    op counts routed to it.
    """

    __slots__ = ("node_id", "cal", "model", "rng", "eden_used", "old_used",
                 "busy_until", "hist", "ops_served", "young_gcs", "full_gcs",
                 "forced_gcs", "pause_seconds", "joined_at")

    def __init__(self, node_id: int, cal: GCCalibration,
                 model: NodeModelConfig, seed: int, joined_at: float = 0.0):
        self.node_id = int(node_id)
        self.cal = cal
        self.model = model
        self.rng = rng_for(seed, "fleet.node", node_id, cal.gc)
        self.eden_used = 0.0
        old_cap = self.old_capacity
        self.old_used = model.old_start_fraction * old_cap
        self.busy_until = float(joined_at)
        self.joined_at = float(joined_at)
        self.hist = LogHistogram(unit=LATENCY_UNIT)
        self.ops_served = 0
        self.young_gcs = 0
        self.full_gcs = 0
        self.forced_gcs = 0
        self.pause_seconds = 0.0

    # -- observable GC state (what a JMX poller would see) ---------------

    @property
    def old_capacity(self) -> float:
        """Effective old-generation capacity (model override wins)."""
        return (self.model.old_capacity
                if self.model.old_capacity is not None
                else self.cal.old_capacity)

    def backlog(self, t: float) -> float:
        """Seconds of queued work at *t* (> 0 while inside a pause)."""
        return max(0.0, self.busy_until - t)

    def predicted_time_to_pause(self, t: float, offered_rate: float) -> float:
        """Seconds until the next young pause at *offered_rate* ops/s.

        The pause-predictive policy's signal: eden headroom over the
        projected allocation rate. Uses only state a balancer could poll
        (occupancy and its own routing rate), not oracle pause times.
        """
        alloc_rate = (offered_rate * self.cal.alloc_per_op
                      + self.cal.background_alloc)
        headroom = max(0.0, self.cal.young_capacity - self.eden_used)
        if alloc_rate <= 0:
            return float("inf")
        return headroom / alloc_rate

    def old_fraction(self) -> float:
        """Old-generation occupancy fraction."""
        return self.old_used / self.old_capacity

    # -- the per-tick contract ------------------------------------------

    def offer(self, t: float, dt: float, n_ops: int) -> Tuple[float, int]:
        """Serve *n_ops* arriving in ``[t, t + dt)``.

        Returns ``(latency_ms, n_ops)`` — the tick's recorded latency and
        how many operations experienced it. Operations in one tick share
        one base-service draw and the node's queue-behind-pause delay at
        tick start; the tail is therefore entirely GC-shaped, which is
        the paper's client-side observation and what the balancer
        policies compete on.
        """
        base = (self.model.base_ms
                + self.rng.gamma(self.model.base_gamma_shape,
                                 self.model.base_gamma_scale))
        wait_ms = self.backlog(t) * 1000.0
        latency = base + wait_ms
        if n_ops > 0:
            self.hist.record(latency, count=n_ops)
            self.ops_served += n_ops
            self.eden_used += n_ops * self.cal.alloc_per_op
        self.eden_used += self.cal.background_alloc * dt
        if self.eden_used >= self.cal.young_capacity:
            self._young_gc(t + dt)
        return latency, n_ops

    def _sample(self, values: Tuple[float, ...]) -> float:
        return values[int(self.rng.integers(0, len(values)))]

    def _begin_pause(self, t: float, duration: float) -> None:
        self.busy_until = max(self.busy_until, t) + duration
        self.pause_seconds += duration

    def _young_gc(self, t: float) -> float:
        """Eden filled: stop the world, promote, maybe go full."""
        duration = self._sample(self.cal.young_pauses)
        self._begin_pause(t, duration)
        self.young_gcs += 1
        self.eden_used = 0.0
        promoted = (self._sample(self.cal.promoted)
                    * self.model.promotion_scale)
        self.old_used = min(self.old_used + promoted, self.old_capacity)
        if self.old_used >= self.model.full_threshold * self.old_capacity:
            duration += self._full_gc(t)
        return duration

    def _full_gc(self, t: float) -> float:
        """Old generation crossed the threshold: full collection."""
        duration = self.old_used * self.cal.full_seconds_per_byte
        self._begin_pause(t, duration)
        self.full_gcs += 1
        self.old_used *= self.cal.full_residual
        return duration

    def force_gc(self, t: float) -> float:
        """Monk's move: collect *now*, in a valley, on purpose.

        Runs a young + full cycle regardless of occupancy thresholds and
        returns the total pause length. The pause still queues whatever
        little valley traffic arrives behind it — opportunistic, not
        free.
        """
        duration = self._sample(self.cal.young_pauses)
        self._begin_pause(t, duration)
        self.eden_used = 0.0
        full = self.old_used * self.cal.full_seconds_per_byte
        self._begin_pause(t, full)
        self.old_used *= self.cal.full_residual
        self.forced_gcs += 1
        return duration + full
