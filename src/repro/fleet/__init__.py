"""Fleet: GC-aware load balancing and opportunistic scaling.

The paper studies one JVM at a time; this subsystem asks the question a
Cassandra operator actually faces — *given a fleet of such JVMs under
diurnal traffic, does routing around (or scheduling) collections beat
pretending they don't exist?* It composes the repository's existing
pieces:

* a **calibrated node surrogate** (:mod:`~repro.fleet.node`) distilled
  from one full discrete-event Cassandra JVM run per collector;
* an **open-loop diurnal traffic model** (:mod:`~repro.fleet.traffic`)
  — sinusoid + lognormal noise + bursts over millions of users;
* a **pluggable balancer** (:mod:`~repro.fleet.balancer`) with GC-blind
  and GC-aware policies (:mod:`~repro.fleet.policies`), including
  Monk-style forced collections in traffic valleys;
* a GC-blind **reactive autoscaler** (:mod:`~repro.fleet.autoscaler`);
* the **study driver** (:mod:`~repro.fleet.study`) producing the Fig.
  5-style per-policy tail-latency and node-count deliverables.

Everything is deterministic: same seed ⇒ byte-identical study JSON.
"""

from .autoscaler import AutoscalerConfig, ReactiveAutoscaler, ScaleEvent
from .balancer import FleetBalancer, split_ops
from .node import FleetNode, GCCalibration, NodeModelConfig, calibrate
from .policies import (LeastOutstandingPolicy, MonkPolicy, POLICY_NAMES,
                       PausePredictivePolicy, Policy, RoundRobinPolicy,
                       make_policy)
from .study import (FLEET_BENCHMARK, FleetStudyConfig, FleetStudyResult,
                    PolicyOutcome, calibrate_collector, run_fleet_study,
                    simulate_policy)
from .traffic import DAY, DiurnalTraffic, TrafficConfig

__all__ = [
    "DAY",
    "TrafficConfig",
    "DiurnalTraffic",
    "GCCalibration",
    "NodeModelConfig",
    "FleetNode",
    "calibrate",
    "Policy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "PausePredictivePolicy",
    "MonkPolicy",
    "POLICY_NAMES",
    "make_policy",
    "FleetBalancer",
    "split_ops",
    "AutoscalerConfig",
    "ReactiveAutoscaler",
    "ScaleEvent",
    "FLEET_BENCHMARK",
    "FleetStudyConfig",
    "FleetStudyResult",
    "PolicyOutcome",
    "calibrate_collector",
    "simulate_policy",
    "run_fleet_study",
]
