"""Load-balancing policies: from GC-blind to Monk.

A policy does two things each tick:

* :meth:`~Policy.weights` — how the tick's arrivals are split across
  ready nodes (the *routing* decision);
* :meth:`~Policy.maintain` — optional fleet maintenance (the *Monk*
  hook: forcing collections in traffic valleys so the old generation
  never fills during a peak, which is what delays horizontal scaling).

The four policies the study compares:

==================  ====================================================
``round-robin``     GC-blind equal split; the baseline every Fig. 5
                    latency spike comes from.
``least-outstanding``  classic queue-aware routing: weight falls with
                    the node's backlog, so an *ongoing* pause sheds
                    load — but only after it has already hurt.
``pause-predictive``  routes away *before* the pause: nodes whose eden
                    headroom projects a stop-the-world within the
                    horizon are starved down to a trickle until they
                    collect (the trickle guarantees the pause still
                    happens promptly, off-peak of that node's share).
``monk``            least-outstanding routing plus opportunistic forced
                    full collections in diurnal valleys (staggered, one
                    node per cooldown), per PAPERS.md's Monk.
==================  ====================================================

Policies are deterministic: weights derive only from node state, the
traffic model and simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

import numpy as np

from ..errors import ConfigError
from .node import FleetNode
from .traffic import DiurnalTraffic


class Policy:
    """Base policy: equal weights, no maintenance."""

    #: Registry name (CLI axis value and study JSON key).
    name = "policy"
    #: True when the policy reads GC state (reported in the study).
    gc_aware = False

    def weights(self, t: float, nodes: Sequence[FleetNode],
                per_node_rate: float) -> np.ndarray:
        """Relative routing weights for *nodes* (need not normalize)."""
        return np.ones(len(nodes), dtype=float)

    def maintain(self, t: float, nodes: Sequence[FleetNode],
                 traffic: DiurnalTraffic) -> List[FleetNode]:
        """Fleet maintenance hook; returns nodes it forced a GC on."""
        return []


class RoundRobinPolicy(Policy):
    """GC-blind equal split (the integer remainder rotates)."""

    name = "round-robin"


class LeastOutstandingPolicy(Policy):
    """Weight inversely proportional to queued work."""

    name = "least-outstanding"
    gc_aware = False

    def weights(self, t, nodes, per_node_rate):
        backlog = np.array([n.backlog(t) for n in nodes], dtype=float)
        return 1.0 / (1.0 + 10.0 * backlog)


class PausePredictivePolicy(Policy):
    """Route away from nodes whose collector state predicts a pause.

    ``horizon`` is how far ahead (seconds) a projected young pause makes
    a node undesirable; ``trickle`` is the residual weight an imminent
    node keeps so its eden still fills and the pause is taken soon,
    while the node carries almost no traffic.
    """

    name = "pause-predictive"
    gc_aware = True

    def __init__(self, horizon: float = 3.0, trickle: float = 0.05):
        if horizon <= 0 or not 0 < trickle < 1:
            raise ConfigError("horizon must be > 0 and trickle in (0, 1)")
        self.horizon = float(horizon)
        self.trickle = float(trickle)

    def weights(self, t, nodes, per_node_rate):
        w = np.empty(len(nodes), dtype=float)
        for i, node in enumerate(nodes):
            if node.backlog(t) > 0:
                w[i] = 0.0          # mid-pause: nothing routed in
            elif (node.predicted_time_to_pause(t, per_node_rate)
                  < self.horizon):
                w[i] = self.trickle
            else:
                w[i] = 1.0
        if not w.any():
            return np.ones(len(nodes), dtype=float)
        return w


class MonkPolicy(LeastOutstandingPolicy):
    """Least-outstanding routing + forced collections in valleys.

    During a diurnal valley, at most one node per ``cooldown`` window
    whose old-generation occupancy exceeds ``old_trigger`` is forced
    through a full collection. Staggering keeps most of the (small)
    valley traffic routable around the deliberate pause; by the next
    peak the fleet's old generations sit at their post-collection
    residual, so the threshold-triggered full pauses that drive the
    GC-blind autoscaler's scale-outs never fire.
    """

    name = "monk"
    gc_aware = True

    def __init__(self, old_trigger: float = 0.45, cooldown: float = 120.0):
        if not 0 < old_trigger < 1 or cooldown <= 0:
            raise ConfigError("old_trigger in (0, 1) and cooldown > 0 required")
        self.old_trigger = float(old_trigger)
        self.cooldown = float(cooldown)
        self._last_forced = float("-inf")

    def maintain(self, t, nodes, traffic):
        if t - self._last_forced < self.cooldown:
            return []
        if not bool(traffic.is_valley(t)):
            return []
        # Deterministic victim choice: the dirtiest eligible node.
        victim = None
        for node in nodes:
            if node.backlog(t) > 0:
                continue
            if node.old_fraction() < self.old_trigger:
                continue
            if victim is None or node.old_used > victim.old_used:
                victim = node
        if victim is None:
            return []
        victim.force_gc(t)
        self._last_forced = t
        return [victim]


_POLICIES: Dict[str, Type[Policy]] = {
    cls.name: cls
    for cls in (RoundRobinPolicy, LeastOutstandingPolicy,
                PausePredictivePolicy, MonkPolicy)
}

#: Study-order policy names.
POLICY_NAMES = list(_POLICIES)


def make_policy(name: str) -> Policy:
    """Instantiate a policy by registry name (fresh state each call)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from {', '.join(_POLICIES)}"
        ) from None
