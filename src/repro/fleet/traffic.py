"""Open-loop diurnal traffic: the fleet's arrival process.

The fleet serves a population of simulated users whose aggregate request
rate follows a day/night cycle (Monk's setting: scaling decisions only
make sense against *diurnal* load, because the valleys are where
opportunistic work can hide). The model is deliberately simple and fully
deterministic under :func:`repro.seeding.rng_for`:

* a sinusoidal **envelope** — mean rate x ``(1 + amplitude * sin)``;
* **burst events** — short regional spikes (a push notification, a
  failover from another region) drawn once at construction from the
  model's own seed, added on top of the envelope;
* per-tick multiplicative **noise** (lognormal, mean exactly 1) and
  Poisson **arrival counts**, both from dedicated derived streams — the
  open-loop property: arrivals never depend on how the fleet is doing.

Closed-form expectation: ``E[arrivals(tick)] = envelope(t) * dt`` (the
noise factor has mean 1 by construction, and Poisson sampling preserves
the mean), which is what the traffic tests pin against fixed-seed draws.

Valleys and peaks are defined on the *diurnal factor only* (bursts and
noise excluded): a Monk controller must not mistake a transient burst
lull for night time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigError
from ..seeding import rng_for

#: Seconds per day — the canonical diurnal period.
DAY = 86_400.0


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the fleet's offered load.

    ``users`` and ``ops_per_user_day`` define the mean aggregate rate:
    two million users issuing ~43 requests a day offer ~1000 ops/s on
    average, swinging between ``(1 - amplitude)`` and ``(1 + amplitude)``
    times that over each period.
    """

    users: int = 2_000_000
    ops_per_user_day: float = 43.2
    period: float = DAY
    amplitude: float = 0.6
    #: Fraction of a period by which the cycle is shifted; the default
    #: 0.75 puts the nightly minimum at t = 0 (studies start in the
    #: valley, like a deployment cut overnight).
    phase: float = 0.75
    #: Lognormal sigma of the per-tick multiplicative noise.
    noise_sigma: float = 0.08
    #: Burst events per period (expected); each multiplies the envelope
    #: locally by up to ``burst_magnitude``.
    bursts_per_period: float = 4.0
    burst_duration: float = 180.0
    burst_magnitude: float = 1.8
    #: ``diurnal_factor`` below ``1 - valley_fraction * amplitude`` is a
    #: valley; above ``1 + peak_fraction * amplitude`` is a peak.
    valley_fraction: float = 0.7
    peak_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigError("users must be >= 1")
        if self.ops_per_user_day <= 0:
            raise ConfigError("ops_per_user_day must be positive")
        if self.period <= 0:
            raise ConfigError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError("amplitude must be in [0, 1)")
        if self.noise_sigma < 0:
            raise ConfigError("noise_sigma must be >= 0")
        if self.bursts_per_period < 0 or self.burst_duration <= 0:
            raise ConfigError("burst parameters must be positive")
        if self.burst_magnitude < 1.0:
            raise ConfigError("burst_magnitude must be >= 1")
        if not (0 < self.valley_fraction <= 1 and 0 < self.peak_fraction <= 1):
            raise ConfigError("valley/peak fractions must be in (0, 1]")

    @property
    def mean_rate(self) -> float:
        """Mean aggregate offered rate (ops/s)."""
        return self.users * self.ops_per_user_day / DAY


class DiurnalTraffic:
    """One deterministic realization of the traffic model.

    Burst placements are drawn once here; :meth:`arrivals` draws noise
    and Poisson counts from streams derived from ``(seed, purpose)``
    alone, so the same model produces the same arrival sequence no
    matter which process (or policy run) asks for it.
    """

    def __init__(self, config: TrafficConfig, seed: int = 0):
        self.config = config
        self.seed = int(seed)
        rng = rng_for(self.seed, "fleet.traffic.bursts")
        horizon_periods = 8  # bursts materialized for up to 8 periods
        n = int(rng.poisson(config.bursts_per_period * horizon_periods))
        self._burst_starts = np.sort(
            rng.uniform(0.0, config.period * horizon_periods, size=n))
        self._burst_scales = rng.uniform(1.0, config.burst_magnitude, size=n)

    # -- deterministic envelope -----------------------------------------

    def diurnal_factor(self, t) -> np.ndarray:
        """The bare sinusoid factor in ``[1 - A, 1 + A]`` (vectorized)."""
        c = self.config
        t = np.asarray(t, dtype=float)
        return 1.0 + c.amplitude * np.sin(2.0 * np.pi * (t / c.period + c.phase))

    def burst_factor(self, t) -> np.ndarray:
        """Multiplicative burst contribution at *t* (1 outside bursts)."""
        t = np.asarray(t, dtype=float)
        factor = np.ones(t.shape, dtype=float)
        c = self.config
        idx = np.searchsorted(self._burst_starts, t, side="right") - 1
        valid = idx >= 0
        if valid.any():
            active = np.zeros(t.shape, dtype=bool)
            active[valid] = (t[valid] - self._burst_starts[idx[valid]]
                             < c.burst_duration)
            factor[active] = self._burst_scales[idx[active]]
        return factor

    def envelope(self, t) -> np.ndarray:
        """Expected offered rate at *t* (ops/s): diurnal x bursts."""
        return (self.config.mean_rate * self.diurnal_factor(t)
                * self.burst_factor(t))

    # -- valley / peak detection ----------------------------------------

    def is_valley(self, t) -> np.ndarray:
        """True where the diurnal factor is within the valley band."""
        c = self.config
        return self.diurnal_factor(t) <= 1.0 - c.valley_fraction * c.amplitude

    def is_peak(self, t) -> np.ndarray:
        """True where the diurnal factor is within the peak band."""
        c = self.config
        return self.diurnal_factor(t) >= 1.0 + c.peak_fraction * c.amplitude

    def valley_intervals(self, t0: float, t1: float,
                         dt: float = 60.0) -> List[Tuple[float, float]]:
        """Maximal ``[start, end)`` valley intervals in ``[t0, t1)``,
        sampled on a *dt* grid."""
        ticks = np.arange(t0, t1, dt)
        mask = np.asarray(self.is_valley(ticks), dtype=bool)
        intervals: List[Tuple[float, float]] = []
        start = None
        for t, v in zip(ticks, mask):
            if v and start is None:
                start = float(t)
            elif not v and start is not None:
                intervals.append((start, float(t)))
                start = None
        if start is not None:
            intervals.append((start, float(t1)))
        return intervals

    # -- open-loop arrivals ---------------------------------------------

    def arrivals(self, t0: float, t1: float, dt: float = 1.0) -> np.ndarray:
        """Integer arrival counts per tick over ``[t0, t1)``.

        Open-loop: counts depend only on the model's seed and the tick
        grid, never on downstream behaviour. Noise and Poisson draws use
        separate derived streams keyed by the window, so disjoint
        windows are independent but any window replays identically.
        """
        if t1 <= t0 or dt <= 0:
            raise ConfigError("arrivals need t1 > t0 and dt > 0")
        ticks = np.arange(t0, t1, dt)
        lam = self.envelope(ticks) * dt
        c = self.config
        if c.noise_sigma > 0:
            noise_rng = rng_for(self.seed, "fleet.traffic.noise", int(t0))
            z = noise_rng.standard_normal(ticks.size)
            # exp(sigma z - sigma^2/2) has mean exactly 1.
            lam = lam * np.exp(c.noise_sigma * z - 0.5 * c.noise_sigma ** 2)
        arr_rng = rng_for(self.seed, "fleet.traffic.arrivals", int(t0))
        return arr_rng.poisson(lam).astype(np.int64)

    def expected_arrivals(self, t0: float, t1: float, dt: float = 1.0) -> float:
        """Closed-form expectation of ``arrivals(t0, t1, dt).sum()``."""
        ticks = np.arange(t0, t1, dt)
        return float((self.envelope(ticks) * dt).sum())
