"""The fleet study: policies x collectors under one diurnal trace.

:func:`run_fleet_study` is the Fig. 5-style deliverable of the fleet
subsystem. For each collector it simulates the **same** open-loop
diurnal arrival sequence under every balancing policy, and reports:

* fleet tail latency — P50/P99/P99.9 from exactly-merged per-node
  :class:`~repro.analysis.latency.LatencySummary` histograms (never a
  re-bucketing of raw samples);
* the scaling story — node-count-over-time, scale-out counts and the
  time of the first scale-out (Monk's "how long did valley collections
  delay buying a node").

Calibration runs (one real simulated Cassandra JVM per collector) are
content-addressed campaign cells: a :class:`~repro.campaign.cells.CellSpec`
with the reserved benchmark name :data:`FLEET_BENCHMARK` identifies each
run, and a shared :class:`~repro.campaign.store.ResultStore` serves
repeat studies from cache — the study JSON is byte-identical either way
(the codec round-trip is exact and every RNG stream derives from the
study's own coordinates via :mod:`repro.seeding`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.ascii_plot import scatter_plot
from ..analysis.latency import LatencySummary
from ..analysis.report import render_table
from ..campaign.cells import CellSpec
from ..errors import ConfigError
from ..gc.registry import resolve_gc
from ..seeding import derive_seed
from ..telemetry.tracer import NULL_TRACER
from ..units import GB
from .autoscaler import AutoscalerConfig, ReactiveAutoscaler
from .balancer import FleetBalancer
from .node import FleetNode, GCCalibration, NodeModelConfig, calibrate
from .policies import POLICY_NAMES, make_policy
from .traffic import DiurnalTraffic, TrafficConfig

#: Reserved CellSpec benchmark name for fleet calibration cells.
FLEET_BENCHMARK = "fleet-cassandra"

#: Bump on incompatible study-output changes (part of the JSON).
STUDY_SCHEMA_VERSION = 1

#: Percentiles reported per policy (the paper's tail view).
_QS = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class FleetStudyConfig:
    """One fleet study: collectors x policies over a diurnal trace."""

    gcs: Tuple[str, ...] = ("ParallelOld", "CMS", "G1")
    policies: Tuple[str, ...] = tuple(POLICY_NAMES)
    n_nodes: int = 16
    duration: float = 86_400.0
    tick: float = 1.0
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    node_model: NodeModelConfig = field(default_factory=NodeModelConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    #: Calibration cell coordinates (one JVM run per collector).
    calibration_heap: float = 64 * GB
    calibration_young: float = 12 * GB
    calibration_duration: float = 3600.0
    calibration_ops: float = 1350.0
    #: Node-count timeline sampling interval.
    report_interval: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.gcs:
            raise ConfigError("a fleet study needs at least one collector")
        if not self.policies:
            raise ConfigError("a fleet study needs at least one policy")
        if self.n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if self.duration <= 0 or self.tick <= 0:
            raise ConfigError("duration and tick must be positive")
        if self.duration < self.tick:
            raise ConfigError("duration must cover at least one tick")
        if self.calibration_duration <= 0 or self.calibration_ops <= 0:
            raise ConfigError("calibration duration and rate must be positive")
        if self.report_interval < self.tick:
            raise ConfigError("report_interval must be >= tick")
        object.__setattr__(self, "gcs",
                           tuple(resolve_gc(g).value for g in self.gcs))
        object.__setattr__(self, "policies", tuple(self.policies))
        # Normalize numerics so to_json() is identical whether the
        # config came from Python literals (64 * GB is an int) or from
        # a parsed study JSON (floats).
        for name in ("duration", "tick", "calibration_heap",
                     "calibration_young", "calibration_duration",
                     "calibration_ops", "report_interval"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for p in self.policies:
            make_policy(p)      # fail fast on unknown names

    def calibration_cell(self, gc: str) -> CellSpec:
        """The content-addressed identity of one calibration run."""
        return CellSpec.from_axes(
            FLEET_BENCHMARK, gc, self.calibration_heap,
            self.calibration_young, self.seed, iterations=1,
            overrides={
                "fleet_calibration_duration": self.calibration_duration,
                "fleet_calibration_ops": self.calibration_ops,
            },
        )


def run_calibration_cell(cell: CellSpec) -> "RunResult":
    """Execute one fleet calibration cell from scratch.

    A real discrete-event Cassandra JVM run — the expensive, cacheable
    part of a fleet study.
    """
    from ..cassandra import CassandraServer, stress_config
    from ..jvm import JVM, JVMConfig

    overrides = dict(cell.overrides)
    config = JVMConfig(gc=cell.gc, heap=cell.heap, young=cell.young,
                       seed=cell.seed)
    server = CassandraServer(stress_config(cell.heap))
    return JVM(config).run(
        server,
        duration=float(overrides["fleet_calibration_duration"]),
        ops_per_second=float(overrides["fleet_calibration_ops"]),
    )


def calibrate_collector(config: FleetStudyConfig, gc: str,
                        store=None) -> Tuple[GCCalibration, bool]:
    """Calibration for *gc*, served from *store* when possible.

    Returns ``(calibration, was_cache_hit)``. A fresh run is recorded
    into the store so the next study (or the CI smoke's second pass) is
    a pure cache run.
    """
    cell = config.calibration_cell(gc)
    if store is not None:
        cached = store.get_run(cell.digest())
        if cached is not None:
            return calibrate(cached, config.calibration_ops), True
    result = run_calibration_cell(cell)
    if result.crashed:
        raise ConfigError(
            f"calibration run for {gc} crashed: {result.crash_reason}")
    if store is not None:
        store.record_ok(cell, result)
    return calibrate(result, config.calibration_ops), False


# ----------------------------------------------------------------------
# one (collector, policy) combination
# ----------------------------------------------------------------------


@dataclass
class PolicyOutcome:
    """Everything the study reports about one (gc, policy) pair."""

    gc: str
    policy: str
    summary: LatencySummary
    ops: int = 0
    young_gcs: int = 0
    full_gcs: int = 0
    forced_gcs: int = 0
    pause_seconds: float = 0.0
    scale_outs: int = 0
    scale_ins: int = 0
    first_scale_out: Optional[float] = None
    #: ``[t, n_nodes]`` sampled every ``report_interval``.
    node_timeline: List[List[float]] = field(default_factory=list)
    scale_events: List[dict] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Fleet latency percentile (ms)."""
        return self.summary.percentile(q)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (field order fixed by sort_keys)."""
        return {
            "gc": self.gc,
            "policy": self.policy,
            "ops": self.ops,
            "avg_ms": round(self.summary.avg_ms, 6),
            "max_ms": round(self.summary.max_ms, 6),
            "percentiles_ms": {f"p{q:g}": round(self.percentile(q), 6)
                               for q in _QS},
            "young_gcs": self.young_gcs,
            "full_gcs": self.full_gcs,
            "forced_gcs": self.forced_gcs,
            "pause_seconds": round(self.pause_seconds, 6),
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "first_scale_out": self.first_scale_out,
            "node_timeline": self.node_timeline,
            "scale_events": self.scale_events,
            "latency_summary": self.summary.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PolicyOutcome":
        """Inverse of :meth:`to_dict` (for ``report``/``plot``)."""
        return cls(
            gc=d["gc"], policy=d["policy"],
            summary=LatencySummary.from_dict(d["latency_summary"]),
            ops=d["ops"], young_gcs=d["young_gcs"], full_gcs=d["full_gcs"],
            forced_gcs=d["forced_gcs"], pause_seconds=d["pause_seconds"],
            scale_outs=d["scale_outs"], scale_ins=d["scale_ins"],
            first_scale_out=d["first_scale_out"],
            node_timeline=[list(row) for row in d["node_timeline"]],
            scale_events=[dict(e) for e in d["scale_events"]],
        )


def simulate_policy(config: FleetStudyConfig, gc: str, policy_name: str,
                    cal: GCCalibration, tracer=NULL_TRACER) -> PolicyOutcome:
    """Run one policy over the study's diurnal trace for one collector.

    The traffic model is seeded from the study seed alone — every policy
    (and every collector) faces the *identical* arrival sequence, so
    outcome differences are attributable to the policy, not the trace.
    """
    traffic = DiurnalTraffic(config.traffic, seed=config.seed)
    node_seed = derive_seed(config.seed, "fleet.study", gc)
    nodes = [FleetNode(i, cal, config.node_model, node_seed)
             for i in range(config.n_nodes)]
    policy = make_policy(policy_name)
    balancer = FleetBalancer(nodes, policy, traffic, tracer=tracer)
    scaler = ReactiveAutoscaler(config.autoscaler, cal, config.node_model,
                                node_seed, tracer=tracer)
    scaler.attach(balancer)

    arrivals = traffic.arrivals(0.0, config.duration, config.tick)
    outcome = PolicyOutcome(gc=gc, policy=policy_name,
                            summary=LatencySummary())
    next_sample = 0.0
    dt = config.tick
    for i in range(arrivals.size):
        t = i * dt
        if t >= next_sample:
            outcome.node_timeline.append([t, float(len(balancer.nodes))])
            next_sample += config.report_interval
        latencies, counts = balancer.tick(t, dt, int(arrivals[i]))
        scaler.observe(t, dt, balancer, traffic, latencies, counts)

    all_nodes = list(balancer.nodes) + list(scaler.retired)
    all_nodes.sort(key=lambda n: n.node_id)
    outcome.summary = LatencySummary.merged(
        LatencySummary(hist=n.hist) for n in all_nodes)
    outcome.ops = sum(n.ops_served for n in all_nodes)
    outcome.young_gcs = sum(n.young_gcs for n in all_nodes)
    outcome.full_gcs = sum(n.full_gcs for n in all_nodes)
    outcome.forced_gcs = sum(n.forced_gcs for n in all_nodes)
    outcome.pause_seconds = float(sum(n.pause_seconds for n in all_nodes))
    outcome.scale_outs = scaler.scale_out_count
    outcome.scale_ins = sum(1 for e in scaler.events if e.action == "in")
    outcome.first_scale_out = scaler.first_scale_out()
    outcome.scale_events = [e.to_dict() for e in scaler.events]
    return outcome


# ----------------------------------------------------------------------
# the study
# ----------------------------------------------------------------------


@dataclass
class FleetStudyResult:
    """All outcomes plus the knobs that produced them."""

    config: FleetStudyConfig
    outcomes: List[PolicyOutcome] = field(default_factory=list)
    #: Calibration cache accounting (not part of the canonical JSON —
    #: a cached rerun must stay byte-identical to the original).
    calibration_hits: int = 0
    calibration_total: int = 0

    def outcome(self, gc: str, policy: str) -> PolicyOutcome:
        """The outcome for one (collector, policy) pair."""
        gc = resolve_gc(gc).value
        for o in self.outcomes:
            if o.gc == gc and o.policy == policy:
                return o
        raise ConfigError(f"no outcome for ({gc}, {policy})")

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form of the whole study."""
        c = self.config
        return {
            "v": STUDY_SCHEMA_VERSION,
            "config": {
                "gcs": list(c.gcs),
                "policies": list(c.policies),
                "n_nodes": c.n_nodes,
                "duration": c.duration,
                "tick": c.tick,
                "seed": c.seed,
                "traffic": {
                    "users": c.traffic.users,
                    "ops_per_user_day": c.traffic.ops_per_user_day,
                    "period": c.traffic.period,
                    "amplitude": c.traffic.amplitude,
                    "mean_rate": c.traffic.mean_rate,
                },
                "calibration": {
                    "heap": c.calibration_heap,
                    "young": c.calibration_young,
                    "duration": c.calibration_duration,
                    "ops_per_second": c.calibration_ops,
                },
            },
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self) -> str:
        """Byte-stable serialization (same seed ⇒ identical bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Per-collector policy comparison tables."""
        blocks = []
        for gc in self.config.gcs:
            rows = []
            for o in self.outcomes:
                if o.gc != gc:
                    continue
                rows.append([
                    o.policy, o.ops,
                    round(o.summary.avg_ms, 3),
                    round(o.percentile(50), 3),
                    round(o.percentile(99), 3),
                    round(o.percentile(99.9), 3),
                    o.young_gcs, o.full_gcs, o.forced_gcs,
                    o.scale_outs,
                    ("-" if o.first_scale_out is None
                     else round(o.first_scale_out, 0)),
                ])
            blocks.append(render_table(
                ["policy", "ops", "AVG", "P50", "P99", "P99.9",
                 "young", "full", "forced", "outs", "1st out (s)"],
                rows,
                title=f"fleet study [{gc}] — latency (ms) and scaling",
            ))
        return "\n\n".join(blocks)

    def plot_nodes(self, gc: str) -> str:
        """Node-count-over-time, one series per policy."""
        gc = resolve_gc(gc).value
        series = {}
        for o in self.outcomes:
            if o.gc != gc or not o.node_timeline:
                continue
            xs = [row[0] / 3600.0 for row in o.node_timeline]
            ys = [row[1] for row in o.node_timeline]
            series[o.policy] = (xs, ys)
        if not series:
            raise ConfigError(f"no outcomes for collector {gc}")
        return scatter_plot(series, title=f"fleet size over time [{gc}]",
                            x_label="hours", y_label="nodes")

    def plot_tail(self, gc: str) -> str:
        """Latency tail curves (P50→P99.9), one series per policy."""
        gc = resolve_gc(gc).value
        series = {}
        for o in self.outcomes:
            if o.gc != gc:
                continue
            xs = list(range(len(_QS)))
            ys = [o.percentile(q) for q in _QS]
            series[o.policy] = (xs, ys)
        if not series:
            raise ConfigError(f"no outcomes for collector {gc}")
        return scatter_plot(
            series,
            title=f"latency tail [{gc}] (x: {', '.join(f'P{q:g}' for q in _QS)})",
            x_label="percentile rank", y_label="ms",
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FleetStudyResult":
        """Rehydrate a study from its JSON (``report``/``plot`` path).

        The embedded config subset is enough for rendering; simulation
        knobs that do not affect presentation fall back to defaults.
        """
        c = d["config"]
        config = FleetStudyConfig(
            gcs=tuple(c["gcs"]), policies=tuple(c["policies"]),
            n_nodes=int(c["n_nodes"]), duration=float(c["duration"]),
            tick=float(c["tick"]), seed=int(c["seed"]),
            traffic=TrafficConfig(
                users=int(c["traffic"]["users"]),
                ops_per_user_day=float(c["traffic"]["ops_per_user_day"]),
                period=float(c["traffic"]["period"]),
                amplitude=float(c["traffic"]["amplitude"]),
            ),
            calibration_heap=float(c["calibration"]["heap"]),
            calibration_young=float(c["calibration"]["young"]),
            calibration_duration=float(c["calibration"]["duration"]),
            calibration_ops=float(c["calibration"]["ops_per_second"]),
        )
        return cls(config=config,
                   outcomes=[PolicyOutcome.from_dict(o)
                             for o in d["outcomes"]])


def run_fleet_study(config: FleetStudyConfig, store=None,
                    tracer=NULL_TRACER) -> FleetStudyResult:
    """Run the full policy x collector matrix over one diurnal trace."""
    result = FleetStudyResult(config=config)
    for gc in config.gcs:
        cal, hit = calibrate_collector(config, gc, store=store)
        result.calibration_total += 1
        result.calibration_hits += int(hit)
        for policy in config.policies:
            result.outcomes.append(
                simulate_policy(config, gc, policy, cal, tracer=tracer))
    return result
