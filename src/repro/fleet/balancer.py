"""The fleet balancer: splits each tick's arrivals across ready nodes.

The balancer owns the node list (the autoscaler grows and shrinks it)
and applies the policy's weights with a largest-remainder integer split,
which is deterministic, exact (ops are conserved), and fair under ties
(remainders break by node id; the round-robin rotation offset keeps the
GC-blind baseline honest instead of always favouring node 0).

Routing and forced-GC decisions flow to the telemetry tracer via
dedicated typed hooks (``fleet_route`` / ``fleet_forced_gc``), so a
traced study shows *why* the latency surface looks the way it does.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..telemetry.tracer import NULL_TRACER
from .node import FleetNode
from .policies import Policy
from .traffic import DiurnalTraffic


def split_ops(n_ops: int, weights: np.ndarray,
              rotation: int = 0) -> np.ndarray:
    """Largest-remainder split of *n_ops* proportional to *weights*.

    Exact: the returned integer counts always sum to ``n_ops``. Ties in
    the remainder ranking resolve by ``(index + rotation) % n`` so a
    uniform-weight policy distributes its remainder round-robin over
    ticks instead of piling it on the first node.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ConfigError("weights must be a non-empty 1-d array")
    if (w < 0).any():
        raise ConfigError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        w = np.ones(w.size, dtype=float)
        total = float(w.size)
    quota = n_ops * w / total
    counts = np.floor(quota).astype(np.int64)
    short = n_ops - int(counts.sum())
    if short > 0:
        remainder = quota - counts
        order = np.lexsort((np.arange(w.size - rotation % w.size,
                                      2 * w.size - rotation % w.size) % w.size,
                            -remainder))
        counts[order[:short]] += 1
    return counts


class FleetBalancer:
    """Routes the open-loop arrival stream through a policy."""

    def __init__(self, nodes: List[FleetNode], policy: Policy,
                 traffic: DiurnalTraffic, tracer=NULL_TRACER):
        if not nodes:
            raise ConfigError("a fleet needs at least one node")
        self.nodes = nodes
        self.policy = policy
        self.traffic = traffic
        self.tracer = tracer
        self._tick_index = 0

    def ready_nodes(self, t: float) -> List[FleetNode]:
        """Nodes that have finished warming up by *t*."""
        return [n for n in self.nodes if n.joined_at <= t]

    def tick(self, t: float, dt: float, n_ops: int):
        """Run one tick: maintenance, routing, serving.

        Returns ``(latencies_ms, counts)`` arrays over the ready nodes —
        the tick's recorded latency classes, for SLO accounting.
        """
        ready = self.ready_nodes(t)
        if not ready:
            raise ConfigError(f"no ready nodes at t={t}")
        forced = self.policy.maintain(t, ready, self.traffic)
        for node in forced:
            self.tracer.fleet_forced_gc(t, node.node_id,
                                        node.backlog(t),
                                        node.old_fraction())
        per_node_rate = n_ops / dt / len(ready)
        weights = self.policy.weights(t, ready, per_node_rate)
        counts = split_ops(n_ops, weights, rotation=self._tick_index)
        self._tick_index += 1
        latencies = np.empty(len(ready), dtype=float)
        for i, node in enumerate(ready):
            lat, _ = node.offer(t, dt, int(counts[i]))
            latencies[i] = lat
        if counts.any():
            busiest = int(np.argmax(counts))
            self.tracer.fleet_route(t, self.policy.name, len(ready),
                                    ready[busiest].node_id, int(counts[busiest]))
        return latencies, counts
