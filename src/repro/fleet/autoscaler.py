"""Reactive autoscaler: the horizontal-scaling half of the Monk study.

The autoscaler is deliberately GC-blind — it watches the fleet's SLO
breach rate the way a cloud autoscaler watches a latency alarm, with no
idea *why* the tail moved. That is the point of the comparison: under a
GC-blind routing policy, threshold-triggered full collections at peak
read as capacity shortfalls and provoke scale-outs (new nodes, warmup,
cost); under Monk's valley collections the same signal stays quiet and
the scale-out is *delayed or avoided entirely* — the paper-extension's
headline claim.

Scale-in runs only in traffic valleys at low utilization, newest node
first, so the node-count-over-time curve shows the diurnal breathing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigError
from ..telemetry.tracer import NULL_TRACER
from .balancer import FleetBalancer
from .node import FleetNode, GCCalibration, NodeModelConfig
from .traffic import DiurnalTraffic


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive scaling parameters."""

    min_nodes: int = 4
    max_nodes: int = 64
    #: An operation slower than this breaches the SLO.
    slo_ms: float = 50.0
    #: Rolling window over which the breach fraction is evaluated.
    window: float = 60.0
    #: Scale out when the window's breach fraction exceeds this.
    breach_fraction: float = 0.02
    #: Seconds a new node takes to warm up before taking traffic.
    warmup: float = 180.0
    #: Minimum time between scaling actions.
    cooldown: float = 600.0
    #: Scale in below this utilization (offered rate / fleet capacity),
    #: and only in a traffic valley.
    scale_in_utilization: float = 0.35
    #: Nominal per-node capacity (ops/s) for the utilization estimate.
    node_capacity_ops: float = 1350.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ConfigError("need 1 <= min_nodes <= max_nodes")
        if self.slo_ms <= 0 or self.window <= 0 or self.cooldown <= 0:
            raise ConfigError("slo_ms, window and cooldown must be positive")
        if not 0 < self.breach_fraction < 1:
            raise ConfigError("breach_fraction must be in (0, 1)")
        if self.warmup < 0 or self.node_capacity_ops <= 0:
            raise ConfigError("warmup >= 0 and node_capacity_ops > 0 required")


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling action (for the node-count / scale-delay curves)."""

    t: float
    action: str          #: "out" | "in"
    n_nodes: int         #: fleet size after the action
    reason: str

    def to_dict(self) -> dict:
        """JSON-safe row."""
        return {"t": self.t, "action": self.action,
                "n_nodes": self.n_nodes, "reason": self.reason}


class ReactiveAutoscaler:
    """Breach-rate-driven scaling over a :class:`FleetBalancer`."""

    def __init__(self, config: AutoscalerConfig, cal: GCCalibration,
                 model: NodeModelConfig, seed: int, tracer=NULL_TRACER):
        self.config = config
        self.cal = cal
        self.model = model
        self.seed = int(seed)
        self.tracer = tracer
        self.events: List[ScaleEvent] = []
        #: Nodes removed by scale-in (kept: their latency histograms
        #: still belong to the study's fleet aggregate).
        self.retired: List[FleetNode] = []
        self._window_ops = 0
        self._window_breaches = 0
        self._window_started = 0.0
        self._last_action = float("-inf")
        self._next_node_id = 0

    def attach(self, balancer: FleetBalancer) -> None:
        """Adopt the balancer's initial nodes into the id sequence."""
        self._next_node_id = max(n.node_id for n in balancer.nodes) + 1

    def observe(self, t: float, dt: float, balancer: FleetBalancer,
                traffic: DiurnalTraffic, latencies, counts) -> None:
        """Fold one tick's latency classes into the rolling window and
        act when the window closes."""
        c = self.config
        for lat, n in zip(latencies, counts):
            self._window_ops += int(n)
            if lat > c.slo_ms:
                self._window_breaches += int(n)
        if t + dt - self._window_started < c.window:
            return
        ops = self._window_ops
        breaches = self._window_breaches
        self._window_ops = 0
        self._window_breaches = 0
        self._window_started = t + dt
        if t - self._last_action < c.cooldown:
            return
        n_nodes = len(balancer.nodes)
        if ops > 0 and breaches / ops > c.breach_fraction:
            if n_nodes < c.max_nodes:
                self._scale_out(t, balancer,
                                reason=f"breach {breaches}/{ops}")
            return
        rate = float(traffic.envelope(t))
        utilization = rate / (n_nodes * c.node_capacity_ops)
        if (n_nodes > c.min_nodes
                and bool(traffic.is_valley(t))
                and utilization < c.scale_in_utilization):
            self._scale_in(t, balancer,
                           reason=f"valley util {utilization:.2f}")

    # -- actions ---------------------------------------------------------

    def _scale_out(self, t: float, balancer: FleetBalancer,
                   reason: str) -> None:
        node = FleetNode(self._next_node_id, self.cal, self.model,
                         self.seed, joined_at=t + self.config.warmup)
        self._next_node_id += 1
        balancer.nodes.append(node)
        self._record(t, "out", len(balancer.nodes), reason)

    def _scale_in(self, t: float, balancer: FleetBalancer,
                  reason: str) -> None:
        # Newest node leaves; never one that is mid-pause (it still has
        # queued work to answer for).
        for node in reversed(balancer.nodes):
            if node.backlog(t) == 0 and node.joined_at <= t:
                balancer.nodes.remove(node)
                self.retired.append(node)
                self._record(t, "in", len(balancer.nodes), reason)
                return

    def _record(self, t: float, action: str, n_nodes: int,
                reason: str) -> None:
        self._last_action = t
        self.events.append(ScaleEvent(t=t, action=action,
                                      n_nodes=n_nodes, reason=reason))
        self.tracer.fleet_scale(t, action, n_nodes, reason)

    # -- reporting -------------------------------------------------------

    @property
    def scale_out_count(self) -> int:
        """Number of scale-out actions taken."""
        return sum(1 for e in self.events if e.action == "out")

    def first_scale_out(self) -> Optional[float]:
        """Time of the first scale-out (None if never) — the Monk
        deliverable's "how long did we delay buying a node" number."""
        for e in self.events:
            if e.action == "out":
                return e.t
        return None
