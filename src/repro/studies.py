"""Experiment-grid orchestration: the paper's methodology as an API.

The paper's §3 experiments are all grids: {benchmark} × {heap size} ×
{young size} × {collector} (× {TLAB} × {system GC}), each cell a full JVM
run. :func:`run_grid` executes such a grid and returns a
:class:`GridResult` with filtering and aggregation helpers, so downstream
users can script their own studies (the ranking of Figure 3, for
instance, is ``grid.winners()``).

Example::

    from repro.studies import GridSpec, run_grid
    grid = run_grid(GridSpec(
        benchmarks=["xalan", "h2"],
        gcs=["ParallelOld", "G1"],
        heaps=["16g", "64g"],
        seeds=[0, 1],
    ))
    print(grid.mean_exec("xalan", gc="G1GC"))
    print(grid.winners().ordered())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .analysis.ranking import RankingResult, rank_by_wins
from .errors import ConfigError
from .jvm import RunResult


@dataclass(frozen=True)
class GridSpec:
    """Specification of an experiment grid (paper §3.1 methodology)."""

    benchmarks: Sequence[str]
    gcs: Sequence[str] = ("ParallelOld",)
    heaps: Sequence = ("16g",)
    #: Young sizes; ``None`` entries mean the default fraction of the heap.
    youngs: Sequence = (None,)
    seeds: Sequence[int] = (0,)
    iterations: int = 10
    system_gc: bool = True
    tlab_enabled: bool = True

    def __post_init__(self) -> None:
        # Every axis must be non-empty: an empty `youngs` or `seeds` would
        # silently make the product zero cells, not fail loudly.
        for axis in ("benchmarks", "gcs", "heaps", "youngs", "seeds"):
            if not getattr(self, axis):
                raise ConfigError(f"grid axis {axis!r} must be non-empty")
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")

    def cells(self):
        """Iterate (benchmark, gc, heap, young, seed) tuples."""
        return itertools.product(
            self.benchmarks, self.gcs, self.heaps, self.youngs, self.seeds
        )

    @property
    def size(self) -> int:
        """Number of runs the grid requires."""
        return (len(self.benchmarks) * len(self.gcs) * len(self.heaps)
                * len(self.youngs) * len(self.seeds))


@dataclass(frozen=True)
class CellKey:
    """Identity of one grid cell."""

    benchmark: str
    gc: str
    heap: float
    young: Optional[float]
    seed: int


@dataclass
class GridResult:
    """All runs of a grid, with filtering and aggregation helpers."""

    spec: GridSpec
    runs: Dict[CellKey, RunResult] = field(default_factory=dict)

    # -- filtering ------------------------------------------------------

    def select(self, **criteria) -> List[Tuple[CellKey, RunResult]]:
        """Cells matching all keyword criteria (benchmark/gc/heap/young/seed)."""
        out = []
        for key, run in self.runs.items():
            if all(getattr(key, k) == v for k, v in criteria.items()):
                out.append((key, run))
        return out

    def values(self, metric: Callable[[RunResult], float], **criteria) -> np.ndarray:
        """Metric values over the matching cells."""
        return np.array([metric(run) for _k, run in self.select(**criteria)])

    # -- aggregates -------------------------------------------------------

    def mean_exec(self, benchmark: str, **criteria) -> float:
        """Mean execution time for a benchmark (over seeds and sizes)."""
        vals = self.values(lambda r: r.execution_time,
                           benchmark=benchmark, **criteria)
        if vals.size == 0:
            raise ConfigError(f"no cells match {benchmark!r} / {criteria!r}")
        return float(vals.mean())

    def crashed_cells(self) -> List[CellKey]:
        """Cells whose run crashed."""
        return [k for k, r in self.runs.items() if r.crashed]

    def winners(self) -> RankingResult:
        """Figure 3-style ranking: per (benchmark, heap, young, seed)
        experiment, which collector had the shortest execution time."""
        experiments: Dict[Tuple, Dict[str, float]] = {}
        for key, run in self.runs.items():
            if run.crashed:
                continue
            exp = (key.benchmark, key.heap, key.young, key.seed)
            experiments.setdefault(exp, {})[key.gc] = run.execution_time
        experiments = {k: v for k, v in experiments.items() if v}
        return rank_by_wins(experiments)

    def to_rows(self) -> List[List]:
        """Flat result rows (column order: :data:`GRID_CSV_COLUMNS`)."""
        rows = []
        for key in sorted(self.runs, key=lambda k: (k.benchmark, k.gc, k.heap,
                                                    k.young or 0.0, k.seed)):
            run = self.runs[key]
            rows.append([
                key.benchmark, key.gc, key.heap, key.young, key.seed,
                run.execution_time, run.final_iteration_time, run.crashed,
                run.gc_log.count, run.gc_log.full_count,
                run.gc_log.total_pause, run.gc_log.max_pause,
            ])
        return rows

    def to_csv(self, path) -> None:
        """Write the grid as a CSV file (stdlib csv; no pandas needed)."""
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(GRID_CSV_COLUMNS)
            writer.writerows(self.to_rows())

    def pause_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-collector pause aggregates across the whole grid."""
        out: Dict[str, Dict[str, float]] = {}
        for key, run in self.runs.items():
            if run.crashed:
                continue
            agg = out.setdefault(key.gc, {"max_pause": 0.0, "total_pause": 0.0,
                                          "pauses": 0.0, "runs": 0.0})
            agg["max_pause"] = max(agg["max_pause"], run.gc_log.max_pause)
            agg["total_pause"] += run.gc_log.total_pause
            agg["pauses"] += run.gc_log.count
            agg["runs"] += 1
        return out


GRID_CSV_COLUMNS = [
    "benchmark", "gc", "heap", "young", "seed",
    "execution_time", "final_iteration_time", "crashed",
    "pauses", "full_pauses", "total_pause", "max_pause",
]


def run_grid(spec: GridSpec, progress: Optional[Callable[[CellKey], None]] = None,
             executor=None, **config_overrides) -> GridResult:
    """Execute every cell of *spec* and collect the results.

    Crashing benchmarks (e.g. *eclipse*) are recorded as crashed runs, not
    raised. ``config_overrides`` are forwarded into every
    :class:`~repro.jvm.flags.JVMConfig`.

    Each cell runs through :func:`repro.campaign.cells.run_cell`;
    *executor* (any :mod:`repro.campaign.executors` instance) chooses
    where. The default serial executor preserves the historical strictly-
    sequential behaviour and results exactly; a
    :class:`~repro.campaign.executors.ProcessExecutor` fans cells out
    across cores and — because every cell seeds its RNG streams from its
    own coordinates — yields a bit-identical :class:`GridResult`. For
    caching and resumability on top, see :func:`repro.campaign.run_campaign`.
    """
    from .campaign.cells import CellSpec, run_cell
    from .campaign.executors import CellFailure, SerialExecutor

    if executor is None:
        executor = SerialExecutor()
    cells = [
        CellSpec.from_axes(
            benchmark, gc, heap, young, seed,
            iterations=spec.iterations, system_gc=spec.system_gc,
            tlab_enabled=spec.tlab_enabled, overrides=config_overrides,
        )
        for benchmark, gc, heap, young, seed in spec.cells()
    ]
    on_submit = (lambda cell: progress(cell.key())) if progress is not None else None
    result = GridResult(spec=spec)
    for cell, outcome in executor.run_cells(cells, run_cell, on_submit=on_submit):
        if isinstance(outcome, CellFailure):
            # Preserve the historical contract: infrastructure errors
            # (unknown benchmark, bad override, dead worker) raise.
            if outcome.exc is not None:
                raise outcome.exc
            raise ConfigError(outcome.format())
        result.runs[cell.key()] = outcome
    return result
