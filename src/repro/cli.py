"""Command-line entry points.

Five commands mirror the paper's workflow, one keeps it honest:

* ``repro-dacapo``    — run a DaCapo benchmark under a chosen GC and print
  the per-iteration times plus the GC log;
* ``repro-cassandra`` — run the Cassandra/YCSB experiment and print the
  server pause trace and client latency statistics;
* ``repro-report``    — parse a GC log file (HotSpot-style text, as
  emitted by ``--gc-log``) and print pause statistics;
* ``repro-specjbb``   — run the SPECjbb-style warehouse ramp;
* ``repro-cluster``   — the multi-node experiment fabric (coordinator,
  submit, status, merge; the failure-detector study is its ``failures``
  subcommand — see :mod:`repro.cluster`);
* ``repro-lint``      — static determinism/invariant analysis over the
  source tree (see :mod:`repro.lint`);
* ``repro-campaign``  — parallel, cached, resumable experiment-grid
  campaigns (see :mod:`repro.campaign`);
* ``repro-trace``     — record/report/export/diff JFR-style telemetry
  traces (see :mod:`repro.telemetry`);
* ``repro-perf``      — profile the simulator itself: hot-spot report and
  engine event rates for one cell (see :mod:`repro.perf`);
* ``repro-serve``     — the async experiment service: submit jobs over a
  socket, served from the shared result cache (see :mod:`repro.serve`);
* ``repro-fleet``     — GC-aware load balancing and opportunistic
  scaling over a simulated Cassandra fleet (see :mod:`repro.fleet`);
* ``repro-energy``    — energy/pause Pareto studies over collector x
  GC placement x (asymmetric) topology (see :mod:`repro.energy`).

``repro-dacapo --audit`` additionally attaches the runtime
:class:`~repro.lint.audit.InvariantAuditor` to the run — the simulator's
``-XX:+VerifyBeforeGC``/``-XX:+VerifyAfterGC``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import GB
from .analysis.latency import latency_band_stats
from .analysis.pauses import pause_stats
from .analysis.report import render_table
from .cassandra import CassandraServer, default_config, stress_config
from .jvm import JVM, JVMConfig
from .jvm.gclog import format_gc_log, parse_gc_log
from .units import parse_size
from .workloads.dacapo import ALL_BENCHMARKS, get_benchmark
from .ycsb import YCSBClient, WORKLOAD_A_LIKE, LOAD_PHASE


def _jvm_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gc", default="ParallelOld",
                        help="collector: Serial|ParNew|Parallel|ParallelOld|CMS|G1")
    parser.add_argument("--heap", default="16g", help="heap size (-Xmx/-Xms)")
    parser.add_argument("--young", default=None, help="young size (-Xmn)")
    parser.add_argument("--no-tlab", action="store_true", help="disable TLABs")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--topology", default=None, metavar="NAME",
                        help="registered machine topology (default: the "
                             "paper's 48-core server)")
    parser.add_argument("--placement", default=None, metavar="POLICY",
                        help="GC-thread placement policy on asymmetric "
                             "machines (p-cores|e-cores|adaptive)")


def _build_config(args) -> JVMConfig:
    from .heap.tlab import TLABConfig

    kw = {}
    if getattr(args, "topology", None):
        kw["topology"] = args.topology
    if getattr(args, "placement", None):
        kw["gc_placement"] = args.placement
    return JVMConfig(
        gc=args.gc,
        heap=parse_size(args.heap),
        young=parse_size(args.young) if args.young else None,
        tlab=TLABConfig(enabled=not args.no_tlab),
        seed=args.seed,
        **kw,
    )


def dacapo_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-dacapo``."""
    parser = argparse.ArgumentParser(
        prog="repro-dacapo", description="Run a synthetic DaCapo benchmark."
    )
    parser.add_argument("benchmark", choices=ALL_BENCHMARKS)
    parser.add_argument("-n", "--iterations", type=int, default=10)
    parser.add_argument("--no-system-gc", action="store_true",
                        help="disable the forced full GC between iterations")
    parser.add_argument("-t", "--threads", type=int, default=None)
    parser.add_argument("--gc-log", default=None, help="write a GC log file")
    parser.add_argument("--audit", action="store_true",
                        help="attach the runtime InvariantAuditor "
                             "(VerifyBeforeGC/VerifyAfterGC analogue)")
    parser.add_argument("--progress", action="store_true",
                        help="live iteration progress (done/total, ETA) on stderr")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace (JFR analogue; "
                             "inspect with repro-trace report/export)")
    _jvm_args(parser)
    args = parser.parse_args(argv)

    tracer = None
    if args.trace:
        from .telemetry import Tracer

        tracer = Tracer()
    jvm = JVM(_build_config(args), tracer=tracer)
    auditor = None
    if args.audit:
        from .lint import InvariantAuditor

        auditor = InvariantAuditor()
        auditor.attach(jvm)
    reporter = None
    on_iteration = None
    if args.progress:
        from .campaign.progress import ProgressReporter

        reporter = ProgressReporter(args.iterations, label="iterations")
        reporter.start()
        on_iteration = lambda _i, _t: reporter.advance()  # noqa: E731
    result = jvm.run(
        get_benchmark(args.benchmark),
        iterations=args.iterations,
        system_gc=not args.no_system_gc,
        threads=args.threads,
        on_iteration=on_iteration,
    )
    if reporter is not None:
        reporter.finish()
    print(result.summary())
    rows = [(i + 1, round(t, 3)) for i, t in enumerate(result.iteration_times)]
    print(render_table(["iteration", "duration (s)"], rows))
    if args.gc_log:
        with open(args.gc_log, "w") as fh:
            fh.write(format_gc_log(result.gc_log, jvm.config.heap_bytes))
        print(f"GC log written to {args.gc_log}")
    if tracer is not None:
        from .telemetry import write_trace

        write_trace(tracer, args.trace)
        print(f"trace written to {args.trace} ({tracer.seq} events, "
              f"{tracer.ring.dropped} dropped)")
    if auditor is not None:
        print(auditor.summary())
        for violation in auditor.violations:
            print(violation.format())
        if not auditor.ok:
            return 1
    return 1 if result.crashed else 0


def cassandra_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-cassandra``."""
    parser = argparse.ArgumentParser(
        prog="repro-cassandra",
        description="Run the Cassandra server under a YCSB workload.",
    )
    parser.add_argument("--phase", choices=["load", "run"], default="load",
                        help="load = pure inserts; run = 50/50 read-update")
    parser.add_argument("--stress", action="store_true",
                        help="paper's stress configuration (nothing flushes)")
    parser.add_argument("--duration", type=float, default=3600.0,
                        help="serving time in simulated seconds")
    parser.add_argument("--ops", type=float, default=1350.0,
                        help="offered operations per second")
    _jvm_args(parser)
    parser.set_defaults(heap="64g", young="12g")
    args = parser.parse_args(argv)

    config = _build_config(args)
    heap_bytes = config.heap_bytes
    cass = stress_config(heap_bytes) if args.stress else default_config(heap_bytes)
    workload = (LOAD_PHASE if args.phase == "load" else WORKLOAD_A_LIKE).with_(
        operations_per_second=args.ops
    )
    client = YCSBClient(workload, seed=args.seed)
    trace = client.run(config, cass, duration=args.duration)
    server = trace.server_result
    print(server.summary())
    stats = pause_stats(server.gc_log, server.execution_time)
    print(render_table(
        ["#pauses(full)", "avg pause (s)", "total pause (s)", "exec (s)"],
        [stats.row()],
    ))
    for name, sub in (("READ", trace.reads), ("UPDATE", trace.updates)):
        if len(sub.latencies_ms) == 0:
            continue
        bands = latency_band_stats(sub.op_times, sub.latencies_ms, sub.pause_intervals)
        print(render_table(["metric", name], bands.rows(), title=f"{name} latency"))
    return 1 if server.crashed else 0


def report_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-report``: analyse a GC log file."""
    parser = argparse.ArgumentParser(
        prog="repro-report", description="Analyse a repro GC log file."
    )
    parser.add_argument("logfile")
    args = parser.parse_args(argv)
    with open(args.logfile) as fh:
        log = parse_gc_log(fh.read())
    if not log.pauses:
        print("no pauses in log")
        return 0
    end = max(p.end for p in log.pauses)
    stats = pause_stats(log, end)
    print(log.summary())
    print(render_table(
        ["#pauses(full)", "avg pause (s)", "total pause (s)", "span (s)"],
        [stats.row()],
    ))
    return 0


def specjbb_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-specjbb``: warehouse throughput ramp."""
    from .workloads.specjbb import SPECjbbWorkload

    parser = argparse.ArgumentParser(
        prog="repro-specjbb",
        description="SPECjbb-style warehouse throughput ramp.",
    )
    parser.add_argument("-w", "--warehouses", type=int, nargs="*", default=None,
                        help="warehouse counts (default: 1..2x cores ramp)")
    parser.add_argument("-m", "--measure", type=float, default=20.0,
                        help="measurement seconds per point")
    _jvm_args(parser)
    args = parser.parse_args(argv)

    jvm = JVM(_build_config(args))
    result = jvm.run(SPECjbbWorkload(), warehouses=args.warehouses,
                     measurement_seconds=args.measure)
    if result.crashed:
        print(result.summary())
        return 1
    rows = [
        (p.warehouses, round(p.bops), round(p.gc_pause_seconds, 2),
         f"{100 * p.gc_pause_seconds / p.elapsed:.1f}%")
        for p in result.extras["points"]
    ]
    print(render_table(
        ["warehouses", "BOPS", "GC pause (s)", "GC share"],
        rows, title=f"SPECjbb-style ramp [{jvm.config.gc.value}]",
    ))
    print(f"score: {result.extras['score']:.0f} BOPS")
    return 0


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-cluster``: the multi-node experiment
    fabric (coordinator, campaign submit, scatter-gather status, store
    merge); the original failure-detector study lives on as the
    ``failures`` subcommand."""
    from .cluster.cli import main

    return main(argv)


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-lint``: static determinism analysis."""
    from .lint.cli import main

    return main(argv)


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-campaign``: cached parallel grid sweeps."""
    from .campaign.cli import main

    return main(argv)


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-trace``: record/report/export/diff traces."""
    from .telemetry.cli import main

    return main(argv)


def perf_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-perf``: profile the simulator itself."""
    from .perf.cli import main

    return main(argv)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-serve``: the async experiment service."""
    from .serve.cli import main

    return main(argv)


def fleet_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-fleet``: fleet balancing/scaling studies."""
    from .fleet.cli import main

    return main(argv)


def lbo_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-lbo``: LBO cost-distillation studies."""
    from .analysis.lbo_cli import main

    return main(argv)


def energy_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-energy``: energy/pause Pareto studies."""
    from .energy.cli import main

    return main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(dacapo_main())
