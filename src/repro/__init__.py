"""repro — a simulated-JVM reproduction of *A Performance Study of Java
Garbage Collectors on Multicore Architectures* (PMAM '15).

Quick start::

    from repro import JVM, baseline_config
    from repro.workloads.dacapo import get_benchmark

    jvm = JVM(baseline_config(gc="G1"))
    result = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from .errors import (
    AllocationFailure,
    BenchmarkCrash,
    ConfigError,
    HeapError,
    OutOfMemoryError,
    PromotionFailure,
    ReproError,
    SimulationError,
)
from .gc import GCType, GC_NAMES
from .jvm import JVM, JVMConfig, RunResult
from .jvm.flags import baseline_config
from .machine import (
    AsymmetricTopology,
    CoreClass,
    CostModel,
    MachineTopology,
    PAPER_CLIENT,
    PAPER_SERVER,
    resolve_topology,
)
from .units import GB, KB, MB

__version__ = "1.0.0"

__all__ = [
    "JVM",
    "JVMConfig",
    "RunResult",
    "baseline_config",
    "GCType",
    "GC_NAMES",
    "MachineTopology",
    "AsymmetricTopology",
    "CoreClass",
    "CostModel",
    "PAPER_SERVER",
    "PAPER_CLIENT",
    "resolve_topology",
    "KB",
    "MB",
    "GB",
    "ReproError",
    "ConfigError",
    "HeapError",
    "OutOfMemoryError",
    "AllocationFailure",
    "PromotionFailure",
    "SimulationError",
    "BenchmarkCrash",
    "__version__",
]
