"""Profiling harness: run one simulated JVM cell under ``cProfile``.

The harness measures the *simulator*, not the simulated JVM: it answers
"where does the wall-clock go" (hot functions) and "how fast does the
engine turn simulated seconds into real ones" (event rates, sim-to-wall
ratio). The simulated results themselves are untouched — the profiled
run produces the same GC log and trace as an unprofiled one, so a
profile can be taken on any cell of a campaign without invalidating it.

All wall-clock numbers come from the profiler's own accounting
(``pstats.Stats.total_tt``), so this module never touches the clock
APIs that ``repro.lint`` bans from the simulator tree.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..jvm import JVM, JVMConfig
from ..telemetry.tracer import Tracer
from ..workloads.dacapo import get_benchmark


@dataclass
class HotSpot:
    """One row of the hot-function table."""

    func: str          #: ``file:lineno(name)`` or ``~:0(<builtin>)``
    ncalls: int        #: primitive call count
    tottime: float     #: seconds inside the function itself
    cumtime: float     #: seconds including callees


@dataclass
class ProfileResult:
    """Everything ``repro-perf profile`` measured on one cell."""

    benchmark: str
    gc: str
    seed: int
    iterations: int
    wall_s: float                 #: host seconds for the simulated run
    sim_s: float                  #: simulated seconds covered
    events: int                   #: logical engine events (batched spans
                                  #: count every collapsed event)
    trace_events: int             #: telemetry events recorded
    pauses: int                   #: GC pauses in the run
    crashed: bool
    hotspots: List[HotSpot] = field(default_factory=list)
    #: Telemetry event counts by kind (``gc_pause``, ``tlab_refill``, ...).
    event_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def sim_rate(self) -> float:
        """Simulated seconds per host second (bigger is better)."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_s(self) -> float:
        """Logical engine events dispatched per host second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _collect_hotspots(stats: pstats.Stats, top: int) -> List[HotSpot]:
    rows: List[Tuple[float, HotSpot]] = []
    for (fname, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append((tt, HotSpot(
            func=f"{fname}:{lineno}({name})",
            ncalls=int(nc), tottime=float(tt), cumtime=float(ct),
        )))
    rows.sort(key=lambda r: (-r[0], r[1].func))
    return [h for _tt, h in rows[:top]]


def event_kind_counts(tracer: Tracer) -> Dict[str, int]:
    """Telemetry event counts by name over the whole run."""
    return {k: tracer.counts[k] for k in sorted(tracer.counts)}


def engine_event_count(tracer: Tracer) -> int:
    """Logical engine events reported by ``engine_run`` telemetry.

    Batched allocation spans report every collapsed event, so this count
    matches an unbatched run of the same cell exactly.
    """
    from ..telemetry.events import ENGINE_RUN

    return sum(int(e.args.get("events", 0))
               for e in tracer.ring if e.name == ENGINE_RUN)


def profile_run(
    config: JVMConfig,
    benchmark: str,
    *,
    iterations: int = 10,
    system_gc: bool = True,
    top: int = 25,
) -> ProfileResult:
    """Run one DaCapo cell under cProfile; return the measurements.

    The profiled workload is identical to ``repro-trace record`` on the
    same coordinates — same config, tracer attached — so its simulated
    output can be compared against unprofiled runs directly.
    """
    tracer = Tracer()
    jvm = JVM(config, tracer=tracer)
    bench = get_benchmark(benchmark)

    profiler = cProfile.Profile()
    profiler.enable()
    result = jvm.run(bench, iterations=iterations, system_gc=system_gc)
    profiler.disable()
    # The profiler's own accounting doubles as the wall-clock measurement:
    # total_tt is the profiled span, and it keeps this module free of the
    # clock APIs that repro.lint bans (SL001).
    stats = pstats.Stats(profiler)
    wall = float(stats.total_tt)

    return ProfileResult(
        benchmark=benchmark,
        gc=config.gc.value,
        seed=config.seed,
        iterations=iterations,
        wall_s=wall,
        sim_s=jvm.engine.now,
        events=engine_event_count(tracer),
        trace_events=tracer.seq,
        pauses=result.gc_log.count,
        crashed=result.crashed,
        hotspots=_collect_hotspots(stats, top),
        event_kinds=event_kind_counts(tracer),
    )
