"""``python -m repro.perf`` — same as the ``repro-perf`` script."""

import sys

from .cli import main

sys.exit(main())
