"""Rendering for ``repro-perf`` hot-spot reports.

Plain-text tables (same conventions as :mod:`repro.analysis.report`) and
a JSON form for machines. The JSON schema is pinned by
``tests/test_perf.py``; bump ``SCHEMA`` when it changes shape.
"""

from __future__ import annotations

import json
from typing import List

from .profile import ProfileResult

SCHEMA = 1


def _shorten(func: str, limit: int = 64) -> str:
    """Trim long ``/abs/path/file.py:123(name)`` rows to their tail."""
    if len(func) <= limit:
        return func
    return "…" + func[-(limit - 1):]


def render_text(result: ProfileResult) -> str:
    """Human-readable hot-spot report for one profiled cell."""
    lines: List[str] = []
    lines.append(
        f"repro-perf: {result.benchmark} [{result.gc}] seed={result.seed} "
        f"n={result.iterations}" + (" CRASHED" if result.crashed else "")
    )
    lines.append(
        f"  wall {result.wall_s:.3f}s for {result.sim_s:.2f} simulated s "
        f"({result.sim_rate:.0f}x real time)"
    )
    lines.append(
        f"  {result.events} engine events ({result.events_per_s:,.0f}/s), "
        f"{result.trace_events} trace events, {result.pauses} GC pauses"
    )
    if result.event_kinds:
        kinds = ", ".join(f"{k}={v}" for k, v in result.event_kinds.items())
        lines.append(f"  trace mix: {kinds}")
    if result.hotspots:
        lines.append("")
        lines.append(f"  {'tottime':>9}  {'cumtime':>9}  {'ncalls':>9}  function")
        for h in result.hotspots:
            lines.append(
                f"  {h.tottime:9.4f}  {h.cumtime:9.4f}  {h.ncalls:9d}  "
                f"{_shorten(h.func)}"
            )
    return "\n".join(lines)


def to_json(result: ProfileResult) -> str:
    """Machine-readable report (one JSON document)."""
    doc = {
        "schema": SCHEMA,
        "benchmark": result.benchmark,
        "gc": result.gc,
        "seed": result.seed,
        "iterations": result.iterations,
        "crashed": result.crashed,
        "wall_s": round(result.wall_s, 6),
        "sim_s": round(result.sim_s, 6),
        "sim_rate": round(result.sim_rate, 3),
        "events": result.events,
        "events_per_s": round(result.events_per_s, 1),
        "trace_events": result.trace_events,
        "pauses": result.pauses,
        "event_kinds": result.event_kinds,
        "hotspots": [
            {"func": h.func, "ncalls": h.ncalls,
             "tottime": round(h.tottime, 6), "cumtime": round(h.cumtime, 6)}
            for h in result.hotspots
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
