"""Profiling and optimization layer for the simulator core.

Two halves:

* :mod:`repro.perf.fastpath` — the ``REPRO_FASTPATH`` kill switch for the
  batched allocation fast path in
  :meth:`~repro.jvm.threads.MutatorContext.allocate_all`. Import-light on
  purpose: the hot path reads one module global.
* :mod:`repro.perf.profile` / :mod:`repro.perf.report` — the ``repro-perf``
  CLI: cProfile a simulated run, fold in tracer-derived event-rate stats,
  and print a hot-spot report.

The fast path is an *optimization*, never a model change: with
``REPRO_FASTPATH=0`` and ``=1`` the same seed must produce byte-identical
GC logs, traces and campaign digests (pinned by ``tests/test_perf.py``;
invariants catalogued in DESIGN.md §12).
"""

from .fastpath import enabled, set_enabled

__all__ = ["enabled", "set_enabled"]
