"""Kill switch for the batched allocation fast path.

``REPRO_FASTPATH=0`` in the environment disables batching at import time;
:func:`set_enabled` toggles it at runtime (used by the determinism pins in
``tests/test_perf.py`` to run the same cell both ways in one process).

This module must stay import-light — ``repro.jvm.threads`` imports it on
its hot path and anything heavier would recreate the per-call importlib
cost this PR removes from the engine.
"""

from __future__ import annotations

import os

#: Truthy spellings accepted for REPRO_FASTPATH (anything else disables).
_FALSEY = frozenset({"0", "false", "no", "off"})

#: Module-global read by the allocation hot path. Mutate only through
#: :func:`set_enabled` so the single source of truth stays obvious.
ENABLED: bool = os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in _FALSEY


def enabled() -> bool:
    """Whether the batched allocation fast path is active."""
    return ENABLED


def set_enabled(value: bool) -> bool:
    """Set the fast-path gate; returns the previous value (for restore)."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous
