"""The ``repro-perf`` command: profile the simulator itself.

``profile`` runs one DaCapo cell under cProfile and prints where the
host's wall-clock went, alongside engine event rates; ``fastpath``
reports whether the batched-allocation fast path is active in this
environment (the ``REPRO_FASTPATH`` gate).

Examples::

    repro-perf profile xalan -n 10 --gc CMS --seed 1
    repro-perf profile avrora --gc G1 --top 40 --json -o g1.perf.json
    repro-perf fastpath
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from ..jvm import JVMConfig
from ..units import parse_size
from ..workloads.dacapo import ALL_BENCHMARKS
from . import fastpath
from .profile import profile_run
from .report import render_text, to_json


def profile_cmd(args) -> int:
    """``repro-perf profile``: cProfile one cell, print the hot spots."""
    from ..heap.tlab import TLABConfig

    config = JVMConfig(
        gc=args.gc,
        heap=parse_size(args.heap),
        young=parse_size(args.young) if args.young else None,
        tlab=TLABConfig(enabled=not args.no_tlab),
        seed=args.seed,
    )
    result = profile_run(
        config, args.benchmark,
        iterations=args.iterations,
        system_gc=not args.no_system_gc,
        top=args.top,
    )
    text = to_json(result) if args.json else render_text(result) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"report written to {args.output}")
    else:
        sys.stdout.write(text)
    return 1 if result.crashed else 0


def fastpath_cmd(args) -> int:
    """``repro-perf fastpath``: print the fast-path gate state."""
    state = "enabled" if fastpath.enabled() else "disabled"
    print(f"fastpath: {state} (REPRO_FASTPATH)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Profile the simulator: hot spots and event rates.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="cProfile one DaCapo cell")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("-n", "--iterations", type=int, default=10)
    p.add_argument("--gc", default="ParallelOld",
                   help="collector: Serial|ParNew|Parallel|ParallelOld|CMS|G1")
    p.add_argument("--heap", default="16g", help="heap size (-Xmx/-Xms)")
    p.add_argument("--young", default=None, help="young size (-Xmn)")
    p.add_argument("--no-tlab", action="store_true", help="disable TLABs")
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.add_argument("--no-system-gc", action="store_true",
                   help="disable the forced full GC between iterations")
    p.add_argument("--top", type=int, default=25,
                   help="hot functions to keep (default 25)")
    p.add_argument("--json", action="store_true",
                   help="emit the JSON report instead of text")
    p.add_argument("-o", "--output", default=None,
                   help="write the report to a file instead of stdout")
    p.set_defaults(fn=profile_cmd)

    p = sub.add_parser("fastpath", help="show the REPRO_FASTPATH gate state")
    p.set_defaults(fn=fastpath_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
