"""The simulated JVM: configuration, mutator threads, safepoints, GC log.

:class:`JVM` glues the heap, a collector, the machine model and the DES
kernel together and runs workloads. It is the main entry point of the
library::

    from repro import JVM, JVMConfig
    from repro.workloads.dacapo import get_benchmark

    jvm = JVM(JVMConfig(gc="ParallelOld", heap="16g", young="5600m"))
    result = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)
    print(result.gc_log.summary())
"""

from .flags import JVMConfig
from .jvm import JVM, RunResult
from .threads import MutatorContext, World
from .gclog import format_gc_log, parse_gc_log

__all__ = [
    "JVM",
    "JVMConfig",
    "RunResult",
    "World",
    "MutatorContext",
    "format_gc_log",
    "parse_gc_log",
]
