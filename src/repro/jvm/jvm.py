"""The JVM facade: wires heap, collector, machine and DES together.

One :class:`JVM` instance corresponds to one ``java`` process in the
paper's experiments: it is configured once (GC, heap geometry, TLAB,
machine), then runs a workload to completion and exposes the GC log and
run statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ReproError
from ..gc.registry import create_collector
from ..gc.stats import GCLog
from ..heap.heap import GenerationalHeap, HeapConfig
from ..machine.costs import CostModel
from ..sim import Engine
from .flags import JVMConfig
from .threads import MutatorContext, World


@dataclass
class RunResult:
    """Outcome of one workload run on a JVM."""

    workload: str
    config: JVMConfig
    execution_time: float           #: total simulated wall time (seconds)
    gc_log: GCLog
    iteration_times: List[float] = field(default_factory=list)
    allocated_bytes: float = 0.0
    alloc_overhead_time: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)
    crashed: bool = False
    crash_reason: str = ""

    @property
    def final_iteration_time(self) -> float:
        """Duration of the last (measured) iteration, 0 if none recorded."""
        return self.iteration_times[-1] if self.iteration_times else 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        state = "CRASHED " if self.crashed else ""
        return (
            f"{state}{self.workload} [{self.config.gc.value}] "
            f"exec {self.execution_time:.2f}s, {self.gc_log.summary()}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary of the run (for result archives)."""
        return {
            "workload": self.workload,
            "gc": self.config.gc.value,
            "heap_bytes": self.config.heap_bytes,
            "young_bytes": self.config.young_bytes,
            "seed": self.config.seed,
            "execution_time": self.execution_time,
            "iteration_times": list(self.iteration_times),
            "allocated_bytes": self.allocated_bytes,
            "crashed": self.crashed,
            "crash_reason": self.crash_reason,
            "gc_log": {
                "pauses": self.gc_log.count,
                "full_pauses": self.gc_log.full_count,
                "total_pause": self.gc_log.total_pause,
                "max_pause": self.gc_log.max_pause,
                "avg_pause": self.gc_log.avg_pause,
            },
        }


class JVM:
    """A simulated OpenJDK 8 JVM instance.

    Create one per run; the engine, heap and collector state are
    per-instance and a JVM cannot be reused after :meth:`run`.
    """

    def __init__(self, config: JVMConfig, tracer=None):
        self.config = config
        self.engine = Engine()
        # Mix the collector into the seed: separate JVM invocations (one per
        # GC in the paper's methodology) have independent noise.
        from ..seeding import rng_for
        from ..telemetry.tracer import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rng = rng_for(config.seed, config.gc.value, "jvm")
        self.costs = CostModel(topology=config.topology)
        gc_threads = config.gc_threads
        if config.gc_placement:
            # Fold the placement policy's per-phase bandwidth scales into
            # the cost model and cap the GC thread pool at the pinned
            # class's size. On a homogeneous topology every scale is
            # exactly 1.0 and the cap equals the ergonomic default, so
            # this is byte-transparent.
            from ..energy.placement import (apply_placement,
                                            effective_gc_threads,
                                            resolve_placement)
            policy = resolve_placement(config.gc_placement)
            self.costs = apply_placement(self.costs, policy)
            gc_threads = effective_gc_threads(config.topology, policy,
                                              config.gc_threads)
        self.heap = GenerationalHeap(
            HeapConfig(
                heap_bytes=config.heap_bytes,
                young_bytes=config.young_bytes,
                survivor_ratio=config.survivor_ratio,
                tlab=config.tlab,
            ),
            n_mutator_threads=config.mutator_threads,
        )
        self.collector = create_collector(
            config.gc,
            self.heap,
            self.costs,
            gc_threads=gc_threads,
            rng=rng_for(config.seed, config.gc.value, "collector"),
            pause_target=config.pause_target,
            remset_fidelity=config.remset_fidelity,
        )
        self.gc_log = GCLog()
        self.world = World(
            self.engine, self.heap, self.collector, self.costs,
            self.gc_log, config.topology.cores,
        )
        if self.tracer.enabled:
            self.engine.tracer = self.tracer
            self.world.tracer = self.tracer
            self.collector.tracer = self.tracer
            self.tracer.meta.update({
                "gc": config.gc.value,
                "heap_bytes": config.heap_bytes,
                "young_bytes": (float(config.young)
                                if config.young is not None else None),
                "seed": config.seed,
                "tlab": config.tlab.enabled,
                "topology": config.topology.name,
            })
            if config.gc_placement:
                self.tracer.meta["gc_placement"] = config.gc_placement
        self._contexts: List[MutatorContext] = []
        self._ran = False

    # ------------------------------------------------------------------
    # Process helpers (used by workloads/harnesses)
    # ------------------------------------------------------------------

    def spawn_mutator(self, body: Callable[[MutatorContext], object], name: str = "mutator"):
        """Start a mutator thread running the generator ``body(ctx)``.

        Returns the underlying process (an awaitable Event).
        """
        ctx = MutatorContext(self.world, name)
        self.world.register(ctx)
        self._contexts.append(ctx)

        def _wrapper():
            try:
                yield from body(ctx)
            finally:
                ctx.alive = False

        ctx.process = self.engine.process(_wrapper())
        return ctx.process

    def join(self, processes):
        """Generator: wait until every process in *processes* finished."""
        for proc in processes:
            if proc.is_alive:
                yield proc

    def system_gc(self):
        """Generator: perform ``System.gc()`` (a stop-the-world full GC)."""
        yield from self.world.gc_cycle(None, self.collector.explicit_gc, must_run=True)

    def sleep(self, seconds: float):
        """Generator: simulated sleep (not stretched by GC activity)."""
        yield self.engine.timeout(seconds)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    def _misc_safepoint_loop(self):
        """Background process emitting non-GC safepoints (paper §2).

        Beyond collections, HotSpot stops the world for code
        deoptimization, biased-lock revocation and periodic cleanup; when
        ``misc_safepoints`` is enabled these appear in the GC log with
        kind ``vm-op``. The loop retires once the workload's mutators are
        gone so the simulation can terminate.
        """
        from ..gc.base import Outcome, STWPause
        from ..seeding import rng_for

        rng = rng_for(self.config.seed, self.config.gc.value, "vm-ops")
        causes = ["Deoptimize", "RevokeBias", "no vm operation"]
        seen_mutators = False
        while True:
            yield self.engine.timeout(
                float(rng.exponential(self.config.misc_safepoint_interval))
            )
            alive = self.world.alive_mutators() > 0
            if alive:
                seen_mutators = True
            elif seen_mutators or self.engine.now > 60.0:
                return
            else:
                continue
            cause = causes[int(rng.integers(len(causes)))]
            duration = float(rng.uniform(0.0005, 0.004))

            def vm_op(_now, c=cause, d=duration):
                return Outcome(pauses=[STWPause("vm-op", c, d)])

            yield from self.world.gc_cycle(None, vm_op, must_run=True)

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------

    def run(self, workload, **kwargs) -> RunResult:
        """Run *workload* to completion and return its :class:`RunResult`.

        The workload must implement the :class:`repro.workloads.base.Workload`
        protocol; extra keyword arguments are forwarded to its
        :meth:`~repro.workloads.base.Workload.drive` generator factory.
        """
        if self._ran:
            raise ReproError("a JVM instance can only run once; create a new one")
        self._ran = True
        if self.tracer.enabled:
            self.tracer.meta.setdefault(
                "workload", getattr(workload, "name", str(workload)))
        result = RunResult(
            workload=getattr(workload, "name", str(workload)),
            config=self.config,
            execution_time=0.0,
            gc_log=self.gc_log,
        )
        driver = self.engine.process(workload.drive(self, result, **kwargs))
        if self.config.misc_safepoints:
            self.engine.process(self._misc_safepoint_loop())
        error: List[BaseException] = []
        try:
            self.engine.run()
        except ReproError as exc:
            error.append(exc)
        result.execution_time = self.engine.now
        result.allocated_bytes = sum(c.allocated_bytes for c in self._contexts)
        result.alloc_overhead_time = sum(c.alloc_overhead_time for c in self._contexts)
        if self.world.total_stall_time > 0.0:
            # Only the concurrent collectors ever stall, so legacy runs'
            # extras (and their cached encodings) are untouched.
            result.extras["alloc_stall_seconds"] = self.world.total_stall_time
            result.extras["alloc_stall_count"] = self.world.stall_count
        if error:
            result.crashed = True
            result.crash_reason = f"{type(error[0]).__name__}: {error[0]}"
        elif driver.is_alive:
            result.crashed = True
            result.crash_reason = "driver did not finish (deadlock?)"
        if self.tracer.enabled and self.config.gc_placement:
            # Post-hoc energy summary events, one per (phase, class).
            # Gated on an explicit placement so legacy traces (and the
            # CI byte-identity proofs) keep their exact bytes.
            from ..energy.model import EnergyModel
            account = EnergyModel.for_config(self.config).account_run(result)
            for phase, core_class, uj in account.items():
                self.tracer.energy_phase(result.execution_time, phase,
                                         core_class, uj)
        return result
