"""HotSpot-style GC log emission and parsing.

The paper's server-side analysis (§4.1) is based on reading Cassandra's GC
logs. We provide the same workflow: :func:`format_gc_log` renders a
:class:`~repro.gc.stats.GCLog` in a ``-XX:+PrintGCDetails``-inspired
format, and :func:`parse_gc_log` reads it back, so analysis pipelines can
be exercised end-to-end on text logs.

Example line::

    12.345: [GC (Allocation Failure) [ParallelOldGC: young] 812M->211M(16384M), 0.1830 secs]
"""

from __future__ import annotations

import re
from typing import List

from ..errors import ReproError
from ..gc.stats import GCLog, PauseRecord
from ..units import MB

_LINE_RE = re.compile(
    r"^(?P<start>[0-9.]+): \[(?P<major>GC|Full GC) \((?P<cause>.*?)\) "
    r"\[(?P<collector>[\w]+): (?P<kind>[\w-]+)\] "
    r"(?P<before>[0-9.]+)M->(?P<after>[0-9.]+)M\((?P<capacity>[0-9.]+)M\), "
    r"(?P<duration>[0-9.]+) secs\]$"
)


def format_pause(p: PauseRecord, heap_capacity: float) -> str:
    """Render one pause as a GC-log line.

    Durations print with seven decimals (0.1 µs). The historical ``.4f``
    rounded to 0.1 ms — re-parsing a log then shifted sub-millisecond
    pauses across bucket boundaries of the telemetry histogram, so the
    percentiles of a round-tripped log disagreed with the in-memory
    :attr:`~repro.gc.stats.GCLog.pause_hist` (the source of truth). At
    0.1 µs the text round-trip is finer than the histogram's bucket
    resolution and the percentiles match within one bucket width
    (``tests/test_telemetry.py`` pins this).
    """
    major = "Full GC" if p.is_full else "GC"
    return (
        f"{p.start:.3f}: [{major} ({p.cause}) "
        f"[{p.collector}: {p.kind}] "
        f"{p.heap_used_before / MB:.0f}M->{p.heap_used_after / MB:.0f}M"
        f"({heap_capacity / MB:.0f}M), {p.duration:.7f} secs]"
    )


def format_gc_log(log: GCLog, heap_capacity: float) -> str:
    """Render a whole GC log (one line per STW pause)."""
    return "\n".join(format_pause(p, heap_capacity) for p in log.pauses)


def parse_gc_log(text: str) -> GCLog:
    """Parse a log produced by :func:`format_gc_log` back into a GCLog.

    Raises :class:`~repro.errors.ReproError` on malformed non-empty lines.
    """
    log = GCLog()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise ReproError(f"unparseable GC log line {lineno}: {line!r}")
        d = m.groupdict()
        log.record(
            PauseRecord(
                start=float(d["start"]),
                duration=float(d["duration"]),
                kind=d["kind"],
                cause=d["cause"],
                collector=d["collector"],
                heap_used_before=float(d["before"]) * MB,
                heap_used_after=float(d["after"]) * MB,
            )
        )
    return log
