"""Mutator threads, safepoints and the stop-the-world protocol.

:class:`World` owns the global execution state of the simulated JVM:
which mutators exist, whether a stop-the-world pause is in progress, and
the GC log. Mutators are DES processes wrapped in a
:class:`MutatorContext` that provides the two primitives every workload
is written in terms of:

* ``yield from ctx.work(cpu_seconds)`` — compute for a given amount of
  CPU time (stretched when concurrent GC threads steal cores, paused for
  the duration of any STW pause — implemented with process interrupts);
* ``cohort = yield from ctx.allocate(bytes, dist, ...)`` — allocate in
  eden, paying the allocation-path cost and triggering a garbage
  collection on allocation failure, exactly like a JVM allocation site.

The stop-the-world protocol mirrors HotSpot's safepoints: the GC
initiator flags the world stopped, interrupts all running mutators, waits
time-to-safepoint, executes the collector's pauses, then releases
everyone. GCs requested while another is in progress wait for it (and the
allocation is retried afterwards).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import OutOfMemoryError, PromotionFailure, AllocationFailure
from ..gc.base import Outcome
from ..gc.stats import GCLog, PauseRecord, RELOCATION_PHASE
from ..heap.lifetime import LifetimeDistribution
from ..perf import fastpath
from ..sim import Engine, Event, Interrupt
from ..sim.process import TRIGGERED, Timeout
from ..telemetry.tracer import NULL_TRACER
from ..units import KB


class World:
    """Global JVM execution state: mutators, safepoints, GC log."""

    def __init__(self, engine: Engine, heap, collector, costs, gc_log: GCLog, n_cores: int):
        self.engine = engine
        self.heap = heap
        self.collector = collector
        self.costs = costs
        self.gc_log = gc_log
        self.n_cores = int(n_cores)
        self.stw = False
        self.gc_in_progress = False
        self._resume_event = None
        self.mutators: List["MutatorContext"] = []
        # O(1) mirrors of "how many contexts are alive / alive-and-running".
        # Maintained by register() and the MutatorContext.alive/parked
        # setters; mutator_speed() is called once per work quantum, so the
        # old O(n_mutators) generator sums dominated large-grid profiles.
        self._n_alive = 0
        self._n_running = 0
        self.total_stw_time = 0.0
        #: Allocation-stall accounting (fully-concurrent collectors): the
        #: triggering mutator waits for an in-flight relocation instead of
        #: the world stopping. Always zero for the stock collectors.
        self.stall_count = 0
        self.total_stall_time = 0.0
        #: Telemetry sink (the JVM swaps in a live tracer when requested).
        self.tracer = NULL_TRACER
        self._thread_multiplier = 1.0
        # Derived thread quantities, recomputed on the rare inputs changes
        # (thread birth/death, multiplier assignment) instead of on every
        # work quantum: logical thread count and the CPU-sharing divisor.
        self._logical_threads = 1
        self._speed_denom = 1.0

    @property
    def thread_multiplier(self) -> float:
        """Logical application threads represented by each mutator process.

        Workloads may simulate k threads per process ("thread groups")
        for speed; CPU sharing and allocation contention stay faithful
        to the logical thread count.
        """
        return self._thread_multiplier

    @thread_multiplier.setter
    def thread_multiplier(self, value: float) -> None:
        self._thread_multiplier = value
        self._recompute_threads()

    def _recompute_threads(self) -> None:
        logical = self._n_alive * self._thread_multiplier
        self._logical_threads = max(1, int(round(logical)))
        self._speed_denom = logical if logical > 1.0 else 1.0

    # ------------------------------------------------------------------

    def register(self, ctx: "MutatorContext") -> None:
        """Track a mutator context for safepoint interruption."""
        self.mutators.append(ctx)
        if ctx._alive:
            self._n_alive += 1
            if not ctx._parked:
                self._n_running += 1
            self._recompute_threads()

    def alive_mutators(self) -> int:
        """Number of live mutator threads."""
        return self._n_alive

    def running_mutators(self) -> int:
        """Live mutators that are not parked at a safepoint."""
        return self._n_running

    def mutator_speed(self) -> float:
        """Per-thread execution speed in [0, 1].

        Concurrent GC threads steal cores; more runnable mutators than
        available cores time-share.
        """
        collector = self.collector
        available = self.n_cores - collector.concurrent_threads_active
        if available < 1:
            available = 1
        speed = available / self._speed_denom
        if speed > 1.0:
            speed = 1.0
        return speed / (1.0 + collector.mutator_overhead)

    def logical_threads(self) -> int:
        """Logical application thread count (for contention modelling)."""
        return self._logical_threads

    # ------------------------------------------------------------------
    # Stop-the-world cycle
    # ------------------------------------------------------------------

    def gc_cycle(
        self,
        current: Optional["MutatorContext"],
        trigger: Callable[[float], Outcome],
        *,
        must_run: bool = False,
    ):
        """Generator: run a GC interaction under a stop-the-world pause.

        If a GC is already in progress: waits for it, then either returns
        (``must_run=False`` — the caller retries its allocation against the
        freshly-collected heap) or runs *trigger* anyway (``must_run=True``
        — scheduled concurrent continuations such as a CMS remark).
        """
        engine = self.engine
        while self.gc_in_progress or self.stw:
            yield from self._park(current)
            if not must_run:
                return
        self.gc_in_progress = True
        self.stw = True
        sp_start = engine.now
        threads = self.logical_threads()
        self.tracer.safepoint_begin(sp_start, threads)
        self._resume_event = engine.event()
        for m in self.mutators:
            if m is not current and m.alive and not m.parked:
                m.process.interrupt("safepoint")
        tts = self.costs.time_to_safepoint(threads)
        yield engine.timeout(tts)
        stall = 0.0
        try:
            outcome = trigger(engine.now)
            stall = outcome.stall_seconds
            yield from self._execute_outcome(outcome)
        finally:
            self.stw = False
            self.gc_in_progress = False
            self.tracer.safepoint_end(engine.now, engine.now - sp_start, threads)
            event, self._resume_event = self._resume_event, None
            event.succeed()
        # The allocation stall is served *after* the world resumes: only
        # the triggering mutator waits for the in-flight relocation; every
        # other thread keeps running.
        if stall > 0.0 and current is not None:
            self._record_stall(engine.now, stall)
            yield from self._allocation_stall(current, stall)

    def _execute_outcome(self, outcome: Outcome):
        engine = self.engine
        for pause in outcome.pauses:
            start = engine.now
            yield engine.timeout(pause.duration)
            vol = pause.volumes
            heap_before = (self.heap.used + vol.total_freed) if vol else self.heap.used
            heap_after = self.heap.used
            self.gc_log.record(
                PauseRecord(
                    start=start,
                    duration=pause.duration,
                    kind=pause.kind,
                    cause=pause.cause,
                    collector=self.collector.name,
                    heap_used_before=heap_before,
                    heap_used_after=heap_after,
                    promoted=vol.promoted if vol else 0.0,
                )
            )
            self.tracer.gc_phase(
                start, pause.duration, pause.kind, pause.cause,
                self.collector.name, vol.promoted if vol else 0.0,
                heap_before, heap_after,
            )
            self.total_stw_time += pause.duration
        for rec in outcome.concurrent:
            self.gc_log.record_concurrent(rec)
            if rec.phase == RELOCATION_PHASE:
                self.tracer.concurrent_relocation(rec.start, rec.duration,
                                                  rec.collector)
            else:
                self.tracer.concurrent_phase(rec.start, rec.duration, rec.phase,
                                             rec.collector)
        for delay, fn in outcome.schedule:
            engine.process(self._scheduled_continuation(delay, fn))

    def _scheduled_continuation(self, delay: float, fn: Callable[[float], Outcome]):
        yield self.engine.timeout(delay)
        yield from self.gc_cycle(None, fn, must_run=True)

    def _record_stall(self, now: float, seconds: float) -> None:
        """Account one allocation stall (audited: never during STW)."""
        self.stall_count += 1
        self.total_stall_time += seconds
        self.tracer.alloc_stall(now, seconds, self.collector.name)

    def _allocation_stall(self, ctx: "MutatorContext", seconds: float):
        """Generator: the triggering mutator waits out the in-flight
        relocation. Wall time passes for this thread only; a safepoint
        arriving mid-stall is absorbed like :meth:`MutatorContext.idle`.
        """
        engine = self.engine
        deadline = engine.now + float(seconds)
        while engine.now < deadline - 1e-12:
            try:
                yield engine.timeout(deadline - engine.now)
            except Interrupt:
                yield from self._park(ctx)

    def dirty_cards(self, n_bytes: float):
        """Generator: record old-generation mutation (card dirtying).

        Mutators cannot touch the heap while the world is stopped, so this
        parks through any in-flight pause first — calling
        ``heap.dirty_cards`` directly from workload code would mutate the
        old generation mid-pause (the
        :class:`~repro.lint.audit.InvariantAuditor` flags exactly that).
        """
        if self.stw or self.gc_in_progress:
            yield from self._park(None)
        self.heap.dirty_cards(n_bytes)

    def _park(self, ctx: Optional["MutatorContext"]):
        """Wait until the current STW/GC episode is over."""
        if ctx is not None:
            ctx.parked = True
        try:
            while self.stw or self.gc_in_progress:
                event = self._resume_event
                if event is None:
                    break
                yield event
        finally:
            if ctx is not None:
                ctx.parked = False


class MutatorContext:
    """One simulated application thread."""

    #: Default mean object size used to estimate object counts for the
    #: allocation-path cost when the caller does not provide one.
    DEFAULT_OBJECT_SIZE = 4 * KB

    __slots__ = ("world", "name", "_parked", "_alive", "process",
                 "allocated_bytes", "alloc_overhead_time")

    def __init__(self, world: World, name: str = "mutator"):
        self.world = world
        self.name = name
        self._parked = False
        self._alive = True
        self.process = None  # set by JVM.spawn_mutator
        self.allocated_bytes = 0.0
        self.alloc_overhead_time = 0.0

    # `alive` and `parked` feed the World's O(1) liveness counters, so
    # they are properties whose setters keep the counters in sync. Only
    # mutate them after World.register() — the counters assume the context
    # is already counted.

    @property
    def alive(self) -> bool:
        return self._alive

    @alive.setter
    def alive(self, value: bool) -> None:
        value = bool(value)
        if value != self._alive:
            self._alive = value
            delta = 1 if value else -1
            self.world._n_alive += delta
            if not self._parked:
                self.world._n_running += delta
            self.world._recompute_threads()

    @property
    def parked(self) -> bool:
        return self._parked

    @parked.setter
    def parked(self, value: bool) -> None:
        value = bool(value)
        if value != self._parked:
            self._parked = value
            if self._alive:
                self.world._n_running += -1 if value else 1

    # ------------------------------------------------------------------

    def work(self, cpu_seconds: float):
        """Generator: execute *cpu_seconds* of application work.

        Stretches under concurrent-GC CPU steal and transparently absorbs
        stop-the-world interruptions.
        """
        remaining = float(cpu_seconds)
        world = self.world
        engine = world.engine
        while remaining > 1e-12:
            if world.stw:
                yield from world._park(self)
            speed = world.mutator_speed()
            start = engine.now
            try:
                yield Timeout(engine, remaining / speed)
                remaining = 0.0
            except Interrupt:
                remaining -= (engine.now - start) * speed
                yield from world._park(self)

    def allocate_old(
        self,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: Optional[float] = None,
        pinned: bool = False,
        label: str = "",
    ):
        """Generator: allocate directly in the old generation.

        For bulk, known-long-lived data (commit-log replay buffers,
        arena-style memtable chunks) that HotSpot would pretenure. Falls
        back to a full GC and finally :class:`OutOfMemoryError` when the
        old generation cannot make room.
        """
        world = self.world
        heap = world.heap
        if n_objects is None:
            n_objects = max(1.0, n_bytes / self.DEFAULT_OBJECT_SIZE)
        attempts = 0
        while True:
            if world.stw or world.gc_in_progress:
                yield from world._park(self)
            try:
                cohort = heap.allocate_old(
                    world.engine.now, n_bytes, dist,
                    n_objects=n_objects, pinned=pinned, label=label,
                )
                self.allocated_bytes += n_bytes
                return cohort
            except PromotionFailure:
                attempts += 1
                if attempts > 3:
                    raise OutOfMemoryError(n_bytes, heap.old_free_effective)
                yield from world.gc_cycle(self, world.collector.explicit_gc)

    def idle(self, seconds: float):
        """Generator: wait for *seconds* of wall time (e.g. for requests).

        Unlike :meth:`work`, idling is not stretched by concurrent-GC CPU
        steal — but stop-the-world interruptions still elapse inside it
        (a waiting thread simply observes the pause passing).
        """
        engine = self.world.engine
        deadline = engine.now + float(seconds)
        while engine.now < deadline - 1e-12:
            try:
                yield engine.timeout(deadline - engine.now)
            except Interrupt:
                yield from self.world._park(self)

    def allocate(
        self,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: Optional[float] = None,
        pinned: bool = False,
        label: str = "",
        window: float = 0.0,
    ):
        """Generator: allocate a cohort of *n_bytes*, GC-ing as needed.

        Returns the :class:`~repro.heap.cohort.Cohort`. Raises
        :class:`~repro.errors.OutOfMemoryError` when repeated collections
        cannot make room.
        """
        world = self.world
        heap = world.heap
        tlabs = heap.tlabs
        tlab_enabled = tlabs.config.enabled
        tlab_size = tlabs.tlab_size
        if n_objects is None:
            n_objects = max(1.0, n_bytes / self.DEFAULT_OBJECT_SIZE)
        cost = world.costs.alloc_overhead(
            n_bytes=n_bytes,
            n_objects=n_objects,
            tlab_enabled=tlab_enabled,
            tlab_size=tlab_size or 1.0,
            n_threads=world._logical_threads,
        )
        if tlab_enabled and tlab_size:
            world.tracer.tlab_refill(
                world.engine.now, n_bytes / tlab_size, tlab_size,
            )
        if cost > 0:
            self.alloc_overhead_time += cost
            # work(cost) inlined: the delegated generator was measurable at
            # one call per allocation.
            remaining = cost
            engine = world.engine
            while remaining > 1e-12:
                if world.stw:
                    yield from world._park(self)
                speed = world.mutator_speed()
                start = engine.now
                try:
                    yield Timeout(engine, remaining / speed)
                    remaining = 0.0
                except Interrupt:
                    remaining -= (engine.now - start) * speed
                    yield from world._park(self)
        attempts = 0
        while True:
            if world.stw or world.gc_in_progress:
                yield from world._park(self)
            # Humongous *objects* go straight to the old generation
            # (G1's half-region rule; other collectors only bypass eden
            # for objects that could never fit it). A batch of small
            # objects stays in eden unless the batch itself cannot fit.
            mean_size = n_bytes / max(n_objects, 1.0)
            if (mean_size >= world.collector.humongous_threshold()
                    or n_bytes > heap.eden.capacity * 0.8):
                try:
                    cohort = heap.allocate_old(
                        world.engine.now, n_bytes, dist,
                        n_objects=n_objects, pinned=pinned, label=label,
                    )
                    self.allocated_bytes += n_bytes
                    return cohort
                except PromotionFailure:
                    attempts += 1
                    if attempts > 3:
                        raise OutOfMemoryError(n_bytes, heap.old_free_effective)
                    yield from world.gc_cycle(self, world.collector.explicit_gc)
                    continue
            try:
                cohort = heap.allocate(
                    world.engine.now, n_bytes, dist,
                    n_objects=n_objects, pinned=pinned, label=label, window=window,
                )
                self.allocated_bytes += n_bytes
                return cohort
            except AllocationFailure:
                attempts += 1
                world.tracer.alloc_slow(world.engine.now, n_bytes)
                if attempts > 4:
                    raise OutOfMemoryError(n_bytes, heap.eden_free)
                yield from world.gc_cycle(
                    self, world.collector.allocation_failure
                )

    def allocate_all(
        self,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        mean_object_size: Optional[float] = None,
        max_piece: float,
        window: float = 0.0,
        label: str = "",
        accumulate: Optional[list] = None,
    ):
        """Generator: allocate *n_bytes* as a run of ``<= max_piece`` cohorts.

        Semantically identical to the classic workload loop::

            while remaining > 0:
                piece = min(remaining, max_piece)
                yield from ctx.allocate(piece, dist,
                                        n_objects=max(1.0, piece / mean_object_size),
                                        window=window, label=label)
                remaining -= piece

        but when the fast path is enabled (``REPRO_FASTPATH``, see
        :mod:`repro.perf.fastpath`) consecutive TLAB bump allocations are
        collapsed into one engine event per span (:meth:`_allocate_span`).
        Pieces that leave the bump path — humongous routing, allocation
        failure, an in-flight safepoint — always go through
        :meth:`allocate`, so GC triggers fire at identical simulated times
        either way.

        *accumulate*, if given, is a one-element list whose head is
        incremented by each committed piece — float-op order matches the
        historical per-piece ``acc[0] += piece`` exactly.
        """
        world = self.world
        remaining = float(n_bytes)
        if mean_object_size is None:
            mean_object_size = self.DEFAULT_OBJECT_SIZE
        while remaining > 0:
            if fastpath.ENABLED:
                remaining = yield from self._allocate_span(
                    remaining, dist, mean_object_size=mean_object_size,
                    max_piece=max_piece, window=window, label=label,
                    accumulate=accumulate,
                )
                if remaining <= 0:
                    return
            # Slow path: exactly one piece through the full allocation
            # machinery (parking, humongous routing, GC on failure).
            piece = min(remaining, max_piece)
            yield from self.allocate(
                piece, dist,
                n_objects=max(1.0, piece / mean_object_size),
                window=window, label=label,
            )
            if accumulate is not None:
                accumulate[0] += piece
            remaining -= piece

    def _allocate_span(
        self,
        remaining: float,
        dist: Optional[LifetimeDistribution],
        *,
        mean_object_size: float,
        max_piece: float,
        window: float,
        label: str,
        accumulate: Optional[list],
    ):
        """Generator: commit as many consecutive eden pieces as provably
        take the bump-allocation path, under ONE engine event.

        Byte-identity argument (DESIGN.md §12): while every simulated piece
        ends strictly before the engine's :meth:`~repro.sim.engine.Engine.batch_horizon`
        — i.e. before any other queued event — an unbatched run would pop
        exactly this process's timeout events back-to-back, with no other
        process observing the intermediate heap states. World state
        (speed, thread counts, TLAB geometry, STW flags) can therefore not
        change mid-span, so it is read once and each piece's cost, event
        time and feasibility are computed with the same float operations
        the unbatched path performs. The single committed event consumes
        the same number of engine sequence numbers and reports the same
        logical event count, so tie-breaks and traces match exactly.

        Returns the bytes still unallocated (``remaining`` unchanged when
        nothing could be batched); the caller routes the next piece
        through the slow path.
        """
        world = self.world
        if world.stw or world.gc_in_progress or dist is None:
            return remaining
        engine = world.engine
        horizon = engine.batch_horizon()
        if horizon is None:
            return remaining
        heap = world.heap
        tlabs = heap.tlabs
        tlab_enabled = tlabs.config.enabled
        tlab_size = tlabs.tlab_size
        eden = heap.eden
        eden_cap = eden.capacity
        waste = tlabs.expected_waste
        used = eden.used
        speed = world.mutator_speed()
        n_threads = world.logical_threads()
        humongous = world.collector.humongous_threshold()
        alloc_overhead = world.costs.alloc_overhead
        t = engine.now

        # Pass 1: simulate the per-piece cost/time/feasibility sequence.
        pieces = []  # (piece, n_objects, cost, t_hook, t_alloc)
        n_events = 0
        while remaining > 0:
            piece = min(remaining, max_piece)
            n_objects = max(1.0, piece / mean_object_size)
            if (piece / max(n_objects, 1.0) >= humongous
                    or piece > eden_cap * 0.8):
                break  # humongous routing -> slow path
            if piece > eden_cap - waste - used + 1e-6:
                break  # would raise AllocationFailure -> slow path GCs
            cost = alloc_overhead(
                n_bytes=piece, n_objects=n_objects,
                tlab_enabled=tlab_enabled, tlab_size=tlab_size or 1.0,
                n_threads=n_threads,
            )
            t_hook = t
            if cost > 1e-12:
                # Same float op as work(): timeout(remaining / speed).
                t_next = t + cost / speed
                if not (t_next < horizon):
                    break  # another event would interleave -> stop the span
                t = t_next
                n_events += 1
            pieces.append((piece, n_objects, cost, t_hook, t))
            used = min(used + piece, eden_cap)  # mirror Space.add
            remaining -= piece
        if not pieces:
            return remaining

        # Pass 2: commit — tracer hooks, costs and heap mutations in the
        # exact order and at the exact timestamps of the unbatched run.
        tracer = world.tracer
        allocate_bump = heap.allocate_bump
        hook = tlab_enabled and tlab_size
        for piece, n_objects, cost, t_hook, t_alloc in pieces:
            if hook:
                tracer.tlab_refill(t_hook, piece / tlab_size, tlab_size)
            if cost > 0:
                self.alloc_overhead_time += cost
            allocate_bump(
                t_alloc, piece, dist,
                n_objects=n_objects, label=label, window=window,
            )
            self.allocated_bytes += piece
            if accumulate is not None:
                accumulate[0] += piece
        if n_events:
            span_end = Event(engine)
            span_end._state = TRIGGERED
            engine.schedule_span(t, span_end, n_events)
            yield span_end
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "parked" if self.parked else ("alive" if self.alive else "done")
        return f"<MutatorContext {self.name} {state}>"
