"""Mutator threads, safepoints and the stop-the-world protocol.

:class:`World` owns the global execution state of the simulated JVM:
which mutators exist, whether a stop-the-world pause is in progress, and
the GC log. Mutators are DES processes wrapped in a
:class:`MutatorContext` that provides the two primitives every workload
is written in terms of:

* ``yield from ctx.work(cpu_seconds)`` — compute for a given amount of
  CPU time (stretched when concurrent GC threads steal cores, paused for
  the duration of any STW pause — implemented with process interrupts);
* ``cohort = yield from ctx.allocate(bytes, dist, ...)`` — allocate in
  eden, paying the allocation-path cost and triggering a garbage
  collection on allocation failure, exactly like a JVM allocation site.

The stop-the-world protocol mirrors HotSpot's safepoints: the GC
initiator flags the world stopped, interrupts all running mutators, waits
time-to-safepoint, executes the collector's pauses, then releases
everyone. GCs requested while another is in progress wait for it (and the
allocation is retried afterwards).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import OutOfMemoryError, PromotionFailure, AllocationFailure
from ..gc.base import Outcome
from ..gc.stats import GCLog, PauseRecord
from ..heap.lifetime import LifetimeDistribution
from ..sim import Engine, Interrupt
from ..telemetry.tracer import NULL_TRACER
from ..units import KB


class World:
    """Global JVM execution state: mutators, safepoints, GC log."""

    def __init__(self, engine: Engine, heap, collector, costs, gc_log: GCLog, n_cores: int):
        self.engine = engine
        self.heap = heap
        self.collector = collector
        self.costs = costs
        self.gc_log = gc_log
        self.n_cores = int(n_cores)
        self.stw = False
        self.gc_in_progress = False
        self._resume_event = None
        self.mutators: List["MutatorContext"] = []
        self.total_stw_time = 0.0
        #: Telemetry sink (the JVM swaps in a live tracer when requested).
        self.tracer = NULL_TRACER
        #: Logical application threads represented by each mutator process.
        #: Workloads may simulate k threads per process ("thread groups")
        #: for speed; CPU sharing and allocation contention stay faithful
        #: to the logical thread count.
        self.thread_multiplier = 1.0

    # ------------------------------------------------------------------

    def register(self, ctx: "MutatorContext") -> None:
        """Track a mutator context for safepoint interruption."""
        self.mutators.append(ctx)

    def alive_mutators(self) -> int:
        """Number of live mutator threads."""
        return sum(1 for m in self.mutators if m.alive)

    def running_mutators(self) -> int:
        """Live mutators that are not parked at a safepoint."""
        return sum(1 for m in self.mutators if m.alive and not m.parked)

    def mutator_speed(self) -> float:
        """Per-thread execution speed in [0, 1].

        Concurrent GC threads steal cores; more runnable mutators than
        available cores time-share.
        """
        conc = self.collector.concurrent_threads_active
        available = max(self.n_cores - conc, 1)
        running = max(self.alive_mutators() * self.thread_multiplier, 1.0)
        speed = min(1.0, available / running)
        return speed / (1.0 + self.collector.mutator_overhead)

    def logical_threads(self) -> int:
        """Logical application thread count (for contention modelling)."""
        return max(1, int(round(self.alive_mutators() * self.thread_multiplier)))

    # ------------------------------------------------------------------
    # Stop-the-world cycle
    # ------------------------------------------------------------------

    def gc_cycle(
        self,
        current: Optional["MutatorContext"],
        trigger: Callable[[float], Outcome],
        *,
        must_run: bool = False,
    ):
        """Generator: run a GC interaction under a stop-the-world pause.

        If a GC is already in progress: waits for it, then either returns
        (``must_run=False`` — the caller retries its allocation against the
        freshly-collected heap) or runs *trigger* anyway (``must_run=True``
        — scheduled concurrent continuations such as a CMS remark).
        """
        engine = self.engine
        while self.gc_in_progress or self.stw:
            yield from self._park(current)
            if not must_run:
                return
        self.gc_in_progress = True
        self.stw = True
        sp_start = engine.now
        threads = self.logical_threads()
        self.tracer.safepoint_begin(sp_start, threads)
        self._resume_event = engine.event()
        for m in self.mutators:
            if m is not current and m.alive and not m.parked:
                m.process.interrupt("safepoint")
        tts = self.costs.time_to_safepoint(threads)
        yield engine.timeout(tts)
        try:
            outcome = trigger(engine.now)
            yield from self._execute_outcome(outcome)
        finally:
            self.stw = False
            self.gc_in_progress = False
            self.tracer.safepoint_end(engine.now, engine.now - sp_start, threads)
            event, self._resume_event = self._resume_event, None
            event.succeed()

    def _execute_outcome(self, outcome: Outcome):
        engine = self.engine
        for pause in outcome.pauses:
            start = engine.now
            yield engine.timeout(pause.duration)
            vol = pause.volumes
            heap_before = (self.heap.used + vol.total_freed) if vol else self.heap.used
            heap_after = self.heap.used
            self.gc_log.record(
                PauseRecord(
                    start=start,
                    duration=pause.duration,
                    kind=pause.kind,
                    cause=pause.cause,
                    collector=self.collector.name,
                    heap_used_before=heap_before,
                    heap_used_after=heap_after,
                    promoted=vol.promoted if vol else 0.0,
                )
            )
            self.tracer.gc_phase(
                start, pause.duration, pause.kind, pause.cause,
                self.collector.name, vol.promoted if vol else 0.0,
                heap_before, heap_after,
            )
            self.total_stw_time += pause.duration
        for rec in outcome.concurrent:
            self.gc_log.record_concurrent(rec)
            self.tracer.concurrent_phase(rec.start, rec.duration, rec.phase,
                                         rec.collector)
        for delay, fn in outcome.schedule:
            engine.process(self._scheduled_continuation(delay, fn))

    def _scheduled_continuation(self, delay: float, fn: Callable[[float], Outcome]):
        yield self.engine.timeout(delay)
        yield from self.gc_cycle(None, fn, must_run=True)

    def dirty_cards(self, n_bytes: float):
        """Generator: record old-generation mutation (card dirtying).

        Mutators cannot touch the heap while the world is stopped, so this
        parks through any in-flight pause first — calling
        ``heap.dirty_cards`` directly from workload code would mutate the
        old generation mid-pause (the
        :class:`~repro.lint.audit.InvariantAuditor` flags exactly that).
        """
        if self.stw or self.gc_in_progress:
            yield from self._park(None)
        self.heap.dirty_cards(n_bytes)

    def _park(self, ctx: Optional["MutatorContext"]):
        """Wait until the current STW/GC episode is over."""
        if ctx is not None:
            ctx.parked = True
        try:
            while self.stw or self.gc_in_progress:
                event = self._resume_event
                if event is None:
                    break
                yield event
        finally:
            if ctx is not None:
                ctx.parked = False


class MutatorContext:
    """One simulated application thread."""

    #: Default mean object size used to estimate object counts for the
    #: allocation-path cost when the caller does not provide one.
    DEFAULT_OBJECT_SIZE = 4 * KB

    def __init__(self, world: World, name: str = "mutator"):
        self.world = world
        self.name = name
        self.parked = False
        self.alive = True
        self.process = None  # set by JVM.spawn_mutator
        self.allocated_bytes = 0.0
        self.alloc_overhead_time = 0.0

    # ------------------------------------------------------------------

    def work(self, cpu_seconds: float):
        """Generator: execute *cpu_seconds* of application work.

        Stretches under concurrent-GC CPU steal and transparently absorbs
        stop-the-world interruptions.
        """
        remaining = float(cpu_seconds)
        engine = self.world.engine
        while remaining > 1e-12:
            if self.world.stw:
                yield from self.world._park(self)
            speed = self.world.mutator_speed()
            start = engine.now
            try:
                yield engine.timeout(remaining / speed)
                remaining = 0.0
            except Interrupt:
                remaining -= (engine.now - start) * speed
                yield from self.world._park(self)

    def allocate_old(
        self,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: Optional[float] = None,
        pinned: bool = False,
        label: str = "",
    ):
        """Generator: allocate directly in the old generation.

        For bulk, known-long-lived data (commit-log replay buffers,
        arena-style memtable chunks) that HotSpot would pretenure. Falls
        back to a full GC and finally :class:`OutOfMemoryError` when the
        old generation cannot make room.
        """
        world = self.world
        heap = world.heap
        if n_objects is None:
            n_objects = max(1.0, n_bytes / self.DEFAULT_OBJECT_SIZE)
        attempts = 0
        while True:
            if world.stw or world.gc_in_progress:
                yield from world._park(self)
            try:
                cohort = heap.allocate_old(
                    world.engine.now, n_bytes, dist,
                    n_objects=n_objects, pinned=pinned, label=label,
                )
                self.allocated_bytes += n_bytes
                return cohort
            except PromotionFailure:
                attempts += 1
                if attempts > 3:
                    raise OutOfMemoryError(n_bytes, heap.old_free_effective)
                yield from world.gc_cycle(self, world.collector.explicit_gc)

    def idle(self, seconds: float):
        """Generator: wait for *seconds* of wall time (e.g. for requests).

        Unlike :meth:`work`, idling is not stretched by concurrent-GC CPU
        steal — but stop-the-world interruptions still elapse inside it
        (a waiting thread simply observes the pause passing).
        """
        engine = self.world.engine
        deadline = engine.now + float(seconds)
        while engine.now < deadline - 1e-12:
            try:
                yield engine.timeout(deadline - engine.now)
            except Interrupt:
                yield from self.world._park(self)

    def allocate(
        self,
        n_bytes: float,
        dist: Optional[LifetimeDistribution] = None,
        *,
        n_objects: Optional[float] = None,
        pinned: bool = False,
        label: str = "",
        window: float = 0.0,
    ):
        """Generator: allocate a cohort of *n_bytes*, GC-ing as needed.

        Returns the :class:`~repro.heap.cohort.Cohort`. Raises
        :class:`~repro.errors.OutOfMemoryError` when repeated collections
        cannot make room.
        """
        world = self.world
        heap = world.heap
        if n_objects is None:
            n_objects = max(1.0, n_bytes / self.DEFAULT_OBJECT_SIZE)
        cost = world.costs.alloc_overhead(
            n_bytes=n_bytes,
            n_objects=n_objects,
            tlab_enabled=heap.tlabs.config.enabled,
            tlab_size=heap.tlabs.tlab_size or 1.0,
            n_threads=world.logical_threads(),
        )
        if heap.tlabs.config.enabled and heap.tlabs.tlab_size:
            world.tracer.tlab_refill(
                world.engine.now, n_bytes / heap.tlabs.tlab_size,
                heap.tlabs.tlab_size,
            )
        if cost > 0:
            self.alloc_overhead_time += cost
            yield from self.work(cost)
        attempts = 0
        while True:
            if world.stw or world.gc_in_progress:
                yield from world._park(self)
            # Humongous *objects* go straight to the old generation
            # (G1's half-region rule; other collectors only bypass eden
            # for objects that could never fit it). A batch of small
            # objects stays in eden unless the batch itself cannot fit.
            mean_size = n_bytes / max(n_objects, 1.0)
            if (mean_size >= world.collector.humongous_threshold()
                    or n_bytes > heap.eden.capacity * 0.8):
                try:
                    cohort = heap.allocate_old(
                        world.engine.now, n_bytes, dist,
                        n_objects=n_objects, pinned=pinned, label=label,
                    )
                    self.allocated_bytes += n_bytes
                    return cohort
                except PromotionFailure:
                    attempts += 1
                    if attempts > 3:
                        raise OutOfMemoryError(n_bytes, heap.old_free_effective)
                    yield from world.gc_cycle(self, world.collector.explicit_gc)
                    continue
            try:
                cohort = heap.allocate(
                    world.engine.now, n_bytes, dist,
                    n_objects=n_objects, pinned=pinned, label=label, window=window,
                )
                self.allocated_bytes += n_bytes
                return cohort
            except AllocationFailure:
                attempts += 1
                world.tracer.alloc_slow(world.engine.now, n_bytes)
                if attempts > 4:
                    raise OutOfMemoryError(n_bytes, heap.eden_free)
                yield from world.gc_cycle(
                    self, world.collector.allocation_failure
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "parked" if self.parked else ("alive" if self.alive else "done")
        return f"<MutatorContext {self.name} {state}>"
