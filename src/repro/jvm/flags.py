"""JVM configuration, including HotSpot-style flag parsing.

The paper configures the JVM via standard HotSpot flags (``-Xmx``,
``-Xmn``, ``-XX:+UseG1GC``, ``-XX:-UseTLAB`` ...). :class:`JVMConfig`
accepts both a structured form and :meth:`JVMConfig.from_flags` for the
flag-string form, so experiment scripts read like the paper's setup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..errors import ConfigError
from ..gc.registry import GCType, resolve_gc
from ..heap.tlab import TLABConfig
from ..machine.topology import MachineTopology, PAPER_SERVER, resolve_topology
from ..units import GB, parse_size

#: The paper's baseline young-generation fraction: ~5.6 GB of a ~16 GB heap.
DEFAULT_YOUNG_FRACTION = 0.35


@dataclass(frozen=True)
class JVMConfig:
    """Configuration of one simulated JVM instance.

    ``heap`` and ``young`` accept bytes or HotSpot size strings ("64g").
    Minimum and maximum heap are pinned equal (as the paper does, §3.1).
    """

    gc: GCType = GCType.PARALLEL_OLD
    heap: object = 16 * GB
    young: Optional[object] = None  #: None = heap * DEFAULT_YOUNG_FRACTION
    survivor_ratio: int = 8
    tlab: TLABConfig = field(default_factory=TLABConfig)
    gc_threads: Optional[int] = None
    pause_target: float = 0.2  #: G1 MaxGCPauseMillis (seconds here)
    n_threads: Optional[int] = None  #: mutator threads; None = one per core
    #: Machine model; accepts a :class:`MachineTopology` or a registered
    #: topology name (``"asym-hybrid"``) so campaign-cell overrides can
    #: carry machines as plain JSON strings.
    topology: object = PAPER_SERVER
    seed: int = 0
    #: GC-thread placement policy name (``"p-cores"``, ``"e-cores"``,
    #: ``"adaptive"``; see :mod:`repro.energy.placement`). Empty = the
    #: default packed placement, byte-identical to pre-energy runs.
    gc_placement: str = ""
    #: Emit non-GC safepoints (deoptimization, biased-lock revocation,
    #: periodic "no vm operation" — the other stop-the-world causes the
    #: paper lists in §2). Off by default so GC statistics stay pure.
    misc_safepoints: bool = False
    #: Mean interval between non-GC safepoints (seconds, exponential).
    misc_safepoint_interval: float = 1.0
    #: Card/remset fidelity: price young scans off the explicit card
    #: table and G1's remark off real remset cardinality (see
    #: :mod:`repro.heap.cards`). Off by default — the paper's six
    #: collectors stay byte-identical to the committed baselines; the
    #: fully-concurrent collectors force it on regardless.
    remset_fidelity: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "gc", resolve_gc(self.gc))
        object.__setattr__(self, "topology", resolve_topology(self.topology))
        if self.gc_placement:
            # Validate eagerly so a typo fails at config time, not at
            # JVM construction. Lazy import: energy sits above jvm.
            from ..energy.placement import resolve_placement
            resolve_placement(self.gc_placement)
        object.__setattr__(self, "heap", parse_size(self.heap))
        if self.young is not None:
            object.__setattr__(self, "young", parse_size(self.young))
        if self.heap <= 0:
            raise ConfigError("heap must be positive")
        if self.heap > self.topology.ram_bytes:
            raise ConfigError(
                f"heap {self.heap:.0f} exceeds machine RAM {self.topology.ram_bytes:.0f}"
            )
        if self.young is not None and not (0 < self.young <= self.heap):
            raise ConfigError("young must be in (0, heap]")
        if self.pause_target <= 0:
            raise ConfigError("pause_target must be positive")

    @property
    def heap_bytes(self) -> float:
        """Heap size in bytes."""
        return float(self.heap)

    @property
    def young_bytes(self) -> float:
        """Young-generation size in bytes (defaulted when unset)."""
        if self.young is not None:
            return float(self.young)
        return float(self.heap) * DEFAULT_YOUNG_FRACTION

    @property
    def mutator_threads(self) -> int:
        """Number of mutator threads (defaults to one per hardware thread,
        DaCapo's default)."""
        return self.n_threads if self.n_threads else self.topology.cores

    def with_(self, **changes) -> "JVMConfig":
        """Return a modified copy (convenience for parameter sweeps)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # HotSpot flag parsing
    # ------------------------------------------------------------------

    _GC_FLAGS = {
        "UseSerialGC": GCType.SERIAL,
        "UseParNewGC": GCType.PARNEW,
        "UseParallelGC": GCType.PARALLEL,
        "UseParallelOldGC": GCType.PARALLEL_OLD,
        "UseConcMarkSweepGC": GCType.CMS,
        "UseG1GC": GCType.G1,
        "UseZGC": GCType.ZGC,
        "UseShenandoahGC": GCType.SHENANDOAH,
        "UseEpsilonGC": GCType.EPSILON,
    }

    @classmethod
    def from_flags(cls, flags: Sequence[str], **overrides) -> "JVMConfig":
        """Build a config from HotSpot command-line flags.

        Supported: ``-Xmx<size>``/``-Xms<size>`` (must agree when both
        given), ``-Xmn<size>``, ``-XX:+Use<GC>GC``, ``-XX:+/-UseTLAB``,
        ``-XX:TLABSize=<size>``, ``-XX:ParallelGCThreads=<n>``,
        ``-XX:MaxGCPauseMillis=<n>``, ``-XX:SurvivorRatio=<n>``.

        >>> cfg = JVMConfig.from_flags(["-Xmx64g", "-Xmn12g", "-XX:+UseG1GC"])
        >>> cfg.gc
        <GCType.G1: 'G1GC'>
        """
        kw: dict = {}
        tlab_enabled = True
        tlab_size = None
        xmx = xms = None
        for flag in flags:
            if flag.startswith("-Xmx"):
                xmx = parse_size(flag[4:])
            elif flag.startswith("-Xms"):
                xms = parse_size(flag[4:])
            elif flag.startswith("-Xmn"):
                kw["young"] = parse_size(flag[4:])
            elif flag == "-XX:+UseTLAB":
                tlab_enabled = True
            elif flag == "-XX:-UseTLAB":
                tlab_enabled = False
            elif flag.startswith("-XX:TLABSize="):
                tlab_size = parse_size(flag.split("=", 1)[1])
            elif flag.startswith("-XX:ParallelGCThreads="):
                kw["gc_threads"] = int(flag.split("=", 1)[1])
            elif flag.startswith("-XX:MaxGCPauseMillis="):
                kw["pause_target"] = int(flag.split("=", 1)[1]) / 1000.0
            elif flag.startswith("-XX:SurvivorRatio="):
                kw["survivor_ratio"] = int(flag.split("=", 1)[1])
            elif flag.startswith("-XX:GCPlacement="):
                kw["gc_placement"] = flag.split("=", 1)[1]
            else:
                m = re.match(r"^-XX:\+(\w+)$", flag)
                if m and m.group(1) in cls._GC_FLAGS:
                    kw["gc"] = cls._GC_FLAGS[m.group(1)]
                else:
                    raise ConfigError(f"unsupported JVM flag: {flag!r}")
        if xmx is not None and xms is not None and xmx != xms:
            raise ConfigError("-Xms and -Xmx must agree (fixed-size heap)")
        if xmx is not None or xms is not None:
            kw["heap"] = xmx if xmx is not None else xms
        kw["tlab"] = TLABConfig(enabled=tlab_enabled, size=tlab_size)
        kw.update(overrides)
        return cls(**kw)


#: The paper's baseline configuration (§3.1): default GC (ParallelOld),
#: ~16 GB fixed heap, ~5.6 GB young generation, TLAB enabled.
def baseline_config(**overrides) -> JVMConfig:
    """The paper's baseline JVM configuration, optionally overridden."""
    defaults = dict(gc=GCType.PARALLEL_OLD, heap=16 * GB, young=5.6 * GB)
    defaults.update(overrides)
    return JVMConfig(**defaults)
