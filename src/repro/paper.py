"""The paper's published numbers, as structured reference data.

Machine-readable copies of the values printed in the paper's tables, so
experiments can be compared against the original programmatically (see
``examples/paper_comparison.py`` and EXPERIMENTS.md). Sources: the
PMAM'15 paper text; table and section numbers follow the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .units import GB, MB

#: Full citation of the reproduced paper.
CITATION = (
    "Maria Carpen-Amarie, Patrick Marlier, Pascal Felber, Gaël Thomas. "
    "A Performance Study of Java Garbage Collectors on Multicore "
    "Architectures. PMAM '15, February 7-8, 2015, San Francisco Bay Area, "
    "USA. DOI 10.1145/2712386.2712404."
)

#: §3.1: the experimental machine.
MACHINE = {
    "cores": 48,
    "sockets": 4,
    "numa_nodes_per_socket": 2,
    "cores_per_numa_node": 6,
    "ram_bytes": 64 * GB,
}

#: §3.1: baseline JVM configuration.
BASELINE = {
    "gc": "ParallelOldGC",
    "heap_bytes": 16 * GB,
    "young_bytes": 5.6 * GB,
    "tlab": True,
    "iterations": 10,
}

#: Table 2 — relative standard deviation (%), (final iteration, total time).
TABLE2_RSD: Dict[str, Tuple[float, float]] = {
    "h2": (1.8, 1.2),
    "tomcat": (1.8, 1.2),
    "xalan": (6.4, 4.2),
    "jython": (5.0, 3.0),
    "pmd": (1.1, 0.8),
    "luindex": (2.8, 4.0),
    "batik": (11.2, 3.6),
}

#: §3.2: benchmarks that crashed on every test.
CRASHING_BENCHMARKS = ("eclipse", "tradebeans", "tradesoap")

#: §3.2: the selection criterion — at least one RSD under this (%).
STABILITY_THRESHOLD_PCT = 5.0


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3 (H2 under CMS)."""

    heap_bytes: float
    young_bytes: float
    pauses: int
    full_pauses: int
    avg_pause_s: float
    total_pause_s: float
    total_exec_s: float


#: Table 3 — statistics for H2 with CMS.
TABLE3_H2_CMS: List[Table3Row] = [
    Table3Row(64 * GB, 6 * GB, 4, 0, 1.33, 5.34, 196.23),
    Table3Row(64 * GB, 12 * GB, 2, 0, 0.46, 0.92, 193.45),
    Table3Row(64 * GB, 24 * GB, 2, 0, 0.55, 1.11, 193.31),
    Table3Row(64 * GB, 48 * GB, 2, 0, 0.36, 0.72, 193.51),
    Table3Row(1 * GB, 200 * MB, 68, 1, 0.07, 4.53, 192.39),
    Table3Row(1 * GB, 100 * MB, 136, 1, 0.05, 7.18, 192.98),
    Table3Row(500 * MB, 200 * MB, 74, 7, 0.13, 9.78, 193.19),
    Table3Row(500 * MB, 100 * MB, 135, 3, 0.05, 6.86, 193.53),
    Table3Row(250 * MB, 200 * MB, 655, 356, 1.05, 689.72, 1112.51),
    Table3Row(250 * MB, 100 * MB, 380, 324, 1.33, 503.89, 788.43),
]

#: Table 4 — TLAB influence (+ / = / −), benchmark -> GC -> cell.
TABLE4_TLAB: Dict[str, Dict[str, str]] = {
    "batik": {"ConcMarkSweepGC": "+", "G1GC": "=", "ParNewGC": "+",
              "ParallelGC": "=", "ParallelOldGC": "-", "SerialGC": "="},
    "h2": {"ConcMarkSweepGC": "=", "G1GC": "=", "ParNewGC": "=",
           "ParallelGC": "=", "ParallelOldGC": "=", "SerialGC": "="},
    "jython": {"ConcMarkSweepGC": "=", "G1GC": "-", "ParNewGC": "-",
               "ParallelGC": "+", "ParallelOldGC": "=", "SerialGC": "="},
    "luindex": {"ConcMarkSweepGC": "=", "G1GC": "+", "ParNewGC": "-",
                "ParallelGC": "=", "ParallelOldGC": "=", "SerialGC": "-"},
    "pmd": {"ConcMarkSweepGC": "=", "G1GC": "=", "ParNewGC": "=",
            "ParallelGC": "=", "ParallelOldGC": "=", "SerialGC": "="},
    "tomcat": {"ConcMarkSweepGC": "=", "G1GC": "=", "ParNewGC": "=",
               "ParallelGC": "=", "ParallelOldGC": "=", "SerialGC": "="},
    "xalan": {"ConcMarkSweepGC": "=", "G1GC": "-", "ParNewGC": "=",
              "ParallelGC": "-", "ParallelOldGC": "=", "SerialGC": "-"},
}

#: Figure 3 — approximate win percentages read off the bar charts.
FIG3_RANKING = {
    "system_gc": {
        "ParNewGC": 35.0, "ParallelOldGC": 22.0, "SerialGC": 16.0,
        "ConcMarkSweepGC": 14.0, "ParallelGC": 8.0, "G1GC": 0.0,
    },
    "no_system_gc": {
        "ParallelOldGC": 29.0, "ParallelGC": 20.0, "ParNewGC": 17.0,
        "SerialGC": 14.0, "ConcMarkSweepGC": 12.0, "G1GC": 6.0,
    },
}

#: §4.1 — ParallelOld on Cassandra (server side).
CASSANDRA_PARALLELOLD = {
    "default_1h": {"full_gcs": 0, "young_peak_s": 17.0},
    "default_2h": {"full_gcs": 1, "full_gc_s": 160.0, "young_peak_s": 25.0},
    "stress_2h": {"full_gcs": 1, "full_gc_s": 240.0},
}

#: Figure 4 — CMS/G1 pause ceilings on the stress test.
CASSANDRA_CONCURRENT = {"CMS_max_pause_s": 2.5, "G1_max_pause_s": 3.5}


@dataclass(frozen=True)
class LatencyTable:
    """One of Tables 5-7 (READ, UPDATE) pairs in ms / %."""

    gc: str
    read_avg_ms: float
    read_max_ms: float
    read_min_ms: float
    update_avg_ms: float
    update_max_ms: float
    update_min_ms: float
    read_mid_band_pct: float     #: 0.5x-1.5x AVG %reqs
    update_mid_band_pct: float


#: Tables 5, 6, 7 — client latency statistics.
TABLES567: Dict[str, LatencyTable] = {
    "ParallelOldGC": LatencyTable(
        "ParallelOldGC", 4.875, 372.361, 0.644, 0.993, 229.155, 0.545,
        40.412, 98.639,
    ),
    "G1GC": LatencyTable(
        "G1GC", 2.369, 644.19, 0.548, 1.106, 469.133, 0.424,
        95.325, 99.029,
    ),
    "ConcMarkSweepGC": LatencyTable(
        "ConcMarkSweepGC", 3.494, 865.518, 0.596, 1.08, 669.843, 0.496,
        53.382, 98.811,
    ),
}

#: Table 8 — qualitative summary, (throughput, pause time) per setting.
TABLE8: Dict[Tuple[str, str], Tuple[str, str]] = {
    ("ParallelOldGC", "DaCapo"): ("good", "short"),
    ("ParallelOldGC", "Cassandra"): ("good", "unacceptable"),
    ("ConcMarkSweepGC", "DaCapo"): ("fairly good", "acceptable"),
    ("ConcMarkSweepGC", "Cassandra"): ("fairly good", "significant"),
    ("G1GC", "DaCapo"): ("bad", "unacceptable"),
    ("G1GC", "Cassandra"): ("fairly good", "significant"),
}


def compare_value(paper: float, measured: float) -> Dict[str, float]:
    """Side-by-side comparison record: ratio and signed relative error."""
    ratio = measured / paper if paper else float("inf")
    return {
        "paper": paper,
        "measured": measured,
        "ratio": ratio,
        "rel_error": ratio - 1.0,
    }


def same_direction(paper_pairs, measured_pairs) -> bool:
    """Do two paired series move in the same direction pairwise?

    Used to check *shape* claims (e.g. Table 3's anomaly: avg pause at
    6 GB young > avg pause at 24 GB young) without comparing magnitudes.
    """
    for (pa, pb), (ma, mb) in zip(paper_pairs, measured_pairs):
        paper_dir = (pa > pb) - (pa < pb)
        measured_dir = (ma > mb) - (ma < mb)
        if paper_dir != 0 and measured_dir != paper_dir:
            return False
    return True
