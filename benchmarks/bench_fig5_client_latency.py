"""E9 — Figure 5: client response time for the three GC strategies.

Runs the paper's custom 50 % read / 50 % update YCSB workload against the
Cassandra server for two hours under ParallelOld, CMS and G1, records
>1 M operation latencies per run, and prints the highest-latency points
(the paper plots the top 10 000) together with the server pause trace.

Paper shapes: most points follow a low constant latency line (updates
constant, reads stepping up as SSTables accumulate); the spikes coincide
with GC pauses.
"""

import numpy as np

from repro import GB, JVMConfig
from repro.analysis.latency import gc_overlap_fraction
from repro.analysis.report import render_series, render_table
from repro.cassandra import default_config
from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient

from common import emit, once, quick_or_full

DURATION = quick_or_full(7200.0, 7200.0)
SEED = 7


def run_experiment():
    out = {}
    for gc in ("ParallelOld", "CMS", "G1"):
        client = YCSBClient(WORKLOAD_A_LIKE, seed=SEED)
        out[gc] = client.run(
            JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=SEED),
            default_config(64 * GB),
            duration=DURATION,
        )
    return out


def test_fig5_client_latency(benchmark):
    runs = once(benchmark, run_experiment)
    lines = []
    rows = []
    for gc, cr in runs.items():
        lines.append(f"Figure 5 — {gc}: top-latency points (x=s, y=ms)")
        xs, ys = cr.top_points(10_000)
        lines.append(render_series(xs, ys, label=f"  {gc} peaks", max_points=14))
        overlap = gc_overlap_fraction(cr.op_times, cr.latencies_ms,
                                      cr.pause_intervals)
        rows.append((
            gc, len(cr.latencies_ms),
            round(float(cr.reads.latencies_ms.mean()), 3),
            round(float(cr.updates.latencies_ms.mean()), 3),
            round(float(cr.latencies_ms.max()), 1),
            f"{100 * overlap:.1f}%",
        ))
    lines.append(render_table(
        ["GC", "#ops", "READ avg (ms)", "UPDATE avg (ms)", "max (ms)",
         ">2x-avg ops during GC"],
        rows,
    ))
    emit("fig5_client_latency", "\n".join(lines))

    for gc, cr in runs.items():
        # >1 M points per run, like the paper.
        assert len(cr.latencies_ms) > 1_000_000, gc
        # Observation 2: the peaks are the GC pauses.
        overlap = gc_overlap_fraction(cr.op_times, cr.latencies_ms,
                                      cr.pause_intervals, threshold_factor=4.0)
        assert overlap > 0.95, gc
        # Observation 1: updates follow a constant low-latency line.
        u = cr.updates.latencies_ms
        bulk = u[u < np.percentile(u, 95)]
        assert bulk.std() / bulk.mean() < 0.5, gc
    # Reads step up over time (SSTable accumulation): later reads slower.
    reads = runs["ParallelOld"].reads
    base = reads.latencies_ms[reads.latencies_ms < np.percentile(reads.latencies_ms, 90)]
    times = reads.op_times[reads.latencies_ms < np.percentile(reads.latencies_ms, 90)]
    first, last = base[times < times.mean()], base[times >= times.mean()]
    assert last.mean() > first.mean()
