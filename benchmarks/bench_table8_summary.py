"""E11 — Table 8: advantages and disadvantages of the three main GCs.

Derives the paper's closing qualitative table from measured data:
throughput and pause-time verdicts for ParallelOld, CMS and G1 in both
environments (DaCapo and Cassandra).

Paper's Table 8:

    ParallelOld  DaCapo:    good / short      Cassandra: good / unacceptable
    CMS          DaCapo:    fairly good / acceptable
                 Cassandra: fairly good / significant
    G1           DaCapo:    bad / unacceptable
                 Cassandra: fairly good / significant
"""

import numpy as np

from repro import GB, JVM, JVMConfig, baseline_config
from repro.analysis.report import render_table
from repro.analysis.summary import qualitative_summary
from repro.cassandra import CassandraServer, stress_config
from repro.gc import GC_NAMES, TABLE8_GC_NAMES
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

#: The paper's three headline collectors, taken from the registry's
#: Table-8 roster (its modern tail is exercised by bench_x6_lbo_modern).
GCS = tuple(g for g in TABLE8_GC_NAMES if g in GC_NAMES)
SEEDS = quick_or_full((1, 2, 3), (1, 2, 3, 4, 5))


def dacapo_side():
    out = {}
    for gc in GCS:
        execs, max_pauses = [], []
        for seed in SEEDS:
            jvm = JVM(baseline_config(gc=gc, seed=seed))
            r = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)
            execs.append(r.execution_time)
            max_pauses.append(r.gc_log.max_pause)
        out[gc] = {
            "exec_time": float(np.median(execs)),
            "max_pause": float(np.median(max_pauses)),
        }
    return out


def cassandra_side():
    out = {}
    for gc in GCS:
        jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=3))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        r = jvm.run(server, duration=7200.0, ops_per_second=1350.0)
        out[gc] = {
            "exec_time": r.execution_time,
            "max_pause": r.gc_log.max_pause,
        }
    return out


def run_experiment():
    return qualitative_summary(dacapo_side(), cassandra_side())


def test_table8_summary(benchmark):
    verdicts = once(benchmark, run_experiment)
    text = render_table(
        ["GC", "Experiment", "Throughput", "Pause Time"],
        [(v.gc, v.experiment, v.throughput, v.pause_time) for v in verdicts],
        title="Table 8 — qualitative summary (derived from measurements)",
    )
    emit("table8_summary", text)

    by_key = {(v.gc, v.experiment): v for v in verdicts}
    # ParallelOld: good on DaCapo, unacceptable pauses on Cassandra.
    assert by_key[("ParallelOldGC", "DaCapo")].throughput == "good"
    assert by_key[("ParallelOldGC", "DaCapo")].pause_time in ("short", "acceptable")
    assert by_key[("ParallelOldGC", "Cassandra")].pause_time == "unacceptable"
    # G1: bad throughput on DaCapo (forced full GCs), seconds-long but not
    # minutes-long pauses on Cassandra.
    assert by_key[("G1GC", "DaCapo")].throughput == "bad"
    assert by_key[("G1GC", "Cassandra")].pause_time == "significant"
    # CMS: in between on DaCapo, significant (not unacceptable) on Cassandra.
    assert by_key[("ConcMarkSweepGC", "Cassandra")].pause_time == "significant"
