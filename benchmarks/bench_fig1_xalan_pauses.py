"""E2 — Figure 1: GC pause time for xalan, with and without System.gc().

Regenerates the (execution time, pause duration) scatter for every
collector under the baseline configuration.

Paper shapes: with a forced full GC per iteration (a) G1's pauses are the
longest (and its run the longest, ~25 % over the others); without (b)
there are only young pauses, SerialGC performs worst, and G1 shows only
one mid-run marking-related pause group.
"""

import numpy as np

from repro import JVM, baseline_config
from repro.analysis.pauses import pause_scatter
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.report import render_series, render_table
from repro.gc import GC_NAMES
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

SEED = quick_or_full(1, 1)


def run_experiment():
    out = {}
    for system_gc in (True, False):
        for gc in GC_NAMES:
            jvm = JVM(baseline_config(gc=gc, seed=SEED))
            result = jvm.run(get_benchmark("xalan"), iterations=10,
                             system_gc=system_gc)
            out[(system_gc, gc)] = result
    return out


def test_fig1_xalan_pauses(benchmark):
    results = once(benchmark, run_experiment)
    lines = []
    for system_gc in (True, False):
        label = "(a) System GC" if system_gc else "(b) No System GC"
        lines.append(f"Figure 1{label} — pause scatter (x=time s, y=pause s)")
        rows = []
        for gc in GC_NAMES:
            r = results[(system_gc, gc)]
            xs, ys = pause_scatter(r.gc_log)
            lines.append(render_series(xs, ys, label=f"  {gc}", max_points=14))
            rows.append((gc, round(r.execution_time, 2), r.gc_log.count,
                         round(r.gc_log.max_pause, 3)))
        lines.append(render_table(
            ["GC", "exec (s)", "#pauses", "max pause (s)"], rows))
        lines.append("")
        lines.append(scatter_plot(
            {gc: (results[(system_gc, gc)].gc_log.starts(),
                  results[(system_gc, gc)].gc_log.durations())
             for gc in GC_NAMES},
            title=f"Figure 1{label} — rendered",
            x_label="execution time (s)", y_label="pause (s)", height=14,
        ))
        lines.append("")
    emit("fig1_xalan_pauses", "\n".join(lines))

    # Shape assertions (paper §3.3).
    sysgc = {gc: results[(True, gc)] for gc in GC_NAMES}
    max_pauses = {gc: r.gc_log.max_pause for gc, r in sysgc.items()}
    assert max(max_pauses, key=max_pauses.get) == "G1GC"
    no_sysgc = {gc: results[(False, gc)] for gc in GC_NAMES}
    assert all(r.gc_log.full_count == 0 for r in no_sysgc.values())
    # Without System.gc() the pause ceiling drops for the non-G1 GCs.
    for gc in GC_NAMES:
        assert no_sysgc[gc].gc_log.count >= 1
